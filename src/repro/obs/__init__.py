"""Observability: unified metrics registry and structured logging.

This package is the operational counterpart of :mod:`repro.util.trace`:
where traces answer *where did the time go inside one run*, the metrics
registry (:mod:`repro.obs.metrics`) accumulates counters, gauges and
histograms across a session's lifetime — cache hits per level, steal
grants, transport bytes, scheduler queue depth and grant latency —
behind one JSON-dumpable snapshot (``session.metrics()``).  Structured
logging (:mod:`repro.obs.log`) gives every coordinator/node component a
logger that stamps ``component``/``job_id``/``node`` and can emit JSON
lines for machine ingestion (``rocket-repro run --log-json``).
"""

from repro.obs.metrics import Counter, Gauge, HistogramMetric, MetricsRegistry
from repro.obs.log import configure_logging, get_logger

__all__ = [
    "Counter",
    "Gauge",
    "HistogramMetric",
    "MetricsRegistry",
    "configure_logging",
    "get_logger",
]
