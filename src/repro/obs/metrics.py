"""Unified metrics registry: counters, gauges, histograms, one snapshot.

Before this module, every layer of the runtime kept its own ad-hoc
counters (``NodeStats`` cache counters, ``HopStats`` hop histograms,
transport byte counts, ``JobAccounting``) that only met inside
``RunStats.summary()`` string formatting.  The registry gives them a
common vocabulary:

- :class:`Counter` — monotonically increasing totals (cache hits,
  steal grants, transport bytes);
- :class:`Gauge` — last-written level readings (scheduler queue depth,
  active jobs);
- :class:`HistogramMetric` — observed distributions (grant latency,
  job runtimes) with count/sum/min/max plus approximate quantiles from
  a bounded sample reservoir (binned via :class:`repro.util.Histogram`).

Metric names are dotted paths (``"cache.device.hits"``);
:meth:`MetricsRegistry.snapshot` folds them into a nested, plain-data
dict that ``json.dumps`` accepts directly — the shape served by
``session.metrics()`` and, later, a daemon ``/metrics`` endpoint.

All operations are thread-safe: session serve loops, pipeline worker
threads and user threads may touch one registry concurrently.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Union

from repro.util.histogram import Histogram

__all__ = ["Counter", "Gauge", "HistogramMetric", "MetricsRegistry"]

#: Samples kept per histogram for quantile estimation; observations
#: beyond the cap keep updating count/sum/min/max but stop growing the
#: reservoir (earliest-N policy — grant latencies and job runtimes are
#: not adversarially ordered, and the bound matters more than bias).
RESERVOIR_SIZE = 4096


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            self.value += amount

    def snapshot(self) -> Union[int, float]:
        """Current total, as an int when it is integral."""
        v = self.value
        return int(v) if float(v).is_integer() else v


class Gauge:
    """A level reading; holds the last value written."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: Union[int, float]) -> None:
        """Record the current level."""
        self.value = float(value)

    def snapshot(self) -> Union[int, float]:
        """Last written value, as an int when it is integral."""
        v = self.value
        return int(v) if float(v).is_integer() else v


class HistogramMetric:
    """An observed distribution: count/sum/min/max plus quantiles.

    Exact for count, sum, min and max; quantiles are approximated from
    a bounded reservoir binned through :class:`repro.util.Histogram`
    (bin-centre resolution), which keeps the memory cost of a
    long-running session constant.
    """

    __slots__ = ("count", "total", "min", "max", "_samples", "_lock")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._lock = threading.Lock()

    def observe(self, value: Union[int, float]) -> None:
        """Record one observation."""
        v = float(value)
        with self._lock:
            self.count += 1
            self.total += v
            if self.min is None or v < self.min:
                self.min = v
            if self.max is None or v > self.max:
                self.max = v
            if len(self._samples) < RESERVOIR_SIZE:
                self._samples.append(v)

    def snapshot(self) -> Dict[str, Union[int, float, None]]:
        """Plain-data summary of the distribution."""
        with self._lock:
            count, total = self.count, self.total
            lo, hi = self.min, self.max
            samples = list(self._samples)
        out: Dict[str, Union[int, float, None]] = {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": lo,
            "max": hi,
        }
        if samples:
            hist = Histogram.from_samples(samples, bins=min(40, len(samples)))
            for q in (0.5, 0.9, 0.99):
                out[f"p{int(q * 100)}"] = hist.quantile(q)
        return out


class MetricsRegistry:
    """Name-addressed collection of counters, gauges and histograms.

    Metrics are created on first use and keep their kind for life; the
    dotted name decides where the value lands in :meth:`snapshot`'s
    nested dict.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Union[Counter, Gauge, HistogramMetric]] = {}

    def _get(self, name: str, kind: type):
        if not name:
            raise ValueError("metric name must be non-empty")
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, not a {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> HistogramMetric:
        """The histogram called ``name`` (created on first use)."""
        return self._get(name, HistogramMetric)

    # -- convenience write API ------------------------------------------

    def inc(self, name: str, amount: Union[int, float] = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: Union[int, float]) -> None:
        """Set gauge ``name`` to ``value``."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: Union[int, float]) -> None:
        """Record ``value`` into histogram ``name``."""
        self.histogram(name).observe(value)

    # -- read API --------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """All metrics as a nested, JSON-dumpable dict.

        Dotted names become nesting levels: ``"cache.device.hits"``
        lands at ``snapshot()["cache"]["device"]["hits"]``.  A name that
        collides with a prefix of another (``"a.b"`` next to
        ``"a.b.c"``) raises — it would make one value shadow a subtree.
        """
        with self._lock:
            items = sorted(self._metrics.items())
        root: Dict[str, object] = {}
        for name, metric in items:
            parts = name.split(".")
            node = root
            for part in parts[:-1]:
                child = node.setdefault(part, {})
                if not isinstance(child, dict):
                    raise ValueError(f"metric name {name!r} collides with a leaf value")
                node = child
            if isinstance(node.get(parts[-1]), dict):
                raise ValueError(f"metric name {name!r} collides with a subtree")
            node[parts[-1]] = metric.snapshot()
        return root
