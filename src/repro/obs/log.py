"""Structured logging for coordinator and node components.

Every component gets its logger through :func:`get_logger`, which
namespaces it under ``"rocket."`` and stamps each record with the
component name plus any bound context (``job_id``, ``node``):

    log = get_logger("cluster.coordinator")
    log.info("job started", job_id=3, node=1)

As a library, the package installs no handler — records propagate to
the application's logging configuration and stay silent by default
(INFO and below never reach :data:`logging.lastResort`).  The CLI (and
tests) opt in via :func:`configure_logging`, which installs either a
human-readable line format or, under ``--log-json``, one JSON object
per line::

    {"ts": 1754650000.123, "level": "INFO", "component": "cluster.coordinator",
     "msg": "job started", "job_id": 3, "node": 1}
"""

from __future__ import annotations

import json
import logging
import time
from typing import IO, Optional, Union

__all__ = ["ROOT_LOGGER", "JsonLinesFormatter", "configure_logging", "get_logger"]

#: Namespace root of every logger this module hands out.
ROOT_LOGGER = "rocket"

#: Context keys promoted to top-level fields in JSON lines.
_CONTEXT_FIELDS = ("component", "job_id", "node")


class JsonLinesFormatter(logging.Formatter):
    """Format each record as one JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        entry = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "component": getattr(record, "component", record.name),
            "msg": record.getMessage(),
        }
        for key in _CONTEXT_FIELDS[1:]:
            value = getattr(record, key, None)
            if value is not None:
                entry[key] = value
        if record.exc_info:
            entry["exc"] = self.formatException(record.exc_info)
        return json.dumps(entry)


class _TextFormatter(logging.Formatter):
    """Human-readable line format with the same context fields."""

    def format(self, record: logging.LogRecord) -> str:
        component = getattr(record, "component", record.name)
        context = []
        for key in _CONTEXT_FIELDS[1:]:
            value = getattr(record, key, None)
            if value is not None:
                context.append(f"{key}={value}")
        suffix = f" [{' '.join(context)}]" if context else ""
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        base = f"{stamp} {record.levelname:<7} {component}: {record.getMessage()}{suffix}"
        if record.exc_info:
            base = f"{base}\n{self.formatException(record.exc_info)}"
        return base


class _ComponentLogger(logging.LoggerAdapter):
    """Adapter that merges bound context into every record.

    Accepts context both at binding time (``get_logger(component,
    node=2)``) and per call (``log.info("msg", job_id=7)``); per-call
    keys win.  Unknown keyword arguments are treated as context, which
    is what makes the call sites read like structured events.
    """

    def process(self, msg, kwargs):
        context = dict(self.extra or {})
        passthrough = {}
        for key in ("exc_info", "stack_info", "stacklevel"):
            if key in kwargs:
                passthrough[key] = kwargs.pop(key)
        extra = kwargs.pop("extra", None)
        if extra:
            context.update(extra)
        context.update(kwargs)
        passthrough["extra"] = context
        return msg, passthrough

    # LoggerAdapter.log filters kwargs through process() already; the
    # override just relaxes the signature so call sites can pass bare
    # context keywords (job_id=..., node=...).
    def debug(self, msg, *args, **kwargs):
        self.log(logging.DEBUG, msg, *args, **kwargs)

    def info(self, msg, *args, **kwargs):
        self.log(logging.INFO, msg, *args, **kwargs)

    def warning(self, msg, *args, **kwargs):
        self.log(logging.WARNING, msg, *args, **kwargs)

    def error(self, msg, *args, **kwargs):
        self.log(logging.ERROR, msg, *args, **kwargs)

    def log(self, level, msg, *args, **kwargs):
        if self.logger.isEnabledFor(level):
            msg, kwargs = self.process(msg, kwargs)
            self.logger.log(level, msg, *args, **kwargs)


def get_logger(component: str, **context) -> _ComponentLogger:
    """A structured logger for ``component`` with optional bound context.

    ``component`` is a dotted name under the ``rocket`` namespace
    (``"cluster.coordinator"``, ``"session.local"``); bound context
    (``node=3``) is stamped on every record the logger emits.
    """
    logger = logging.getLogger(f"{ROOT_LOGGER}.{component}")
    context.setdefault("component", component)
    return _ComponentLogger(logger, context)


def configure_logging(
    json_lines: bool = False,
    level: Union[int, str] = logging.INFO,
    stream: Optional[IO[str]] = None,
) -> logging.Handler:
    """Install a handler on the ``rocket`` namespace (idempotent).

    Replaces any handler a previous call installed, so flipping between
    JSON and text modes in one process is safe.  Returns the installed
    handler (tests capture its stream).
    """
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonLinesFormatter() if json_lines else _TextFormatter())
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return handler
