"""Divide-and-conquer decomposition of the all-pairs workload (Fig. 5).

The workload — all pairs ``(i, j)`` with ``0 <= i < j < n`` — is the
strict upper triangle of an ``n x n`` matrix.  A :class:`PairBlock`
denotes the intersection of a rectangular index block with that
triangle; splitting a block yields its four quadrants (empty quadrants,
i.e. those entirely on or below the diagonal, are dropped, as the paper
notes).  Recursing to single entries produces the task tree Rocket's
work-stealing scheduler operates on.

The recursion order (child 0 first) visits pairs in Morton/Z order,
which is what gives divide-and-conquer its locality: consecutive leaves
share row or column items, so consecutively executed jobs hit the
device cache.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

__all__ = ["PairBlock", "iter_pairs_morton", "partition_blocks", "partition_pairs"]


@dataclass(frozen=True)
class PairBlock:
    """Pairs ``(i, j)`` with ``row_lo <= i < row_hi``, ``col_lo <= j < col_hi``, ``i < j``.

    Blocks are half-open on both axes.  ``depth`` records the split
    depth, used by the work-stealing statistics ("the task stolen is
    always at the highest level").
    """

    row_lo: int
    row_hi: int
    col_lo: int
    col_hi: int
    depth: int = 0

    def __post_init__(self) -> None:
        if not (0 <= self.row_lo <= self.row_hi and 0 <= self.col_lo <= self.col_hi):
            raise ValueError(f"malformed block {self!r}")

    @classmethod
    def root(cls, n_items: int) -> "PairBlock":
        """The whole workload for ``n_items`` items."""
        if n_items < 2:
            raise ValueError(f"need at least 2 items, got {n_items}")
        return cls(0, n_items, 0, n_items, depth=0)

    # -- size ----------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of pairs in this block (closed form, O(1)).

        For row ``i`` the admissible columns are
        ``[max(col_lo, i + 1), col_hi)``; summing that count over rows
        splits into a constant part (rows entirely left of the column
        range) and an arithmetic series (rows that cut into it).
        """
        r0, r1, c0, c1 = self.row_lo, self.row_hi, self.col_lo, self.col_hi
        if r0 >= r1 or c0 >= c1:
            return 0
        # Rows with i + 1 <= c0 contribute the full width (c1 - c0).
        full_hi = min(r1, c0)  # rows in [r0, full_hi) are "full"
        full_rows = max(0, full_hi - r0)
        total = full_rows * (c1 - c0)
        # Rows with c0 <= i + 1 < c1 contribute c1 - i - 1 each.
        part_lo = max(r0, c0)  # first row whose range is clipped
        part_hi = min(r1, c1 - 1)  # last clipped row is c1 - 2
        if part_hi > part_lo:
            # sum over i in [part_lo, part_hi) of (c1 - 1 - i)
            a = c1 - 1 - part_lo  # first term
            b = c1 - part_hi  # last term
            total += (a + b) * (part_hi - part_lo) // 2
        return total

    @property
    def is_empty(self) -> bool:
        """True when the block contains no pairs."""
        return self.count == 0

    def is_leaf(self, leaf_size: int = 1) -> bool:
        """True when the block should be executed rather than split."""
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        if self.count <= leaf_size:
            return True
        return (self.row_hi - self.row_lo) <= 1 and (self.col_hi - self.col_lo) <= 1

    # -- structure -------------------------------------------------------

    def split(self) -> List["PairBlock"]:
        """The non-empty quadrants of this block (2-4 children).

        Axes of length 1 are not split.  Children are ordered
        upper-left, upper-right, lower-left, lower-right, which makes
        depth-first traversal a Morton-order walk.
        """
        r0, r1, c0, c1 = self.row_lo, self.row_hi, self.col_lo, self.col_hi
        row_cuts = [r0, (r0 + r1) // 2, r1] if r1 - r0 > 1 else [r0, r1]
        col_cuts = [c0, (c0 + c1) // 2, c1] if c1 - c0 > 1 else [c0, c1]
        children: List[PairBlock] = []
        for ri in range(len(row_cuts) - 1):
            for ci in range(len(col_cuts) - 1):
                child = PairBlock(
                    row_cuts[ri], row_cuts[ri + 1],
                    col_cuts[ci], col_cuts[ci + 1],
                    depth=self.depth + 1,
                )
                if not child.is_empty:
                    children.append(child)
        return children

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """Iterate the pairs of this block in row-major order."""
        for i in range(self.row_lo, self.row_hi):
            j_start = max(self.col_lo, i + 1)
            for j in range(j_start, self.col_hi):
                yield (i, j)

    def items(self) -> List[int]:
        """Distinct item indices any pair of this block touches."""
        if self.is_empty:
            return []
        rows = range(self.row_lo, min(self.row_hi, self.col_hi - 1))
        cols = range(max(self.col_lo, self.row_lo + 1), self.col_hi)
        return sorted(set(rows) | set(cols))

    def sample_items(self, k: int = 8) -> List[int]:
        """Up to ``k`` representative item indices of this block, O(k).

        Used by cache-aware stealing to estimate how much of a victim
        task's data a thief already caches, without enumerating the
        whole block.  Samples are striped evenly over both axes.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if self.is_empty:
            return []
        out: List[int] = []
        half = max(1, k // 2)
        row_hi = min(self.row_hi, self.col_hi - 1)
        col_lo = max(self.col_lo, self.row_lo + 1)
        for lo, hi in ((self.row_lo, row_hi), (col_lo, self.col_hi)):
            span = hi - lo
            if span <= 0:
                continue
            step = max(1, span // half)
            out.extend(range(lo, hi, step)[:half])
        return sorted(set(out))[:k]

    def __repr__(self) -> str:
        return (
            f"PairBlock(rows=[{self.row_lo},{self.row_hi}), "
            f"cols=[{self.col_lo},{self.col_hi}), depth={self.depth}, count={self.count})"
        )


def partition_blocks(
    blocks: Sequence[PairBlock],
    weights: Sequence[float],
    granularity: int = 8,
) -> List[List[PairBlock]]:
    """Split ``blocks`` into per-worker shares proportional to ``weights``.

    The heterogeneity-aware initial partition (paper Section 6.5): a
    worker of speed ``w_i`` should start with ``w_i / sum(w)`` of the
    pairs rather than an equal share, so slow devices do not begin the
    run holding work they cannot finish.  The block pool is refined by
    repeatedly splitting the largest block until there are at least
    ``granularity`` blocks per share (or blocks stop being splittable),
    then blocks are assigned largest-first to the share with the
    biggest remaining deficit (LPT scheduling against weighted
    targets).  Deterministic: equal deficits break toward the lower
    index.
    """
    if not weights:
        raise ValueError("need at least one weight")
    if any(w <= 0 for w in weights):
        raise ValueError(f"weights must be positive, got {tuple(weights)}")
    if granularity < 1:
        raise ValueError(f"granularity must be >= 1, got {granularity}")
    k = len(weights)
    shares: List[List[PairBlock]] = [[] for _ in range(k)]
    pool = [b for b in blocks if not b.is_empty]
    if not pool or k == 1:
        shares[0].extend(pool)
        return shares

    # Refine: a heap keyed by -count (seq breaks ties deterministically).
    seq = 0
    heap: List[Tuple[int, int, PairBlock]] = []
    for b in pool:
        heap.append((-b.count, seq, b))
        seq += 1
    heapq.heapify(heap)
    target = granularity * k
    while len(heap) < target:
        neg, _, big = heapq.heappop(heap)
        if big.is_leaf():
            heapq.heappush(heap, (neg, seq, big))
            seq += 1
            break  # largest block is atomic: no further refinement possible
        for child in big.split():
            heapq.heappush(heap, (-child.count, seq, child))
            seq += 1

    refined = sorted((b for _, _, b in heap), key=lambda b: -b.count)
    total = sum(b.count for b in refined)
    scale = total / sum(weights)
    deficit = [w * scale for w in weights]
    for b in refined:
        best = max(range(k), key=lambda i: (deficit[i], -i))
        shares[best].append(b)
        deficit[best] -= b.count
    return shares


def partition_pairs(
    n_items: int, weights: Sequence[float], granularity: int = 8
) -> List[List[PairBlock]]:
    """Speed-proportional shares of the whole ``n_items`` workload."""
    return partition_blocks([PairBlock.root(n_items)], weights, granularity)


def iter_pairs_morton(n_items: int, leaf_size: int = 1) -> Iterator[Tuple[int, int]]:
    """All pairs of ``n_items`` in the depth-first (Morton) D&C order.

    This is the order a single worker with no thieves would execute the
    workload in; the locality-ablation benchmark compares it against
    plain row-major order.
    """
    stack = [PairBlock.root(n_items)]
    while stack:
        block = stack.pop()
        if block.is_leaf(leaf_size):
            yield from block.pairs()
        else:
            stack.extend(reversed(block.split()))
