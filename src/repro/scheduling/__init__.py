"""Locality-aware work scheduling (paper Section 4.2).

Rocket schedules the ``C(n, 2)`` pair jobs by divide-and-conquer over
the upper-triangular pair matrix combined with hierarchical random
work-stealing:

- :mod:`repro.scheduling.quadtree` — recursive quadrant splitting of
  the triangular workload (paper Fig. 5), yielding tasks whose leaves
  are individual pairs (or small pair blocks);
- :mod:`repro.scheduling.workstealing` — per-worker task deques (owner
  works deepest-first from the bottom; thieves steal the *largest*
  task from the top) and victim selection that prefers same-node
  workers before random remote nodes;
- :mod:`repro.scheduling.throttle` — the concurrent-job limit that
  back-pressures job submission so one node cannot drain all work and
  cache capacity cannot deadlock.
"""

from repro.scheduling.quadtree import (
    PairBlock,
    iter_pairs_morton,
    partition_blocks,
    partition_pairs,
)
from repro.scheduling.workstealing import (
    TaskDeque,
    VictimSelector,
    StealOrder,
    StealPolicy,
    WorkerTopology,
    steal_split_depth,
)
from repro.scheduling.throttle import SimAdmission, ThreadAdmission

__all__ = [
    "PairBlock",
    "iter_pairs_morton",
    "partition_blocks",
    "partition_pairs",
    "TaskDeque",
    "VictimSelector",
    "StealOrder",
    "StealPolicy",
    "WorkerTopology",
    "steal_split_depth",
    "SimAdmission",
    "ThreadAdmission",
]
