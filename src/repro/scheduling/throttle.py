"""Concurrent-job-limit back-pressure (paper Section 4.2, last paragraph).

Rocket's runtime is asynchronous: submitting a job does not block.
Without back-pressure one fast worker could claim the entire workload
while others idle, and unbounded in-flight jobs would exhaust cache
slots.  The *concurrent job limit* bounds how many submitted jobs may be
simultaneously in flight per worker; once reached, the worker stops
submitting until an older job completes.

Two implementations share the same counting semantics:

- :class:`SimAdmission` for the discrete-event simulator (waiters are
  simulation events, FIFO);
- :class:`ThreadAdmission` for the real threaded runtime (a bounded
  semaphore).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Deque

if TYPE_CHECKING:  # imported lazily to avoid a package-import cycle
    from repro.sim.engine import Environment, Event

__all__ = ["SimAdmission", "ThreadAdmission"]


class SimAdmission:
    """FIFO admission tickets on simulated time.

    ``acquire()`` returns an event that fires when a ticket is free;
    ``release()`` returns a ticket and wakes the oldest waiter.  The
    simulator's worker loops yield on ``acquire()`` before spawning each
    pair job, which is exactly the paper's "stop submitting new jobs
    until an older job completes".
    """

    def __init__(self, env: "Environment", limit: int) -> None:
        if limit < 1:
            raise ValueError(f"job limit must be >= 1, got {limit}")
        self.env = env
        self.limit = limit
        self._in_flight = 0
        self._waiting: Deque["Event"] = deque()
        self.peak_in_flight = 0
        self.total_admitted = 0

    @property
    def in_flight(self) -> int:
        """Jobs currently admitted and not yet released."""
        return self._in_flight

    def acquire(self) -> "Event":
        """Event that fires when one in-flight ticket is granted."""
        evt = self.env.event()
        if self._in_flight < self.limit:
            self._grant(evt)
        else:
            self._waiting.append(evt)
        return evt

    def _grant(self, evt: "Event") -> None:
        self._in_flight += 1
        self.total_admitted += 1
        if self._in_flight > self.peak_in_flight:
            self.peak_in_flight = self._in_flight
        evt.succeed()

    def release(self) -> None:
        """Return one ticket (called on job completion)."""
        if self._in_flight <= 0:
            raise RuntimeError("release() without matching acquire()")
        self._in_flight -= 1
        if self._waiting and self._in_flight < self.limit:
            self._grant(self._waiting.popleft())


class ThreadAdmission:
    """Bounded-semaphore admission for the threaded runtime."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"job limit must be >= 1, got {limit}")
        self.limit = limit
        self._sem = threading.BoundedSemaphore(limit)
        self._lock = threading.Lock()
        self._in_flight = 0
        self.peak_in_flight = 0
        self.total_admitted = 0

    @property
    def in_flight(self) -> int:
        """Jobs currently admitted and not yet released."""
        with self._lock:
            return self._in_flight

    def acquire(self, timeout: float | None = None) -> bool:
        """Block until a ticket is free; False on timeout."""
        ok = self._sem.acquire(timeout=timeout)
        if ok:
            with self._lock:
                self._in_flight += 1
                self.total_admitted += 1
                if self._in_flight > self.peak_in_flight:
                    self.peak_in_flight = self._in_flight
        return ok

    def release(self) -> None:
        """Return one ticket (called on job completion)."""
        with self._lock:
            if self._in_flight <= 0:
                raise RuntimeError("release() without matching acquire()")
            self._in_flight -= 1
        self._sem.release()
