"""Hierarchical random work-stealing (paper Section 4.2).

Each worker (one per GPU) owns a :class:`TaskDeque`:

- the owner pushes split children and pops from the *bottom* — i.e. it
  descends depth-first, always working on the task with the best data
  locality ("worker threads always prioritize local tasks at the lowest
  level in the tree");
- thieves steal from the *top*, where the largest / highest-level task
  sits ("the task stolen is always at the highest level since it
  results in the most work per steal request").

Victim selection is hierarchical: an idle worker first tries workers on
its own node (in random order), then random remote workers — stealing
locally keeps the host cache warm.  Both choices are ablatable via
:class:`StealOrder` and the ``hierarchical`` flag.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Deque, Dict, Generic, Iterator, List, Optional, Sequence, TypeVar

import numpy as np

__all__ = ["TaskDeque", "StealOrder", "WorkerTopology", "VictimSelector"]

T = TypeVar("T")


class StealOrder(Enum):
    """Which end of the victim's deque a thief takes from."""

    LARGEST = "largest"  # top of the deque: the paper's choice
    SMALLEST = "smallest"  # bottom: ablation baseline


class TaskDeque(Generic[T]):
    """Double-ended task queue for one worker.

    Not thread-safe by itself — the simulator is single-threaded and
    the threaded runtime wraps it in a lock.
    """

    def __init__(self, worker: int) -> None:
        self.worker = worker
        self._tasks: Deque[T] = deque()
        self.pushes = 0
        self.pops = 0
        self.steals_suffered = 0

    def __len__(self) -> int:
        return len(self._tasks)

    def push(self, task: T) -> None:
        """Owner pushes a task at the bottom."""
        self._tasks.append(task)
        self.pushes += 1

    def push_children(self, children: Sequence[T]) -> None:
        """Push split children so the *first* child is popped next.

        Reversed push keeps the depth-first (Morton) traversal order,
        which is what yields the scheduler's data locality.
        """
        for child in reversed(children):
            self.push(child)

    def pop(self) -> Optional[T]:
        """Owner pops the most recently pushed task (bottom / deepest)."""
        if not self._tasks:
            return None
        self.pops += 1
        return self._tasks.pop()

    def steal(self, order: StealOrder = StealOrder.LARGEST) -> Optional[T]:
        """A thief removes a task (top for LARGEST, bottom for SMALLEST)."""
        if not self._tasks:
            return None
        self.steals_suffered += 1
        if order is StealOrder.LARGEST:
            return self._tasks.popleft()
        return self._tasks.pop()

    def peek_steal_target(self, order: StealOrder = StealOrder.LARGEST) -> Optional[T]:
        """Look at the task a steal would take, without removing it.

        Cache-aware stealing (the paper's Section 7 extension) inspects
        prospective victims' tasks before committing to one.
        """
        if not self._tasks:
            return None
        return self._tasks[0] if order is StealOrder.LARGEST else self._tasks[-1]


@dataclass(frozen=True)
class WorkerTopology:
    """Placement of workers on nodes: ``node_of[w]`` is worker ``w``'s node."""

    node_of: tuple

    def __post_init__(self) -> None:
        if not self.node_of:
            raise ValueError("topology needs at least one worker")

    @classmethod
    def from_gpus_per_node(cls, gpus_per_node: Sequence[int]) -> "WorkerTopology":
        """Build a topology from GPU counts, one worker per GPU."""
        placement: List[int] = []
        for node, count in enumerate(gpus_per_node):
            if count < 0:
                raise ValueError(f"negative GPU count for node {node}")
            placement.extend([node] * count)
        if not placement:
            raise ValueError("topology needs at least one GPU")
        return cls(tuple(placement))

    @property
    def n_workers(self) -> int:
        """Total number of workers."""
        return len(self.node_of)

    @property
    def n_nodes(self) -> int:
        """Total number of nodes."""
        return max(self.node_of) + 1

    def peers_on_node(self, worker: int) -> List[int]:
        """Other workers on the same node as ``worker``."""
        node = self.node_of[worker]
        return [w for w, nd in enumerate(self.node_of) if nd == node and w != worker]

    def remote_workers(self, worker: int) -> List[int]:
        """Workers on different nodes than ``worker``."""
        node = self.node_of[worker]
        return [w for w, nd in enumerate(self.node_of) if nd != node]


class VictimSelector:
    """Random victim ordering with node-first preference.

    ``candidates(worker)`` yields prospective victims: same-node peers
    in random order first, then remote workers in random order.  With
    ``hierarchical=False`` all other workers are yielded in one uniform
    random order (the ablation baseline — plain random stealing without
    locality preference).
    """

    def __init__(
        self,
        topology: WorkerTopology,
        rng: np.random.Generator,
        hierarchical: bool = True,
    ) -> None:
        self.topology = topology
        self.hierarchical = hierarchical
        self._rng = rng
        # Pre-computed peer lists; shuffled copies are drawn per call.
        self._local: Dict[int, List[int]] = {
            w: topology.peers_on_node(w) for w in range(topology.n_workers)
        }
        self._remote: Dict[int, List[int]] = {
            w: topology.remote_workers(w) for w in range(topology.n_workers)
        }

    def _shuffled(self, items: List[int]) -> List[int]:
        out = list(items)
        self._rng.shuffle(out)
        return out

    def candidates(self, worker: int) -> Iterator[int]:
        """Yield steal victims for ``worker`` in preference order."""
        if worker < 0 or worker >= self.topology.n_workers:
            raise ValueError(f"unknown worker {worker}")
        if self.hierarchical:
            yield from self._shuffled(self._local[worker])
            yield from self._shuffled(self._remote[worker])
        else:
            yield from self._shuffled(self._local[worker] + self._remote[worker])

    def is_remote(self, worker: int, victim: int) -> bool:
        """True when ``victim`` lives on a different node than ``worker``."""
        return self.topology.node_of[worker] != self.topology.node_of[victim]
