"""Hierarchical random work-stealing (paper Section 4.2).

Each worker (one per GPU) owns a :class:`TaskDeque`:

- the owner pushes split children and pops from the *bottom* — i.e. it
  descends depth-first, always working on the task with the best data
  locality ("worker threads always prioritize local tasks at the lowest
  level in the tree");
- thieves steal from the *top*, where the largest / highest-level task
  sits ("the task stolen is always at the highest level since it
  results in the most work per steal request").

Victim selection is hierarchical: an idle worker first tries workers on
its own node (in random order), then random remote workers — stealing
locally keeps the host cache warm.  Both choices are ablatable via
:class:`StealOrder` and the ``hierarchical`` flag.

Heterogeneous platforms (Section 6.5) additionally use the
speed-weighted :class:`StealPolicy`: victims are ranked by estimated
remaining *time* (pending pairs divided by device speed) instead of
shuffled uniformly, and a slow thief splits a stolen block
:func:`steal_split_depth` times — keeping one quadrant and returning
the rest to the victim's steal end — so fast workers end up holding
the large blocks.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import (
    Callable,
    Collection,
    Deque,
    Dict,
    Generic,
    Iterator,
    List,
    Optional,
    Sequence,
    TypeVar,
)

import numpy as np

__all__ = [
    "TaskDeque",
    "StealOrder",
    "StealPolicy",
    "WorkerTopology",
    "VictimSelector",
    "steal_split_depth",
]

T = TypeVar("T")


class StealOrder(Enum):
    """Which end of the victim's deque a thief takes from."""

    LARGEST = "largest"  # top of the deque: the paper's choice
    SMALLEST = "smallest"  # bottom: ablation baseline


class StealPolicy(Enum):
    """How thieves pick victims and size their steals.

    ``UNIFORM`` is the paper's baseline: victims in (hierarchical)
    random order, every thief takes whole blocks.  ``SPEED`` is the
    heterogeneity-aware policy: victims ranked by estimated remaining
    time, steal sizes scaled by the thief/victim speed ratio, and
    initial work split proportionally to device speed.
    """

    UNIFORM = "uniform"
    SPEED = "speed"


def steal_split_depth(
    thief_speed: float, victim_speed: float, max_depth: int = 3
) -> int:
    """How many times a thief should split a stolen block before keeping it.

    A thief half as fast as its victim keeps roughly half the stolen
    pairs (one split), a quarter as fast two splits, and so on — the
    returned-to-victim quadrants stay at the victim's steal end where a
    fast worker will pick them up.  Thieves at least as fast as the
    victim take the whole block (depth 0).
    """
    if thief_speed <= 0 or victim_speed <= 0:
        raise ValueError("speeds must be positive")
    ratio = victim_speed / thief_speed
    if ratio <= 1.0:
        return 0
    return min(max_depth, int(math.ceil(math.log2(ratio))))


class TaskDeque(Generic[T]):
    """Double-ended task queue for one worker.

    Not thread-safe by itself — the simulator is single-threaded and
    the threaded runtime wraps it in a lock.
    """

    def __init__(self, worker: int) -> None:
        self.worker = worker
        self._tasks: Deque[T] = deque()
        self.pushes = 0
        self.pops = 0
        self.steals_suffered = 0
        #: Sum of ``task.count`` over queued tasks (1 for tasks without a
        #: ``count``) — the estimated remaining work speed-weighted
        #: victim ranking sorts on.
        self.pending_pairs = 0

    def __len__(self) -> int:
        return len(self._tasks)

    @staticmethod
    def _work(task: T) -> int:
        count = getattr(task, "count", 1)
        # Tasks without a pair count (str.count is a method!) weigh 1.
        return count if isinstance(count, int) else 1

    def push(self, task: T) -> None:
        """Owner pushes a task at the bottom."""
        self._tasks.append(task)
        self.pushes += 1
        self.pending_pairs += self._work(task)

    def push_stealable(self, task: T) -> None:
        """Insert a task at the *top* — the next steal target.

        Used by speed-weighted stealing to hand back the quadrants of a
        split stolen block: they stay prime steal targets for fast
        workers instead of burying the victim owner's local work.
        """
        self._tasks.appendleft(task)
        self.pushes += 1
        self.pending_pairs += self._work(task)

    def push_children(self, children: Sequence[T]) -> None:
        """Push split children so the *first* child is popped next.

        Reversed push keeps the depth-first (Morton) traversal order,
        which is what yields the scheduler's data locality.
        """
        for child in reversed(children):
            self.push(child)

    def pop(self) -> Optional[T]:
        """Owner pops the most recently pushed task (bottom / deepest)."""
        if not self._tasks:
            return None
        self.pops += 1
        task = self._tasks.pop()
        self.pending_pairs -= self._work(task)
        return task

    def steal(self, order: StealOrder = StealOrder.LARGEST) -> Optional[T]:
        """A thief removes a task (top for LARGEST, bottom for SMALLEST)."""
        if not self._tasks:
            return None
        self.steals_suffered += 1
        task = self._tasks.popleft() if order is StealOrder.LARGEST else self._tasks.pop()
        self.pending_pairs -= self._work(task)
        return task

    def peek_steal_target(self, order: StealOrder = StealOrder.LARGEST) -> Optional[T]:
        """Look at the task a steal would take, without removing it.

        Cache-aware stealing (the paper's Section 7 extension) inspects
        prospective victims' tasks before committing to one.
        """
        if not self._tasks:
            return None
        return self._tasks[0] if order is StealOrder.LARGEST else self._tasks[-1]


@dataclass(frozen=True)
class WorkerTopology:
    """Placement of workers on nodes: ``node_of[w]`` is worker ``w``'s node."""

    node_of: tuple

    def __post_init__(self) -> None:
        if not self.node_of:
            raise ValueError("topology needs at least one worker")

    @classmethod
    def from_gpus_per_node(cls, gpus_per_node: Sequence[int]) -> "WorkerTopology":
        """Build a topology from GPU counts, one worker per GPU."""
        placement: List[int] = []
        for node, count in enumerate(gpus_per_node):
            if count < 0:
                raise ValueError(f"negative GPU count for node {node}")
            placement.extend([node] * count)
        if not placement:
            raise ValueError("topology needs at least one GPU")
        return cls(tuple(placement))

    @property
    def n_workers(self) -> int:
        """Total number of workers."""
        return len(self.node_of)

    @property
    def n_nodes(self) -> int:
        """Total number of nodes."""
        return max(self.node_of) + 1

    def peers_on_node(self, worker: int) -> List[int]:
        """Other workers on the same node as ``worker``."""
        node = self.node_of[worker]
        return [w for w, nd in enumerate(self.node_of) if nd == node and w != worker]

    def remote_workers(self, worker: int) -> List[int]:
        """Workers on different nodes than ``worker``."""
        node = self.node_of[worker]
        return [w for w, nd in enumerate(self.node_of) if nd != node]


class VictimSelector:
    """Victim ordering with node-first preference.

    ``candidates(worker)`` yields prospective victims: same-node peers
    first, then remote workers.  With ``hierarchical=False`` all other
    workers form one tier (the ablation baseline — plain random
    stealing without locality preference).

    Within each tier, ordering depends on the :class:`StealPolicy`:

    - ``UNIFORM`` — a fresh random shuffle per call (the paper's
      randomized stealing);
    - ``SPEED`` — victims ranked by estimated remaining *time*,
      ``work_of(victim) / speeds[victim]``, largest first, so thieves
      relieve the most-backlogged (relative to its speed) worker.
      Ties keep the random shuffle, preserving the randomized
      tie-break.  ``work_of`` defaults to a constant, which degrades
      to slowest-device-first.
    """

    def __init__(
        self,
        topology: WorkerTopology,
        rng: np.random.Generator,
        hierarchical: bool = True,
        policy: StealPolicy = StealPolicy.UNIFORM,
        speeds: Optional[Sequence[float]] = None,
        work_of: Optional[Callable[[int], float]] = None,
    ) -> None:
        if speeds is not None and len(speeds) != topology.n_workers:
            raise ValueError(
                f"{len(speeds)} speeds for {topology.n_workers} workers"
            )
        self.topology = topology
        self.hierarchical = hierarchical
        self.policy = policy
        self.speeds = tuple(speeds) if speeds is not None else (1.0,) * topology.n_workers
        self.work_of = work_of
        self._rng = rng
        # Pre-computed peer lists; shuffled copies are drawn per call.
        self._local: Dict[int, List[int]] = {
            w: topology.peers_on_node(w) for w in range(topology.n_workers)
        }
        self._remote: Dict[int, List[int]] = {
            w: topology.remote_workers(w) for w in range(topology.n_workers)
        }

    def _shuffled(self, items: List[int]) -> List[int]:
        out = list(items)
        self._rng.shuffle(out)
        return out

    def _ordered(self, items: List[int]) -> List[int]:
        out = self._shuffled(items)
        if self.policy is StealPolicy.SPEED:
            # Stable sort on the shuffle: equal scores stay random.
            out.sort(key=self.remaining_time_estimate, reverse=True)
        return out

    def remaining_time_estimate(self, worker: int) -> float:
        """Estimated time ``worker`` needs for its queued work."""
        work = self.work_of(worker) if self.work_of is not None else 1.0
        return work / self.speeds[worker]

    def candidates(
        self, worker: int, exclude: Collection[int] = ()
    ) -> Iterator[int]:
        """Yield steal victims for ``worker`` in preference order.

        ``exclude`` drops specific workers from every tier — a probe
        sent to a dead or departed victim can only time out, so elastic
        runtimes pass the non-live set here.
        """
        if worker < 0 or worker >= self.topology.n_workers:
            raise ValueError(f"unknown worker {worker}")
        if exclude:
            keep = lambda tier: [w for w in tier if w not in exclude]  # noqa: E731
        else:
            keep = lambda tier: tier  # noqa: E731
        if self.hierarchical:
            yield from self._ordered(keep(self._local[worker]))
            yield from self._ordered(keep(self._remote[worker]))
        else:
            yield from self._ordered(keep(self._local[worker] + self._remote[worker]))

    def split_depth(self, thief: int, victim: int) -> int:
        """Split depth for a block ``thief`` steals from ``victim``.

        Zero under the UNIFORM policy (whole-block steals, the paper's
        baseline); under SPEED, :func:`steal_split_depth` of the two
        workers' speed factors.
        """
        if self.policy is not StealPolicy.SPEED:
            return 0
        return steal_split_depth(self.speeds[thief], self.speeds[victim])

    def is_remote(self, worker: int, victim: int) -> bool:
        """True when ``victim`` lives on a different node than ``worker``."""
        return self.topology.node_of[worker] != self.topology.node_of[victim]
