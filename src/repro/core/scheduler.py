"""Concurrent multi-job scheduling: admission, priorities, fair sharing.

One live backend session used to execute jobs strictly serially, in
submission order — a small bipartite query queued behind a large
all-pairs job waited for the *entire* run even while devices idled
during the big job's I/O and parse phases.  The :class:`JobScheduler`
turns the warm-backend substrate into a multi-tenant service: many
in-flight jobs are multiplexed over a single live backend, with a
policy deciding who runs and how much.

Two policies (:class:`SchedulingPolicy`):

- ``FIFO`` — the compatibility default: at most one job active at a
  time, strictly in submission order.  Existing serial ``submit()``
  callers keep identical behaviour.
- ``FAIR`` — weighted fair sharing: up to ``max_active`` jobs run
  concurrently; each job's :class:`~repro.core.workload.Workload`
  decomposition is split into grain-sized
  :class:`~repro.scheduling.quadtree.PairBlock` quanta which a single
  shared admission loop hands out by *virtual time* (stride
  scheduling): handing ``c`` pairs of a job with weight ``w`` advances
  its virtual clock by ``c / w``, and the next quantum always goes to
  the runnable job with the smallest clock.  Over any interval every
  backlogged job therefore receives device time proportional to its
  ``priority=``, and a newly submitted job starts at the current
  minimum clock rather than at zero — it gets its fair share from now
  on, it cannot starve the incumbents to "catch up".

The scheduler is backend-agnostic bookkeeping: both
:class:`~repro.runtime.localrocket.LocalSession` (block-level grants
into per-job pipelines on one shared engine) and
:class:`~repro.runtime.cluster.ClusterSession` (priority-ordered job
admission; nodes interleave the active jobs' pair streams on their
shared engines) drive one instance from their serve loop.  Per-job
scheduling accounting — queue wait, running time, grant counts — is
split out of the backend ``RunStats`` into a :class:`JobAccounting`
attached to each handle, because a job's wall-clock costs under
sharing are a property of the *schedule*, not of the node pipelines.

Cancellation of a job that is still ``QUEUED`` resolves immediately
inside :meth:`RunHandle.cancel` — the scheduler just unlinks the entry;
the backend session is never involved.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from collections import deque

from repro.core.session import RunHandle, RunState
from repro.scheduling.quadtree import PairBlock

__all__ = [
    "SchedulingPolicy",
    "coerce_policy",
    "JobAccounting",
    "JobScheduler",
    "DEFAULT_FAIR_ACTIVE",
]

#: Concurrently active jobs under FAIR when ``max_active`` is not given.
DEFAULT_FAIR_ACTIVE = 4


class SchedulingPolicy(enum.Enum):
    """How a session orders and overlaps its submitted jobs."""

    #: Serial, submission order — the pre-scheduler behaviour.
    FIFO = "fifo"
    #: Weighted fair sharing over pair blocks; priorities are weights.
    FAIR = "fair"


def coerce_policy(value) -> SchedulingPolicy:
    """Accept a SchedulingPolicy or its string name ("fifo" / "fair")."""
    if isinstance(value, SchedulingPolicy):
        return value
    try:
        return SchedulingPolicy(value)
    except ValueError:
        raise ValueError(
            f"unknown scheduling policy {value!r}; "
            f"available: {', '.join(p.value for p in SchedulingPolicy)}"
        ) from None


@dataclass
class JobAccounting:
    """Per-job scheduling costs, split out of the backend run stats.

    Backend ``RunStats`` describe what the node pipelines did (loads,
    cache hits, kernel time); this object describes what the *schedule*
    did to the job: how long it queued, how long it ran, how many
    block grants it received.  Under concurrent execution the two are
    deliberately separate — cache counters on a shared engine overlap
    between co-running jobs, but queue/run wall-clock and grant counts
    are exact per job.
    """

    job_id: int
    priority: float
    policy: str
    pairs_total: int
    #: ``time.monotonic()`` stamps of the lifecycle transitions.
    submitted_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Block grants the shared admission loop issued to this job.
    blocks_granted: int = 0
    #: Accepted pairs handed to the backend so far.
    pairs_granted: int = 0
    #: Accepted pairs the backend completed so far.
    pairs_completed: int = 0
    #: Largest granted-not-completed backlog observed.  Only tracked
    #: for block-granular hand-out (the local FAIR policy); wholesale
    #: dispatch (FIFO, the cluster backend) leaves it 0 — there the
    #: execution-level pressure cap is ``max_inflight``, enforced per
    #: node engine, not a grant-level statistic.
    peak_inflight: int = 0
    #: Fault-tolerance costs (elastic cluster sessions only): nodes
    #: that died while this job ran, and accepted pairs re-enqueued
    #: from departed nodes (an upper bound on duplicated work — pairs
    #: whose first result landed are deduplicated, not re-counted).
    nodes_lost: int = 0
    pairs_recovered: int = 0

    @property
    def queued_seconds(self) -> float:
        """Time spent waiting in the admission queue.

        Ends at admission, or at the terminal state for jobs that never
        left the queue (cancelled / drained while QUEUED).
        """
        if self.started_at is not None:
            end = self.started_at
        elif self.finished_at is not None:
            end = self.finished_at
        else:
            end = time.monotonic()
        return max(0.0, end - self.submitted_at)

    @property
    def running_seconds(self) -> float:
        """Time between admission and the terminal state."""
        if self.started_at is None:
            return 0.0
        end = self.finished_at if self.finished_at is not None else time.monotonic()
        return max(0.0, end - self.started_at)

    def to_dict(self) -> Dict[str, object]:
        """JSON-dumpable form (the per-job record in ``session.metrics()``)."""
        return {
            "job_id": self.job_id,
            "priority": self.priority,
            "policy": self.policy,
            "pairs_total": self.pairs_total,
            "pairs_granted": self.pairs_granted,
            "pairs_completed": self.pairs_completed,
            "blocks_granted": self.blocks_granted,
            "peak_inflight": self.peak_inflight,
            "queued_seconds": self.queued_seconds,
            "running_seconds": self.running_seconds,
            "nodes_lost": self.nodes_lost,
            "pairs_recovered": self.pairs_recovered,
        }

    def summary(self) -> str:
        """Short human-readable digest."""
        peak = str(self.peak_inflight) if self.peak_inflight else "n/a"
        return (
            f"job {self.job_id} [{self.policy}, w={self.priority:g}]: "
            f"queued {self.queued_seconds:.3f}s, ran {self.running_seconds:.3f}s; "
            f"{self.blocks_granted} grants, {self.pairs_completed}/{self.pairs_total} "
            f"pairs, peak inflight {peak}"
        )


class _Job:
    """Scheduler-internal state of one submitted job."""

    __slots__ = (
        "handle", "seq", "vtime", "blocks", "fully_granted", "accounting",
    )

    def __init__(self, handle: RunHandle, seq: int, accounting: JobAccounting) -> None:
        self.handle = handle
        self.seq = seq
        self.vtime = 0.0
        #: FAIR hand-out queue of ``(block, accepted_count)`` quanta.
        self.blocks: Deque[Tuple[PairBlock, int]] = deque()
        self.fully_granted = False
        self.accounting = accounting

    @property
    def inflight(self) -> int:
        return self.accounting.pairs_granted - self.accounting.pairs_completed


class JobScheduler:
    """Admission queue + weighted fair block hand-out for one session.

    Thread-safe; backend serve loops call :meth:`admit` /
    :meth:`next_grant` / :meth:`on_completed` / :meth:`finish`, while
    :meth:`submit` and the queued-cancel hook run on caller threads.
    """

    def __init__(
        self,
        policy: SchedulingPolicy = SchedulingPolicy.FIFO,
        *,
        max_active: Optional[int] = None,
        grain_pairs: int = 16,
        window_pairs: int = 48,
        decompose: bool = False,
    ) -> None:
        if max_active is None:
            max_active = 1 if policy is SchedulingPolicy.FIFO else DEFAULT_FAIR_ACTIVE
        if max_active < 1:
            raise ValueError(f"max_active must be >= 1, got {max_active}")
        if policy is SchedulingPolicy.FIFO and max_active != 1:
            # FIFO *is* the serial contract; silently running FIFO jobs
            # concurrently would be neither policy.
            raise ValueError(
                f"the FIFO policy is serial (max_active=1); got max_active="
                f"{max_active} — use policy=\"fair\" for concurrent jobs"
            )
        if grain_pairs < 1:
            raise ValueError(f"grain_pairs must be >= 1, got {grain_pairs}")
        if window_pairs < 1:
            raise ValueError(f"window_pairs must be >= 1, got {window_pairs}")
        self.policy = policy
        self.max_active = max_active
        self.grain_pairs = grain_pairs
        self.window_pairs = window_pairs
        #: When set, :meth:`submit` precomputes the workload's grain
        #: decomposition on the *submitting* thread.  Sessions that
        #: grant block-level (local FAIR) use this so a large filtered
        #: workload's O(pairs) predicate sweep stalls only its own
        #: caller, never the shared admission loop — head-of-line
        #: latency is exactly what the FAIR policy exists to remove.
        self.decompose = decompose
        self._lock = threading.Lock()
        self._queued: List[_Job] = []
        self._active: Dict[RunHandle, _Job] = {}
        self._seq = 0
        self._next_job_id = 0

    # -- interrogation ---------------------------------------------------

    @property
    def queued_count(self) -> int:
        with self._lock:
            return len(self._queued)

    @property
    def active_count(self) -> int:
        with self._lock:
            return len(self._active)

    @property
    def idle(self) -> bool:
        """True when no job is queued or active."""
        with self._lock:
            return not self._queued and not self._active

    def active_handles(self) -> List[RunHandle]:
        with self._lock:
            return list(self._active)

    def queued_handles(self) -> List[RunHandle]:
        with self._lock:
            return [j.handle for j in self._queued]

    # -- submission ------------------------------------------------------

    def submit(self, handle: RunHandle) -> JobAccounting:
        """Enqueue ``handle`` (QUEUED); wires the immediate-cancel hook.

        Reads the handle's ``priority`` / ``max_inflight``; attaches
        and returns the job's :class:`JobAccounting`.
        """
        with self._lock:
            self._seq += 1
            job_id = self._next_job_id
            self._next_job_id += 1
            accounting = JobAccounting(
                job_id=job_id,
                priority=handle.priority,
                policy=self.policy.value,
                pairs_total=handle.workload.n_pairs,
                submitted_at=time.monotonic(),
            )
            job = _Job(handle, self._seq, accounting)
            handle.accounting = accounting
        if self.decompose:
            # Pay the decomposition (O(pairs) under a filter) here, on
            # the submitter's thread, not on the shared admission loop.
            job.blocks.extend(handle.workload.grain_blocks(self.grain_pairs))
        # A job that was never handed to the backend resolves its
        # cancellation right here, synchronously, without the backend
        # session ever seeing it.  The hook must be installed *before*
        # the job becomes admittable: enqueueing first would let the
        # serve loop admit it and install the running-cancel callback,
        # which this assignment would then clobber.
        handle._set_cancel_cb(lambda: self._cancel_queued(handle))
        with self._lock:
            self._queued.append(job)
        return accounting

    def _cancel_queued(self, handle: RunHandle) -> None:
        """Queued-cancel hook: unlink and resolve CANCELLED immediately."""
        with self._lock:
            job = next((j for j in self._queued if j.handle is handle), None)
            if job is None:
                return  # already admitted: the running-cancel path owns it
            self._queued.remove(job)
            job.accounting.finished_at = time.monotonic()
        handle._finish(RunState.CANCELLED)

    # -- admission -------------------------------------------------------

    def _admission_order(self) -> List[_Job]:
        if self.policy is SchedulingPolicy.FIFO:
            return sorted(self._queued, key=lambda j: j.seq)
        # FAIR: highest priority first, submission order within a tier.
        return sorted(self._queued, key=lambda j: (-j.handle.priority, j.seq))

    def admit(self) -> List[RunHandle]:
        """Move queued jobs into the active set, up to ``max_active``.

        Returns the newly admitted handles in admission order; the
        caller activates them on the backend (and must call
        :meth:`finish` or :meth:`discard` for each eventually).
        Already-cancelled queued entries are skipped here — their
        cancel hook resolved them.
        """
        admitted: List[RunHandle] = []
        cancelled: List[_Job] = []
        now = time.monotonic()
        with self._lock:
            if not self._queued:
                return admitted
            floor = min((j.vtime for j in self._active.values()), default=0.0)
            for job in self._admission_order():
                if job.handle.cancel_requested:
                    # A cancel that raced the hook installation: resolve
                    # it here instead of handing the job to the backend.
                    self._queued.remove(job)
                    job.accounting.finished_at = now
                    cancelled.append(job)
                    continue
                if len(self._active) >= self.max_active:
                    break
                self._queued.remove(job)
                job.vtime = floor  # fair share from now on, no catch-up
                job.accounting.started_at = now
                self._active[job.handle] = job
                admitted.append(job.handle)
        for job in cancelled:
            if not job.handle.done():
                job.handle._finish(RunState.CANCELLED)
        return admitted

    # -- fair block hand-out (local backend) -----------------------------

    def load_blocks(self, handle: RunHandle, grain: Optional[int] = None) -> int:
        """Decompose the job's workload into grain-sized hand-out quanta.

        The manual alternative to ``decompose=True`` (which does this
        at submit time, on the submitting thread).  Returns the number
        of quanta.  FIFO sessions skip both and hand the raw
        decomposition to the backend wholesale
        (:meth:`mark_fully_granted`).
        """
        grain = grain if grain is not None else self.grain_pairs
        quanta = handle.workload.grain_blocks(grain)
        with self._lock:
            job = self._active[handle]
            job.blocks.extend(quanta)
            if not job.blocks:
                job.fully_granted = True
        return len(quanta)

    def mark_fully_granted(self, handle: RunHandle) -> None:
        """Record that the backend received the whole workload up front.

        ``peak_inflight`` is deliberately left untracked here: under
        wholesale dispatch every pair is "granted" at once, so the
        grant-level backlog statistic would always read ``pairs_total``
        and convey nothing.
        """
        with self._lock:
            job = self._active[handle]
            job.blocks.clear()
            job.fully_granted = True
            job.accounting.blocks_granted += 1
            job.accounting.pairs_granted = job.accounting.pairs_total

    def _window(self, job: _Job) -> int:
        cap = job.handle.max_inflight
        return cap if cap is not None else self.window_pairs

    def next_grant(self) -> Optional[Tuple[RunHandle, PairBlock, int]]:
        """The shared admission loop's next hand-out, or None.

        Picks the runnable active job (blocks remaining, in-flight
        window open) with the smallest virtual time, pops its next
        quantum and advances its clock by ``pairs / priority``.
        """
        with self._lock:
            best: Optional[_Job] = None
            for job in self._active.values():
                if not job.blocks:
                    continue
                count = job.blocks[0][1]
                if job.inflight and job.inflight + count > self._window(job):
                    continue
                if best is None or (job.vtime, job.seq) < (best.vtime, best.seq):
                    best = job
            if best is None:
                return None
            block, count = best.blocks.popleft()
            best.vtime += count / best.handle.priority
            best.accounting.blocks_granted += 1
            best.accounting.pairs_granted += count
            best.accounting.peak_inflight = max(
                best.accounting.peak_inflight, best.inflight
            )
            if not best.blocks:
                best.fully_granted = True
            return best.handle, block, count

    def on_completed(self, handle: RunHandle, n_pairs: int = 1) -> None:
        """Credit ``n_pairs`` completions (opens the job's window)."""
        with self._lock:
            job = self._active.get(handle)
            if job is not None:
                job.accounting.pairs_completed += n_pairs

    def drop_remaining(self, handle: RunHandle) -> None:
        """Discard a cancelled/failed job's not-yet-granted quanta."""
        with self._lock:
            job = self._active.get(handle)
            if job is not None:
                job.blocks.clear()
                job.fully_granted = True

    # -- completion ------------------------------------------------------

    def finish(self, handle: RunHandle) -> None:
        """Retire an active job (any terminal state); stamps accounting.

        A DONE job's completion count is snapped to the total: backends
        that dispatch wholesale (FIFO local) do not credit per-pair
        completions through :meth:`on_completed`, yet a successfully
        finished job completed every pair by definition.
        """
        with self._lock:
            job = self._active.pop(handle, None)
            if job is not None:
                if job.accounting.finished_at is None:
                    job.accounting.finished_at = time.monotonic()
                if handle.state is RunState.DONE:
                    job.accounting.pairs_completed = job.accounting.pairs_total

    def fail_all(self, error_factory) -> List[RunHandle]:
        """Drain every queued job (dead session); returns the handles.

        ``error_factory()`` builds a fresh exception per handle; the
        caller finishes active jobs itself (they need backend-specific
        teardown).
        """
        with self._lock:
            queued, self._queued = self._queued, []
            now = time.monotonic()
            for job in queued:
                job.accounting.finished_at = now
        failed = []
        for job in queued:
            job.handle._finish(RunState.FAILED, error=error_factory())
            failed.append(job.handle)
        return failed
