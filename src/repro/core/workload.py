"""First-class workload descriptions for the session/job execution API.

The paper's interface ends at "call Rocket's main class with an input
array of Key elements" — the workload is implicitly *all pairs* of that
array.  Production corpora need more shapes than the full triangle, so
a :class:`Workload` makes the pair set itself a first-class object that
every execution backend understands:

- :class:`AllPairs` — the paper's workload, ``C(n, 2)`` pairs;
- :class:`FilteredPairs` — all pairs restricted by a user predicate
  (the structured successor of the ad-hoc ``pair_filter=`` argument);
- :class:`Bipartite` — compare a query set against a reference corpus
  without computing reference-internal (or query-internal) pairs;
- :class:`DeltaPairs` — incremental corpus growth: only ``new x old``
  and ``new x new`` pairs, mergeable into a prior run's matrix via
  :meth:`~repro.core.result.ResultMatrix.merge`.

Each workload knows three things the runtimes need:

1. its **index space** (:attr:`Workload.keys` — the ordered union key
   list; pairs are index pairs ``i < j`` into it),
2. its **pair-block decomposition** (:meth:`Workload.blocks` — a list
   of :class:`~repro.scheduling.quadtree.PairBlock` regions the
   quadtree partitioner splits and the work-stealing scheduler
   executes; a ``PairBlock`` is a rectangle intersected with the strict
   upper triangle, which expresses all four shapes exactly), and
3. its **result shape** (:meth:`Workload.make_result` — a
   :class:`~repro.core.result.ResultMatrix` whose ``expected_pairs``
   equals the workload's accepted pair count, so ``is_complete()`` is
   meaningful for partial triangles).

``as_workload`` adapts the legacy ``(keys, pair_filter)`` calling
convention, keeping ``Rocket.run(keys, pair_filter=...)`` working as a
thin wrapper over the workload API.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import (
    Callable,
    Generic,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.core.result import ResultMatrix
from repro.scheduling.quadtree import PairBlock

__all__ = [
    "Workload",
    "AllPairs",
    "FilteredPairs",
    "Bipartite",
    "DeltaPairs",
    "as_workload",
]

K = TypeVar("K", bound=Hashable)

PairFilter = Callable[[K, K], bool]


def _check_keys(keys: Sequence[K], what: str) -> List[K]:
    keys = list(keys)
    if not keys:
        raise ValueError(f"{what} must not be empty")
    if len(set(keys)) != len(keys):
        raise ValueError(f"duplicate keys in {what}")
    return keys


class Workload(ABC, Generic[K]):
    """A set of key pairs to compare, with its scheduling decomposition.

    Subclasses fix :attr:`keys` (the ordered index space) in their
    constructor and implement :meth:`blocks`; everything else — pair
    counting, per-block accepted counts, iteration, result shaping —
    derives from the blocks plus the optional :attr:`pair_filter`.
    """

    #: Short scheme name used in summaries ("all-pairs", "bipartite", ...).
    kind: str = "?"

    keys: List[K]

    def __init__(self) -> None:
        self._block_counts: Optional[List[int]] = None
        self._grain_cache: Optional[Tuple[int, List[Tuple[PairBlock, int]]]] = None

    # -- shape -----------------------------------------------------------

    @abstractmethod
    def blocks(self) -> List[PairBlock]:
        """The pair-block decomposition handed to the partitioner.

        Blocks are disjoint and together cover exactly the workload's
        pair set (before filtering).  Fresh objects each call: callers
        split them destructively into task trees.
        """

    @property
    def pair_filter(self) -> Optional[PairFilter]:
        """Optional predicate restricting the blocks' pairs (or None)."""
        return None

    @property
    def n_items(self) -> int:
        """Size of the index space."""
        return len(self.keys)

    @property
    def n_pairs(self) -> int:
        """Number of *accepted* pairs (filter applied)."""
        return sum(self.block_counts())

    def block_counts(self) -> List[int]:
        """Accepted pairs per block, computed once and cached.

        With a filter this is an O(pairs) sweep; schedulers that size
        partitions by accepted counts (the SPEED policy) reuse these
        numbers instead of re-evaluating the predicate per block.
        """
        if self._block_counts is None:
            flt = self.pair_filter
            keys = self.keys
            counts = []
            for block in self.blocks():
                if flt is None:
                    counts.append(block.count)
                else:
                    counts.append(
                        sum(1 for i, j in block.pairs() if flt(keys[i], keys[j]))
                    )
            if sum(counts) == 0:
                raise ValueError("pair_filter rejected every pair")
            self._block_counts = counts
        return list(self._block_counts)

    def grain_blocks(self, grain_pairs: int) -> List[Tuple[PairBlock, int]]:
        """Split the decomposition into hand-out quanta for fair sharing.

        Returns ``(block, accepted_pairs)`` tuples, each block holding
        at most ``grain_pairs`` raw pairs (or being unsplittable), in
        depth-first Morton order so consecutively granted quanta keep
        the cache locality of the divide-and-conquer walk.  Quanta
        whose pairs are all filter-rejected are dropped — granting them
        would occupy scheduler bookkeeping without producing work.

        This is the granularity at which the multi-job scheduler
        interleaves jobs: one quantum is the unit of device time a job
        is granted per scheduling decision.

        Memoized per grain, and the sweep *seeds* the per-block
        accepted counts: calling this before :attr:`n_pairs` /
        :meth:`make_result` means a filtered workload's predicate runs
        over each pair exactly once for the whole submission, not once
        per consumer.
        """
        if grain_pairs < 1:
            raise ValueError(f"grain_pairs must be >= 1, got {grain_pairs}")
        if self._grain_cache is not None and self._grain_cache[0] == grain_pairs:
            return list(self._grain_cache[1])
        flt = self.pair_filter
        keys = self.keys
        out: List[Tuple[PairBlock, int]] = []
        top_counts: List[int] = []
        for top in self.blocks():
            accepted_total = 0
            stack = [top]
            while stack:
                block = stack.pop()
                if block.count > grain_pairs and not block.is_leaf():
                    stack.extend(reversed(block.split()))
                    continue
                if flt is None:
                    accepted = block.count
                else:
                    accepted = sum(
                        1 for i, j in block.pairs() if flt(keys[i], keys[j])
                    )
                accepted_total += accepted
                if accepted:
                    out.append((block, accepted))
            top_counts.append(accepted_total)
        if sum(top_counts) == 0:
            raise ValueError("pair_filter rejected every pair")
        if self._block_counts is None:
            self._block_counts = top_counts
        self._grain_cache = (grain_pairs, list(out))
        return out

    def pairs(self) -> Iterator[Tuple[K, K]]:
        """Iterate the accepted ``(key_a, key_b)`` pairs, block by block."""
        flt = self.pair_filter
        keys = self.keys
        for block in self.blocks():
            for i, j in block.pairs():
                if flt is None or flt(keys[i], keys[j]):
                    yield keys[i], keys[j]

    def make_result(self) -> ResultMatrix:
        """An empty result matrix shaped for this workload."""
        return ResultMatrix(self.keys, expected_pairs=self.n_pairs)

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"{self.kind}: {self.n_pairs} pairs over {self.n_items} items"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"


class AllPairs(Workload[K]):
    """The paper's workload: every unordered pair of ``keys``."""

    kind = "all-pairs"

    def __init__(self, keys: Sequence[K]) -> None:
        super().__init__()
        self.keys = _check_keys(keys, "keys")
        if len(self.keys) < 2:
            raise ValueError(f"an all-pairs workload needs at least 2 keys, got {len(self.keys)}")

    def blocks(self) -> List[PairBlock]:
        return [PairBlock.root(len(self.keys))]


class FilteredPairs(AllPairs[K]):
    """All pairs of ``keys`` restricted by ``predicate(key_a, key_b)``.

    The structured form of the legacy ``pair_filter=`` argument (paper
    Section 7's "user-defined heuristics to reduce the number of
    pairs").  Rejected pairs are skipped without being loaded or
    compared; the result matrix expects only the accepted pairs.

    The cluster backend ships the predicate to its worker processes, so
    it must be picklable — a module-level function, not a lambda or
    closure; the session validates this at submit time.
    """

    kind = "filtered-pairs"

    def __init__(self, keys: Sequence[K], predicate: PairFilter) -> None:
        super().__init__(keys)
        if not callable(predicate):
            raise TypeError(f"predicate must be callable, got {type(predicate).__name__}")
        self._predicate = predicate

    @property
    def pair_filter(self) -> Optional[PairFilter]:
        return self._predicate


class Bipartite(Workload[K]):
    """Cross-corpus comparison: every ``keys_a`` x ``keys_b`` pair.

    Compares a query set against a reference corpus without computing
    reference-internal or query-internal pairs — ``len(a) * len(b)``
    pairs instead of ``C(len(a) + len(b), 2)``.  The index space is
    ``keys_a + keys_b`` and the single pair block is the rectangle
    ``rows in [0, n_a) x cols in [n_a, n_a + n_b)``, which lies
    entirely above the diagonal, so the quadtree scheduler needs no
    special casing.
    """

    kind = "bipartite"

    def __init__(self, keys_a: Sequence[K], keys_b: Sequence[K]) -> None:
        super().__init__()
        self.keys_a = _check_keys(keys_a, "keys_a")
        self.keys_b = _check_keys(keys_b, "keys_b")
        overlap = set(self.keys_a) & set(self.keys_b)
        if overlap:
            raise ValueError(
                f"keys_a and keys_b must be disjoint; both contain {sorted(map(str, overlap))[:3]}"
            )
        self.keys = self.keys_a + self.keys_b

    def blocks(self) -> List[PairBlock]:
        n_a = len(self.keys_a)
        return [PairBlock(0, n_a, n_a, n_a + len(self.keys_b))]


class DeltaPairs(Workload[K]):
    """Incremental corpus growth: only the pairs a new batch adds.

    After an :class:`AllPairs` run over ``prior_keys``, appending
    ``new_keys`` to the corpus only requires ``new x old`` and
    ``new x new`` comparisons — this workload is exactly that set.
    Merging its result into the prior matrix
    (``prior.merge(delta_result)``) yields the full all-pairs matrix of
    the grown corpus without recomputing the prior triangle.

    The index space is ``prior_keys + new_keys``; the blocks are the
    ``old-rows x new-cols`` rectangle plus the strict upper triangle of
    the new batch.
    """

    kind = "delta-pairs"

    def __init__(self, prior_keys: Sequence[K], new_keys: Sequence[K]) -> None:
        super().__init__()
        self.prior_keys = _check_keys(prior_keys, "prior_keys")
        self.new_keys = _check_keys(new_keys, "new_keys")
        overlap = set(self.prior_keys) & set(self.new_keys)
        if overlap:
            raise ValueError(
                f"prior_keys and new_keys must be disjoint; both contain "
                f"{sorted(map(str, overlap))[:3]}"
            )
        self.keys = self.prior_keys + self.new_keys

    def blocks(self) -> List[PairBlock]:
        n_old = len(self.prior_keys)
        n = n_old + len(self.new_keys)
        blocks = [PairBlock(0, n_old, n_old, n)]  # old x new
        if len(self.new_keys) >= 2:
            blocks.append(PairBlock(n_old, n, n_old, n))  # new x new triangle
        return blocks


def as_workload(
    keys_or_workload, pair_filter: Optional[PairFilter] = None
) -> Workload:
    """Adapt the legacy ``(keys, pair_filter)`` convention to a Workload.

    A :class:`Workload` passes through unchanged (combining it with a
    ``pair_filter`` is an error — put the predicate in a
    :class:`FilteredPairs` instead); a plain key sequence becomes
    :class:`AllPairs` or, with a filter, :class:`FilteredPairs`.
    """
    if isinstance(keys_or_workload, Workload):
        if pair_filter is not None:
            raise TypeError(
                "cannot combine pair_filter= with a Workload; use FilteredPairs"
            )
        return keys_or_workload
    if pair_filter is not None:
        return FilteredPairs(keys_or_workload, pair_filter)
    return AllPairs(keys_or_workload)
