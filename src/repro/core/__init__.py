"""Rocket's public programming interface (paper Section 3).

Users implement an :class:`~repro.core.api.Application` — four
application-specific callbacks (parse on CPU, pre-process on GPU,
compare on GPU, post-process on CPU) — and hand it to
:class:`~repro.core.rocket.Rocket` together with the list of item keys.
Rocket takes care of "network communication, data transfers, memory
management, scheduling, exploiting data reuse, load balancing, and
overlapping computation with I/O".

Beyond the paper's one-shot call, the package provides the
session/job execution API: :class:`~repro.core.workload.Workload`
objects describe *which* pairs to compare (:class:`AllPairs`,
:class:`FilteredPairs`, :class:`Bipartite`, :class:`DeltaPairs`), a
:class:`~repro.core.session.RocketSession` executes many of them
against one warm backend, and each submission's
:class:`~repro.core.session.RunHandle` offers blocking results,
incremental streaming, progress and cancellation.
"""

from repro.core.api import Application
from repro.core.buffers import HostBuffer, DeviceBuffer
from repro.core.result import ResultMatrix
from repro.core.rocket import Rocket, RocketConfig
from repro.core.scheduler import JobAccounting, JobScheduler, SchedulingPolicy
from repro.core.session import RocketSession, RunHandle, RunState, SessionClosed
from repro.core.workload import (
    AllPairs,
    Bipartite,
    DeltaPairs,
    FilteredPairs,
    Workload,
)

__all__ = [
    "Application",
    "HostBuffer",
    "DeviceBuffer",
    "ResultMatrix",
    "Rocket",
    "RocketConfig",
    "RocketSession",
    "RunHandle",
    "RunState",
    "SessionClosed",
    "SchedulingPolicy",
    "JobScheduler",
    "JobAccounting",
    "Workload",
    "AllPairs",
    "FilteredPairs",
    "Bipartite",
    "DeltaPairs",
]
