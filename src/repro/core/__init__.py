"""Rocket's public programming interface (paper Section 3).

Users implement an :class:`~repro.core.api.Application` — four
application-specific callbacks (parse on CPU, pre-process on GPU,
compare on GPU, post-process on CPU) — and hand it to
:class:`~repro.core.rocket.Rocket` together with the list of item keys.
Rocket takes care of "network communication, data transfers, memory
management, scheduling, exploiting data reuse, load balancing, and
overlapping computation with I/O".
"""

from repro.core.api import Application
from repro.core.buffers import HostBuffer, DeviceBuffer
from repro.core.result import ResultMatrix
from repro.core.rocket import Rocket, RocketConfig

__all__ = [
    "Application",
    "HostBuffer",
    "DeviceBuffer",
    "ResultMatrix",
    "Rocket",
    "RocketConfig",
]
