"""The user-facing application interface (paper Fig. 3).

An all-pairs application supplies four functions along Rocket's fixed
pipeline (paper Fig. 2)::

    load l(i):  [remote IO] -> parse (CPU) -> [H2D] -> preprocess (GPU)
    f(x, y):    compare (GPU) -> [D2H] -> postprocess (CPU)

The bracketed stages are Rocket's responsibility; the user implements
only the four named callbacks plus the key-to-file mapping.  All
callbacks must be pure functions of their inputs (the load pipeline is
assumed deterministic — that is what makes caching sound).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Generic, Hashable, List, Sequence, TypeVar

import numpy as np

__all__ = ["Application"]

K = TypeVar("K", bound=Hashable)
R = TypeVar("R")


class Application(ABC, Generic[K, R]):
    """Base class for all-pairs applications.

    Type parameters: ``K`` is the item key type (e.g. a file stem), ``R``
    the per-pair result type (e.g. a correlation score).
    """

    #: Version tag of this application's load/compare pipeline.  Bump it
    #: whenever ``parse``/``preprocess``/``compare``/``postprocess``
    #: change meaning: the persistent store keys payloads and memoized
    #: results on :meth:`fingerprint`, so a bump invalidates everything
    #: cached under the old behaviour.
    version: str = "1"

    @abstractmethod
    def file_name(self, key: K) -> str:
        """Name of the input file for ``key`` in the file store.

        Mirrors ``getFilePathForKey`` of the paper's interface.
        """

    @abstractmethod
    def parse(self, key: K, file_contents: bytes) -> np.ndarray:
        """CPU stage: decode the raw file into an array.

        For the paper's applications this is JPEG decoding (forensics),
        FASTA decompression (bioinformatics), or JSON parsing
        (microscopy).
        """

    def preprocess(self, key: K, parsed: np.ndarray) -> np.ndarray:
        """GPU stage: transform parsed data into its comparable form.

        Runs on a virtual device; the default is the identity (the
        microscopy application has no pre-processing stage).
        """
        return parsed

    @abstractmethod
    def compare(self, key_a: K, item_a: np.ndarray, key_b: K, item_b: np.ndarray) -> np.ndarray:
        """GPU stage: compare two pre-processed items.

        Must be symmetric in distribution (Rocket only evaluates each
        unordered pair once, with ``key_a < key_b`` in key order).
        Returns the raw device-side result (copied D2H by the runtime).
        """

    def postprocess(self, key_a: K, key_b: K, raw_result: np.ndarray) -> R:
        """CPU stage: turn the raw comparison result into the final value.

        The default returns the raw result unchanged (all three paper
        applications have a negligible post-processing stage).
        """
        return raw_result  # type: ignore[return-value]

    # -- batched comparison (optional fast path) --------------------------

    def item_view(self, key: K, item: np.ndarray) -> Any:
        """Kernel-ready view of one cached item (default: the item itself).

        The runtime calls this once per *resident cache slot* and feeds
        the result to :meth:`compare` / :meth:`compare_block`, so any
        per-item decode work (e.g. unpacking a sparse payload) is paid
        once per item instead of once per pair.  The cached payload
        stays an ndarray; only the comparison stage sees the view.
        """
        return item

    def compare_block(
        self,
        keys_a: Sequence[K],
        items_a: Sequence[Any],
        keys_b: Sequence[K],
        items_b: Sequence[Any],
    ) -> np.ndarray:
        """GPU stage: compare ``n`` pre-processed pairs in one kernel.

        ``items_*`` hold :meth:`item_view` results, one entry per pair
        (shared items repeat the same view object).  Returns an array
        whose leading axis indexes the pairs: ``result[k]`` is what
        :meth:`compare` would have returned for pair ``k`` (bit-identical
        or within the documented tolerance of the vectorized kernel).

        The default loops :meth:`compare` — the per-pair fallback.  The
        runtime only takes the batched dispatch path when a subclass
        overrides this method (see :attr:`supports_compare_block`).
        """
        rows: List[np.ndarray] = [
            np.asarray(self.compare(ka, ia, kb, ib))
            for ka, ia, kb, ib in zip(keys_a, items_a, keys_b, items_b)
        ]
        return np.stack(rows) if rows else np.zeros(0)

    @property
    def supports_compare_block(self) -> bool:
        """True when this class overrides :meth:`compare_block`."""
        return type(self).compare_block is not Application.compare_block

    @property
    def supports_item_view(self) -> bool:
        """True when this class overrides :meth:`item_view`."""
        return type(self).item_view is not Application.item_view

    # -- optional metadata ----------------------------------------------

    def slot_nbytes_hint(self) -> int | None:
        """Expected size of one pre-processed item, if known in advance.

        Rocket sizes its fixed cache slots from this hint; ``None`` lets
        the runtime size slots from the first loaded item.
        """
        return None

    def fingerprint(self) -> str:
        """Identity of this application for the persistent store.

        Combines the class, :attr:`version`, and every scalar instance
        attribute (so ``BioinformaticsApplication(k=3)`` and ``k=4`` never
        share cached payloads or memoized results).  Applications whose
        behaviour depends on non-scalar state should override this to
        include it.
        """
        parts = [type(self).__module__, type(self).__qualname__, f"v{self.version}"]
        for name in sorted(vars(self)):
            value = vars(self)[name]
            if isinstance(value, (str, int, float, bool, type(None))):
                parts.append(f"{name}={value!r}")
        return "|".join(parts)

    def validate_keys(self, keys: list) -> None:
        """Sanity-check the key list before a run (duplicates, emptiness)."""
        if len(keys) < 2:
            raise ValueError(f"an all-pairs run needs at least 2 keys, got {len(keys)}")
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate keys in input")
