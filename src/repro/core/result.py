"""Result collection for all-pairs (and partial-triangle) runs.

The output of an all-pairs computation is the strict upper triangle of
an ``n x n`` matrix (paper Fig. 1).  :class:`ResultMatrix` stores it
keyed by unordered key pairs, thread-safely (jobs complete concurrently
in the threaded runtime), and converts to dense/condensed NumPy forms
for downstream analysis such as the phylogeny clustering.

Workload shapes beyond the full triangle
(:mod:`repro.core.workload`: filtered, bipartite, delta) are
first-class: ``expected_pairs`` records how many cells the producing
workload fills, so :meth:`ResultMatrix.is_complete` is meaningful for
partial triangles; :meth:`ResultMatrix.to_dense` fills the cells the
workload never computes with ``fill`` (pass ``fill=float("nan")`` to
make them unmistakable); and :meth:`ResultMatrix.merge` combines a
prior corpus matrix with a ``DeltaPairs`` run's matrix into the full
matrix of the grown corpus.
"""

from __future__ import annotations

import threading
from typing import Dict, Generic, Hashable, Iterator, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

__all__ = ["ResultMatrix", "save_results", "load_results"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class ResultMatrix(Generic[K, V]):
    """Upper-triangular result store over an ordered key list."""

    def __init__(self, keys: Sequence[K], expected_pairs: Optional[int] = None) -> None:
        if len(keys) < 2:
            raise ValueError(f"need at least 2 keys, got {len(keys)}")
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate keys")
        self.keys: List[K] = list(keys)
        self._index: Dict[K, int] = {k: i for i, k in enumerate(self.keys)}
        self._values: Dict[Tuple[int, int], V] = {}
        self._lock = threading.Lock()
        if expected_pairs is None:
            expected_pairs = self.n_pairs
        if not 1 <= expected_pairs <= self.n_pairs:
            raise ValueError(
                f"expected_pairs must be in [1, {self.n_pairs}], got {expected_pairs}"
            )
        #: Cells the producing workload fills — ``C(n, 2)`` for a full
        #: all-pairs run, fewer for filtered/bipartite/delta shapes.
        self.expected_pairs: int = expected_pairs

    @property
    def n_items(self) -> int:
        """Number of items."""
        return len(self.keys)

    @property
    def n_pairs(self) -> int:
        """Number of pair cells ``C(n, 2)`` in the full triangle."""
        n = len(self.keys)
        return n * (n - 1) // 2

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)

    def _cell(self, a: K, b: K) -> Tuple[int, int]:
        try:
            i, j = self._index[a], self._index[b]
        except KeyError as exc:
            raise KeyError(f"unknown key {exc.args[0]!r}") from None
        if i == j:
            raise KeyError(f"diagonal cell ({a!r}, {a!r}) is not part of the workload")
        return (i, j) if i < j else (j, i)

    def set(self, a: K, b: K, value: V) -> None:
        """Record the result for the unordered pair ``{a, b}``."""
        cell = self._cell(a, b)
        with self._lock:
            if cell in self._values:
                raise ValueError(f"pair {a!r}, {b!r} already has a result")
            self._values[cell] = value

    def get(self, a: K, b: K) -> V:
        """Return the result for the unordered pair ``{a, b}``."""
        cell = self._cell(a, b)
        with self._lock:
            try:
                return self._values[cell]
            except KeyError:
                raise KeyError(f"no result recorded for pair {a!r}, {b!r}") from None

    def is_complete(self) -> bool:
        """True once every *expected* pair has a result.

        For a plain all-pairs matrix this is the full triangle; for a
        filtered/bipartite/delta shape it is the workload's pair set.
        """
        with self._lock:
            return len(self._values) == self.expected_pairs

    def items(self) -> Iterator[Tuple[K, K, V]]:
        """Iterate ``(key_a, key_b, value)`` in (i, j) index order."""
        with self._lock:
            cells = sorted(self._values.items())
        for (i, j), v in cells:
            yield self.keys[i], self.keys[j], v

    def to_dense(self, fill: float = 0.0, symmetric: bool = True) -> np.ndarray:
        """Dense ``n x n`` float matrix of the scalar results.

        Well-defined for *incomplete* triangles: every cell without a
        recorded result — the diagonal, pairs a filter rejected, the
        reference-internal block of a bipartite run, pairs still in
        flight — is set to ``fill``.  Pass ``fill=float("nan")`` to
        make uncomputed cells unmistakable downstream.  With
        ``symmetric=True`` the lower triangle mirrors the upper one
        (distance-matrix form).
        """
        n = self.n_items
        out = np.full((n, n), fill, dtype=np.float64)
        with self._lock:
            for (i, j), v in self._values.items():
                out[i, j] = float(v)  # type: ignore[arg-type]
                if symmetric:
                    out[j, i] = float(v)  # type: ignore[arg-type]
        return out

    def to_condensed(self) -> np.ndarray:
        """SciPy condensed distance-vector form (row-major upper triangle).

        Raises if the full triangle is incomplete (SciPy clustering
        needs all ``C(n, 2)`` pairs) — partial workload shapes must be
        :meth:`merge`-completed or exported via :meth:`to_dense`.
        """
        if len(self) != self.n_pairs:
            raise ValueError(
                f"result matrix incomplete: {len(self)} of {self.n_pairs} pairs present"
            )
        n = self.n_items
        out = np.empty(self.n_pairs, dtype=np.float64)
        pos = 0
        with self._lock:
            for i in range(n):
                for j in range(i + 1, n):
                    out[pos] = float(self._values[(i, j)])  # type: ignore[arg-type]
                    pos += 1
        return out

    def merge(self, other: "ResultMatrix[K, V]") -> "ResultMatrix[K, V]":
        """Combine this matrix with ``other`` into a new matrix.

        The canonical use is folding a :class:`~repro.core.workload.DeltaPairs`
        run into the prior corpus matrix: ``full = prior.merge(delta)``
        yields the all-pairs matrix of the grown corpus without
        recomputing the prior triangle.  The merged key order is this
        matrix's keys followed by ``other``'s unseen keys; the merged
        ``expected_pairs`` is the sum of both shapes (for the delta
        case exactly the grown corpus's full triangle).  A pair with a
        result in *both* matrices is a conflict and raises.
        """
        merged_keys = list(self.keys) + [k for k in other.keys if k not in self._index]
        n = len(merged_keys)
        expected = min(self.expected_pairs + other.expected_pairs, n * (n - 1) // 2)
        merged: ResultMatrix[K, V] = ResultMatrix(merged_keys, expected_pairs=expected)
        for a, b, v in self.items():
            merged.set(a, b, v)
        for a, b, v in other.items():
            try:
                merged.set(a, b, v)
            except ValueError:
                raise ValueError(
                    f"pair {a!r}, {b!r} has a result in both matrices; "
                    f"merge() requires disjoint pair sets"
                ) from None
        return merged


def save_results(matrix: "ResultMatrix", path) -> None:
    """Persist a (complete or partial) scalar result matrix as JSON.

    The file stores the ordered key list and the recorded (i, j, value)
    triples; :func:`load_results` restores an equivalent matrix.
    """
    import json

    triples = []
    with matrix._lock:
        for (i, j), v in sorted(matrix._values.items()):
            triples.append([i, j, float(v)])  # type: ignore[arg-type]
    doc = {
        "format": "rocket-results",
        "keys": list(map(str, matrix.keys)),
        "values": triples,
        "expected_pairs": matrix.expected_pairs,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)


def load_results(path) -> "ResultMatrix[str, float]":
    """Restore a result matrix saved by :func:`save_results`."""
    import json

    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("format") != "rocket-results":
        raise ValueError(f"{path} is not a rocket result file")
    matrix: ResultMatrix[str, float] = ResultMatrix(
        doc["keys"], expected_pairs=doc.get("expected_pairs")
    )
    keys = matrix.keys
    for i, j, v in doc["values"]:
        matrix.set(keys[i], keys[j], float(v))
    return matrix
