"""Result collection for all-pairs runs.

The output of an all-pairs computation is the strict upper triangle of
an ``n x n`` matrix (paper Fig. 1).  :class:`ResultMatrix` stores it
keyed by unordered key pairs, thread-safely (jobs complete concurrently
in the threaded runtime), and converts to dense/condensed NumPy forms
for downstream analysis such as the phylogeny clustering.
"""

from __future__ import annotations

import threading
from typing import Dict, Generic, Hashable, Iterator, List, Sequence, Tuple, TypeVar

import numpy as np

__all__ = ["ResultMatrix", "save_results", "load_results"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class ResultMatrix(Generic[K, V]):
    """Upper-triangular result store over an ordered key list."""

    def __init__(self, keys: Sequence[K]) -> None:
        if len(keys) < 2:
            raise ValueError(f"need at least 2 keys, got {len(keys)}")
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate keys")
        self.keys: List[K] = list(keys)
        self._index: Dict[K, int] = {k: i for i, k in enumerate(self.keys)}
        self._values: Dict[Tuple[int, int], V] = {}
        self._lock = threading.Lock()

    @property
    def n_items(self) -> int:
        """Number of items."""
        return len(self.keys)

    @property
    def n_pairs(self) -> int:
        """Number of pair cells ``C(n, 2)``."""
        n = len(self.keys)
        return n * (n - 1) // 2

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)

    def _cell(self, a: K, b: K) -> Tuple[int, int]:
        try:
            i, j = self._index[a], self._index[b]
        except KeyError as exc:
            raise KeyError(f"unknown key {exc.args[0]!r}") from None
        if i == j:
            raise KeyError(f"diagonal cell ({a!r}, {a!r}) is not part of the workload")
        return (i, j) if i < j else (j, i)

    def set(self, a: K, b: K, value: V) -> None:
        """Record the result for the unordered pair ``{a, b}``."""
        cell = self._cell(a, b)
        with self._lock:
            if cell in self._values:
                raise ValueError(f"pair {a!r}, {b!r} already has a result")
            self._values[cell] = value

    def get(self, a: K, b: K) -> V:
        """Return the result for the unordered pair ``{a, b}``."""
        cell = self._cell(a, b)
        with self._lock:
            try:
                return self._values[cell]
            except KeyError:
                raise KeyError(f"no result recorded for pair {a!r}, {b!r}") from None

    def is_complete(self) -> bool:
        """True once every pair has a result."""
        with self._lock:
            return len(self._values) == self.n_pairs

    def items(self) -> Iterator[Tuple[K, K, V]]:
        """Iterate ``(key_a, key_b, value)`` in (i, j) index order."""
        with self._lock:
            cells = sorted(self._values.items())
        for (i, j), v in cells:
            yield self.keys[i], self.keys[j], v

    def to_dense(self, fill: float = 0.0, symmetric: bool = True) -> np.ndarray:
        """Dense ``n x n`` float matrix of the scalar results.

        The diagonal is set to ``fill``; with ``symmetric=True`` the
        lower triangle mirrors the upper one (distance-matrix form).
        """
        n = self.n_items
        out = np.full((n, n), fill, dtype=np.float64)
        with self._lock:
            for (i, j), v in self._values.items():
                out[i, j] = float(v)  # type: ignore[arg-type]
                if symmetric:
                    out[j, i] = float(v)  # type: ignore[arg-type]
        return out

    def to_condensed(self) -> np.ndarray:
        """SciPy condensed distance-vector form (row-major upper triangle).

        Raises if the matrix is incomplete (SciPy clustering needs all
        pairs).
        """
        if not self.is_complete():
            raise ValueError(
                f"result matrix incomplete: {len(self)} of {self.n_pairs} pairs present"
            )
        n = self.n_items
        out = np.empty(self.n_pairs, dtype=np.float64)
        pos = 0
        with self._lock:
            for i in range(n):
                for j in range(i + 1, n):
                    out[pos] = float(self._values[(i, j)])  # type: ignore[arg-type]
                    pos += 1
        return out


def save_results(matrix: "ResultMatrix", path) -> None:
    """Persist a (complete or partial) scalar result matrix as JSON.

    The file stores the ordered key list and the recorded (i, j, value)
    triples; :func:`load_results` restores an equivalent matrix.
    """
    import json

    triples = []
    with matrix._lock:
        for (i, j), v in sorted(matrix._values.items()):
            triples.append([i, j, float(v)])  # type: ignore[arg-type]
    doc = {"format": "rocket-results", "keys": list(map(str, matrix.keys)), "values": triples}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)


def load_results(path) -> "ResultMatrix[str, float]":
    """Restore a result matrix saved by :func:`save_results`."""
    import json

    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("format") != "rocket-results":
        raise ValueError(f"{path} is not a rocket result file")
    matrix: ResultMatrix[str, float] = ResultMatrix(doc["keys"])
    keys = matrix.keys
    for i, j, v in doc["values"]:
        matrix.set(keys[i], keys[j], float(v))
    return matrix
