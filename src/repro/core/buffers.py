"""Host and device buffers mirroring the paper's Fig. 3 interface.

Real Rocket passes ``HostBuffer`` / ``DeviceBuffer`` handles to the user
callbacks so the runtime controls where data lives.  Our virtual
devices are NumPy-backed, but the same discipline is kept: a
:class:`DeviceBuffer` can only be produced by a
:class:`~repro.runtime.devices.VirtualDevice` transfer, and kernels
check that their operands live on the device that executes them.  This
catches the classic heterogeneous-programming bug — using host data in
a kernel without a transfer — in tests rather than in production.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

__all__ = ["HostBuffer", "DeviceBuffer"]


@dataclass
class HostBuffer:
    """A buffer in (page-locked) host memory.

    Wraps either raw ``bytes`` (the file-content stage) or a NumPy array
    (any later stage).
    """

    data: Any

    @property
    def nbytes(self) -> int:
        """Size of the payload in bytes."""
        if isinstance(self.data, (bytes, bytearray, memoryview)):
            return len(self.data)
        if isinstance(self.data, np.ndarray):
            return int(self.data.nbytes)
        raise TypeError(f"unsupported host payload type {type(self.data).__name__}")

    def as_array(self) -> np.ndarray:
        """The payload as an ndarray (raises for raw bytes)."""
        if not isinstance(self.data, np.ndarray):
            raise TypeError("host buffer holds raw bytes, not an array")
        return self.data


@dataclass
class DeviceBuffer:
    """A buffer resident on one virtual device.

    ``device_name`` records ownership; kernels verify it matches the
    executing device.
    """

    data: np.ndarray
    device_name: str

    def __post_init__(self) -> None:
        if not isinstance(self.data, np.ndarray):
            raise TypeError(f"device buffers hold ndarrays, got {type(self.data).__name__}")

    @property
    def nbytes(self) -> int:
        """Size of the payload in bytes."""
        return int(self.data.nbytes)

    def check_device(self, device_name: str) -> None:
        """Raise if this buffer does not live on ``device_name``."""
        if self.device_name != device_name:
            raise RuntimeError(
                f"device buffer lives on {self.device_name!r} but kernel runs on "
                f"{device_name!r}; a transfer is missing"
            )
