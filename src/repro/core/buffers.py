"""Host and device buffers mirroring the paper's Fig. 3 interface.

Real Rocket passes ``HostBuffer`` / ``DeviceBuffer`` handles to the user
callbacks so the runtime controls where data lives.  Our virtual
devices are NumPy-backed, but the same discipline is kept: a
:class:`DeviceBuffer` can only be produced by a
:class:`~repro.runtime.devices.VirtualDevice` transfer, and kernels
check that their operands live on the device that executes them.  This
catches the classic heterogeneous-programming bug — using host data in
a kernel without a transfer — in tests rather than in production.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

__all__ = ["HostBuffer", "DeviceBuffer", "BufferPool"]


@dataclass
class HostBuffer:
    """A buffer in (page-locked) host memory.

    Wraps either raw ``bytes`` (the file-content stage) or a NumPy array
    (any later stage).
    """

    data: Any

    @property
    def nbytes(self) -> int:
        """Size of the payload in bytes."""
        if isinstance(self.data, (bytes, bytearray, memoryview)):
            return len(self.data)
        if isinstance(self.data, np.ndarray):
            return int(self.data.nbytes)
        raise TypeError(f"unsupported host payload type {type(self.data).__name__}")

    def as_array(self) -> np.ndarray:
        """The payload as an ndarray (raises for raw bytes)."""
        if not isinstance(self.data, np.ndarray):
            raise TypeError("host buffer holds raw bytes, not an array")
        return self.data


@dataclass
class DeviceBuffer:
    """A buffer resident on one virtual device.

    ``device_name`` records ownership; kernels verify it matches the
    executing device.
    """

    data: np.ndarray
    device_name: str

    def __post_init__(self) -> None:
        if not isinstance(self.data, np.ndarray):
            raise TypeError(f"device buffers hold ndarrays, got {type(self.data).__name__}")

    @property
    def nbytes(self) -> int:
        """Size of the payload in bytes."""
        return int(self.data.nbytes)

    def check_device(self, device_name: str) -> None:
        """Raise if this buffer does not live on ``device_name``."""
        if self.device_name != device_name:
            raise RuntimeError(
                f"device buffer lives on {self.device_name!r} but kernel runs on "
                f"{device_name!r}; a transfer is missing"
            )


class BufferPool:
    """First-fit block allocator over one fixed-size byte arena.

    The zero-copy transport carves payload slots out of a
    ``multiprocessing.shared_memory`` segment with this pool: the owning
    node allocates a slot, writes the payload, and ships only the
    ``(segment, offset, shape, dtype)`` descriptor; the receiver sends a
    release message back and the slot returns to the free list.  The
    pool manages *offsets only* — it never touches the arena memory —
    so it is equally usable over pinned host arenas or device heaps.

    Offsets are aligned (default 64 bytes, safe for every NumPy dtype
    and for cache-line-friendly copies).  Adjacent free blocks coalesce
    on :meth:`free`, so fragmentation cannot grow without bound under
    the transport's allocate/release traffic.  All methods are
    thread-safe.
    """

    def __init__(self, nbytes: int, alignment: int = 64) -> None:
        if nbytes <= 0:
            raise ValueError(f"pool size must be positive, got {nbytes}")
        if alignment < 1 or (alignment & (alignment - 1)) != 0:
            raise ValueError(f"alignment must be a power of two, got {alignment}")
        self.nbytes = int(nbytes)
        self.alignment = alignment
        self._lock = threading.Lock()
        #: Free blocks as offset -> size, kept coalesced.
        self._free: Dict[int, int] = {0: self.nbytes}
        #: Live allocations as offset -> reserved size.
        self._allocated: Dict[int, int] = {}
        self.alloc_count = 0
        self.alloc_failures = 0
        self.high_water = 0

    # -- introspection --------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes currently reserved by live allocations."""
        with self._lock:
            return sum(self._allocated.values())

    @property
    def free_bytes(self) -> int:
        """Bytes currently on the free list."""
        with self._lock:
            return sum(self._free.values())

    def __len__(self) -> int:
        """Number of live allocations."""
        with self._lock:
            return len(self._allocated)

    # -- operations -----------------------------------------------------

    def alloc(self, nbytes: int) -> Optional[int]:
        """Reserve ``nbytes`` and return the block offset, or None if full.

        A ``None`` return is not an error: the transport falls back to
        inline (pickled) shipping when the arena is exhausted.
        """
        if nbytes < 0:
            raise ValueError(f"cannot allocate {nbytes} bytes")
        a = self.alignment
        # Round up to at least one alignment unit: a sub-unit block
        # would misalign every allocation that follows it.
        size = max(a, (int(nbytes) + a - 1) // a * a)
        with self._lock:
            for off in sorted(self._free):
                block = self._free[off]
                if block < size:
                    continue
                del self._free[off]
                if block > size:
                    self._free[off + size] = block - size
                self._allocated[off] = size
                self.alloc_count += 1
                used = sum(self._allocated.values())
                if used > self.high_water:
                    self.high_water = used
                return off
            self.alloc_failures += 1
            return None

    def free(self, offset: int) -> None:
        """Return the block at ``offset`` to the pool (coalescing)."""
        with self._lock:
            size = self._allocated.pop(offset, None)
            if size is None:
                raise ValueError(f"free() of offset {offset} that is not allocated")
            # Coalesce with the following block...
            nxt = self._free.pop(offset + size, None)
            if nxt is not None:
                size += nxt
            # ...and with the preceding one.
            for prev_off, prev_size in self._free.items():
                if prev_off + prev_size == offset:
                    self._free[prev_off] = prev_size + size
                    break
            else:
                self._free[offset] = size
