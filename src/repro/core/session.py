"""Sessions and run handles: the job-oriented execution API.

``Rocket.run(keys)`` reproduces the paper's interface — one blocking
call, one dense result, the backend torn down afterwards.  A
:class:`RocketSession` is the production shape of the same machinery: a
long-lived runtime that accepts many :class:`~repro.core.workload.Workload`
submissions, streams results as they complete, and keeps the backend's
expensive state — worker processes, transport fabric, device/host/
distributed cache levels — alive *between* jobs, so a second job over
overlapping keys hits warm caches instead of re-spawning the world and
re-running the load pipeline::

    with RocketSession(app, store, backend="cluster", n_nodes=4) as session:
        first = session.submit(AllPairs(corpus))
        for a, b, value in first.stream():     # results as they land
            index.update(a, b, value)
        second = session.submit(DeltaPairs(corpus, new_items))  # warm caches
        grown = results.merge(second.result())

Each submission returns a :class:`RunHandle` — the job's future:
``result()`` blocks for the shaped
:class:`~repro.core.result.ResultMatrix`, ``stream()`` iterates
``(key_a, key_b, value)`` triples as result batches land, ``progress()``
reports pairs done vs. total, and ``cancel()`` aborts the job while
leaving the session usable for the next one.

The session delegates to a backend-specific
:class:`~repro.runtime.backend.BackendSession` (threaded local engine,
or the multi-process cluster with its persistent node processes).  How
jobs within one session overlap is a scheduling *policy*
(:class:`~repro.core.scheduler.SchedulingPolicy`): the default
``"fifo"`` runs them serially in submission order (the historical
behaviour), while ``"fair"`` multiplexes many in-flight jobs over the
live backend with weighted fair sharing — ``submit(workload,
priority=4.0)`` gives a job four times the device share of a
``priority=1.0`` one, and a small query co-scheduled with a large job
finishes in roughly its own time instead of queueing behind the
giant::

    with RocketSession(app, store, policy="fair") as session:
        big = session.submit(AllPairs(corpus))
        urgent = session.submit(Bipartite(queries, corpus), priority=8.0)
        urgent.result()   # does not wait for `big`
"""

from __future__ import annotations

import enum
import threading
from collections import deque
from typing import Any, Callable, Deque, Iterator, Optional, Tuple

from repro.core.result import ResultMatrix
from repro.core.workload import Workload, as_workload

__all__ = ["RunState", "RunHandle", "RocketSession", "SessionClosed"]


class SessionClosed(RuntimeError):
    """The session is closed (or another thread is closing it).

    Raised by ``submit()`` on a closed session, by ``close()`` when the
    session was already closed — a double close is almost always a
    lifecycle bug in the caller, and silently ignoring it used to let
    two concurrent ``close()`` calls race the backend teardown — and by
    a ``submit()`` that lost the race against a concurrent ``close()``
    (its handle resolves CANCELLED before this is raised, so ``wait()``
    on it can never hang).  Subclasses ``RuntimeError`` so existing
    ``except RuntimeError`` call sites keep working.  Context-manager
    exits suppress it: ``with`` blocks that close their session early
    stay valid.
    """


class RunState(enum.Enum):
    """Lifecycle of one submitted job."""

    QUEUED = "queued"
    #: Deprecated alias of :attr:`QUEUED` (pre-scheduler name).
    PENDING = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States a job can no longer leave.
_TERMINAL = (RunState.DONE, RunState.FAILED, RunState.CANCELLED)


class RunHandle:
    """Live view of one submitted workload's execution.

    Produced by ``session.submit(workload)``; consumed from the
    submitting side.  The backend records results through the private
    ``_record`` / ``_finish`` hooks; user code reads them through
    :meth:`result`, :meth:`stream` and :meth:`progress`.
    """

    def __init__(
        self,
        workload: Workload,
        *,
        priority: float = 1.0,
        max_inflight: Optional[int] = None,
    ) -> None:
        if not priority > 0:
            raise ValueError(f"priority must be positive, got {priority}")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.workload = workload
        #: Fair-share weight under the FAIR scheduling policy (a job
        #: with twice the priority receives twice the device share).
        self.priority = float(priority)
        #: Cap on this job's concurrently in-flight pair comparisons
        #: (None — the scheduler's default window).  Enforced per node
        #: engine: on the cluster backend each of the N nodes admits up
        #: to this many of the job's pairs.
        self.max_inflight = max_inflight
        self._keys = workload.keys
        self._matrix: ResultMatrix = workload.make_result()
        self._total = workload.n_pairs
        self._cond = threading.Condition()
        self._pending_stream: Deque[Tuple[Any, Any, Any]] = deque()
        self._streaming = False
        self._state = RunState.QUEUED
        self._error: Optional[BaseException] = None
        self._cancel_requested = False
        self._cancel_cb: Optional[Callable[[], None]] = None
        #: Backend-specific statistics of the finished job (RunStats /
        #: ClusterRunStats), None until DONE.
        self.stats: Any = None
        #: Per-job scheduling accounting
        #: (:class:`~repro.core.scheduler.JobAccounting`), attached by
        #: the owning session's scheduler at submit time.
        self.accounting: Any = None

    # -- interrogation ---------------------------------------------------

    @property
    def state(self) -> RunState:
        return self._state

    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self._state in _TERMINAL

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state.

        Returns True once terminal, False if ``timeout`` elapsed first.
        Unlike :meth:`result` this never raises for failed or cancelled
        jobs — it only watches the state machine.
        """
        with self._cond:
            return self._cond.wait_for(self.done, timeout=timeout)

    def progress(self) -> Tuple[int, int]:
        """``(pairs_done, pairs_total)`` of this job, live."""
        return len(self._matrix), self._total

    # -- consumption -----------------------------------------------------

    def result(self, timeout: Optional[float] = None) -> ResultMatrix:
        """Block until the job finishes; return its result matrix.

        Raises the job's error for FAILED jobs, ``RuntimeError`` for
        cancelled ones, and ``TimeoutError`` if ``timeout`` elapses
        first.
        """
        with self._cond:
            if not self._cond.wait_for(self.done, timeout=timeout):
                raise TimeoutError(
                    f"job did not finish within {timeout}s "
                    f"({len(self._matrix)}/{self._total} pairs)"
                )
        if self._state is RunState.FAILED:
            assert self._error is not None
            raise self._error
        if self._state is RunState.CANCELLED:
            raise RuntimeError("job was cancelled")
        return self._matrix

    def stream(self) -> Iterator[Tuple[Any, Any, Any]]:
        """Iterate ``(key_a, key_b, value)`` as result batches land.

        Lazy: pairs are yielded as the backend delivers them, in
        arrival order, each pair exactly once — across *all* stream
        iterators of this handle collectively (concurrent consumers
        split the stream; use one consumer for the common case).  The
        iterator ends when the job reaches a terminal state and every
        delivered pair has been yielded; a FAILED job's error is raised
        after the delivered pairs are drained.
        """
        with self._cond:
            if not self._streaming:
                self._streaming = True
                if self.done():
                    # The stream buffer was released when the job ended
                    # with no consumer; recover the pairs from the
                    # matrix (arrival order is lost, the set is not).
                    self._pending_stream.extend(self._matrix.items())
        while True:
            with self._cond:
                self._cond.wait_for(lambda: self._pending_stream or self.done())
                if self._pending_stream:
                    item = self._pending_stream.popleft()
                else:
                    break
            yield item
        if self._state is RunState.FAILED:
            assert self._error is not None
            raise self._error

    def cancel(self) -> bool:
        """Request cancellation; True if the job was still cancellable.

        A QUEUED job — never handed to the backend — resolves to
        CANCELLED immediately, inside this call, without the backend
        session being involved; a RUNNING job is aborted (in-flight
        pair jobs drain, their late results are discarded).  The owning
        session stays usable for subsequent submissions.  ``result()``
        raises for cancelled jobs; the pairs already streamed remain
        valid.

        Returning True means the request was *accepted*, not that the
        job will end CANCELLED: a job whose every pair had already
        completed when the cancel was observed finishes DONE (on every
        backend) — check :attr:`state` or :meth:`wait` for the actual
        terminal state.
        """
        with self._cond:
            if self.done():
                return False
            self._cancel_requested = True
            cb = self._cancel_cb
        if cb is not None:
            cb()
        return True

    @property
    def cancel_requested(self) -> bool:
        return self._cancel_requested

    # -- backend-side hooks ---------------------------------------------

    def _set_cancel_cb(self, cb: Optional[Callable[[], None]]) -> None:
        """Install the current-stage cancel hook (queued or running).

        If a cancel request already landed, the new hook is invoked
        right away so the request is never lost across the hand-off
        from the admission queue to the backend.
        """
        with self._cond:
            self._cancel_cb = cb
            already_cancelled = self._cancel_requested and not self.done()
        if already_cancelled and cb is not None:
            cb()

    def _mark_running(self, cancel_cb: Optional[Callable[[], None]]) -> None:
        with self._cond:
            self._state = RunState.RUNNING
            self._cancel_cb = cancel_cb
            already_cancelled = self._cancel_requested
        if already_cancelled and cancel_cb is not None:
            # cancel() landed between the dispatcher's pre-check and
            # this point: apply it now instead of losing it.
            cancel_cb()

    def _record(self, i: int, j: int, value: Any) -> None:
        """Record one pair result by index into the workload's key list."""
        a, b = self._keys[i], self._keys[j]
        self._matrix.set(a, b, value)
        with self._cond:
            self._pending_stream.append((a, b, value))
            self._cond.notify_all()

    def _finish(
        self,
        state: RunState,
        stats: Any = None,
        error: Optional[BaseException] = None,
    ) -> None:
        assert state in _TERMINAL
        with self._cond:
            self._state = state
            self._error = error
            self.stats = stats
            self._cancel_cb = None
            if not self._streaming:
                # Nobody streamed this job: release the buffered copy
                # (the matrix holds the results; a late stream() call
                # re-seeds from it) instead of keeping every pair twice
                # for the handle's lifetime.
                self._pending_stream.clear()
            self._cond.notify_all()


def _maybe_memoize(session, backend):
    """Wrap a backend session with the persistent memo store if enabled.

    Import deferred: :mod:`repro.store.integration` imports this module
    for :class:`RunHandle`.
    """
    from repro.store.integration import maybe_wrap_store

    return maybe_wrap_store(session, backend)


class RocketSession:
    """A long-lived Rocket runtime accepting many workload submissions.

    Construction spins the selected backend up once (cluster: worker
    processes + transport fabric; local: devices, caches and pools);
    every :meth:`submit` then runs against that warm state.  Close the
    session (or use it as a context manager) to tear the backend down.

    ``Rocket.run(keys)`` is now exactly a one-shot session: open,
    submit, wait, close.
    """

    def __init__(
        self,
        app,
        store,
        config=None,
        backend: str = "local",
        policy="fifo",
        max_active: Optional[int] = None,
        **backend_options,
    ) -> None:
        from repro.runtime.backend import create_backend
        from repro.runtime.localrocket import RocketConfig

        self._backend = create_backend(
            backend, app, store,
            config if config is not None else RocketConfig(),
            **backend_options,
        )
        self._session = _maybe_memoize(
            self._backend.open_session(policy=policy, max_active=max_active),
            self._backend,
        )

    @classmethod
    def _wrap(cls, backend, policy="fifo", max_active: Optional[int] = None) -> "RocketSession":
        """Build a session around an existing backend instance."""
        self = cls.__new__(cls)
        self._backend = backend
        self._session = _maybe_memoize(
            backend.open_session(policy=policy, max_active=max_active), backend
        )
        return self

    # ------------------------------------------------------------------

    @property
    def backend(self) -> str:
        """Name of the executing backend."""
        return self._backend.name

    def submit(
        self,
        workload,
        *,
        priority: float = 1.0,
        max_inflight: Optional[int] = None,
    ) -> RunHandle:
        """Queue a workload for execution; returns its :class:`RunHandle`.

        Non-blocking.  Accepts a :class:`~repro.core.workload.Workload`
        or a plain key sequence (interpreted as
        :class:`~repro.core.workload.AllPairs`).  Under the default
        ``"fifo"`` policy jobs run serially in submission order; under
        ``"fair"`` they run concurrently and ``priority`` is the job's
        fair-share weight, with ``max_inflight`` optionally capping its
        concurrently in-flight pair comparisons.
        """
        return self._session.submit(
            as_workload(workload), priority=priority, max_inflight=max_inflight
        )

    def run(self, workload) -> ResultMatrix:
        """Submit and block for the result (convenience wrapper)."""
        return self.submit(workload).result()

    @property
    def last_stats(self):
        """Statistics of the session's most recently completed job."""
        return self._backend.last_stats

    def metrics(self):
        """Session-lifetime metrics snapshot (nested, JSON-dumpable).

        Counters, gauges and histograms accumulated across every job
        this session ran — cache hits per level, steal grants,
        transport traffic, scheduler queue depth and grant latency,
        plus per-job accounting records.  See :mod:`repro.obs.metrics`.
        """
        return self._session.metrics()

    def profile(self):
        """Merged multi-process profile of the session's jobs so far.

        Returns a :class:`~repro.util.trace.ProfileTrace` combining the
        coordinator's spans with every node process's shipped trace
        buffer (empty unless the backend config has
        ``profiling=True``); ``trace.save(path)`` writes it as
        Chrome/Perfetto JSON.
        """
        return self._session.profile()

    def add_node(self) -> int:
        """Grow the live worker set by one node (elastic cluster only).

        The new node joins running jobs as a steal target and cache
        peer immediately; returns its node id.  Raises on backends
        without elastic membership (``ClusterConfig(elastic=True)``).
        """
        return self._session.add_node()

    def retire_node(self, node: Optional[int] = None, *, drain: bool = True) -> int:
        """Drain one worker out of the live set without losing pairs.

        ``node=None`` retires the highest-numbered live node; the
        node's unfinished work is re-enqueued on the survivors before
        its process shuts down.  Returns the retired node id.
        """
        return self._session.retire_node(node, drain=drain)

    def close(self) -> None:
        """Tear down the backend (cancels queued and running jobs).

        Exactly one caller performs the teardown; a second ``close()``
        — concurrent or sequential — raises :class:`SessionClosed`
        instead of racing the backend shutdown.
        """
        self._session.close()

    @property
    def closed(self) -> bool:
        return self._session.closed

    def __enter__(self) -> "RocketSession":
        return self

    def __exit__(self, *exc) -> None:
        try:
            self.close()
        except SessionClosed:
            pass  # closed early inside the with block
