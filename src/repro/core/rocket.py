"""Rocket's main entry point (the paper's "main class").

"Launching an all-pairs application on the cluster can then be achieved
by simply calling Rocket's main class with an input array of Key
elements" — :class:`Rocket` is that class.  It executes an
:class:`~repro.core.api.Application` over a key list on the threaded
single-node runtime and returns the :class:`~repro.core.result.ResultMatrix`.

For cluster-scale *timing* studies (the paper's evaluation), use
:func:`repro.sim.rocketsim.run_simulation` instead, which runs the same
cache/scheduling logic on a simulated platform.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence

from repro.core.api import Application
from repro.core.result import ResultMatrix
from repro.data.filestore import FileStore
from repro.runtime.localrocket import LocalRocketRuntime, RocketConfig, RunStats

__all__ = ["Rocket", "RocketConfig"]


class Rocket:
    """Run all-pairs applications with caching, stealing and overlap."""

    def __init__(
        self,
        app: Application,
        store: FileStore,
        config: RocketConfig = RocketConfig(),
    ) -> None:
        self.app = app
        self.store = store
        self.config = config
        self._runtime = LocalRocketRuntime(app, store, config)

    def run(self, keys: Sequence[Hashable], pair_filter=None) -> ResultMatrix:
        """Compute ``f(l(i), l(j))`` for every key pair ``i < j``.

        ``pair_filter`` optionally restricts the workload to accepted
        pairs (see :meth:`repro.runtime.localrocket.LocalRocketRuntime.run`).
        """
        return self._runtime.run(keys, pair_filter=pair_filter)

    @property
    def last_stats(self) -> Optional[RunStats]:
        """Statistics of the most recent :meth:`run` (None before any run)."""
        return self._runtime.last_stats
