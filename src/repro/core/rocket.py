"""Rocket's main entry point (the paper's "main class").

"Launching an all-pairs application on the cluster can then be achieved
by simply calling Rocket's main class with an input array of Key
elements" — :class:`Rocket` is that class.  It executes an
:class:`~repro.core.api.Application` over a key list on a selectable
execution backend and returns the
:class:`~repro.core.result.ResultMatrix`:

- ``backend="local"`` (default) — the threaded single-process runtime;
- ``backend="cluster"`` — one worker process per simulated node with a
  live distributed cache level and global work stealing
  (:class:`~repro.runtime.cluster.ClusterRocketRuntime`); select the
  node count with ``n_nodes=`` or pass a full
  :class:`~repro.runtime.cluster.ClusterConfig` as ``cluster=``.
  The cluster data plane is pluggable: ``transport="queue"`` (default)
  pickles cache payloads inline through ``multiprocessing`` queues,
  ``transport="shm"`` ships zero-copy shared-memory descriptors
  (:mod:`repro.runtime.transport`); ``result_batch=N`` sets how many
  pair results ride in one coordinator message —
  ``Rocket(app, store, backend="cluster", transport="shm",
  result_batch=128)``.

**Execution model.**  :meth:`Rocket.run` is the paper's one-shot call:
it opens a session on the backend, submits a single workload, blocks
for the result and tears the session down.  The session machinery
itself is the primary API (:class:`~repro.core.session.RocketSession`):
a long-lived runtime that accepts many
:class:`~repro.core.workload.Workload` submissions — :class:`AllPairs`,
:class:`FilteredPairs`, :class:`Bipartite` (query set vs. reference
corpus), :class:`DeltaPairs` (incremental corpus growth) — streams
results as they complete (``handle.stream()``), reports progress and
supports cancellation, while keeping worker processes, the transport
fabric and every cache level warm between jobs.  Open one with
:meth:`Rocket.session` (or construct a
:class:`~repro.core.session.RocketSession` directly)::

    with rocket.session() as session:
        handle = session.submit(Bipartite(queries, corpus))
        for key_a, key_b, value in handle.stream():
            ...

Sessions also schedule *concurrent* jobs: ``rocket.session(policy="fair")``
multiplexes many in-flight submissions over the live backend with
weighted fair sharing (``submit(workload, priority=8.0)``), so a small
urgent query does not wait behind a large batch job
(:mod:`repro.core.scheduler`).

``run(keys, pair_filter=...)`` remains supported; ``pair_filter`` is
the deprecated spelling of ``run(FilteredPairs(keys, predicate))`` and
emits a ``DeprecationWarning``.

Heterogeneous platforms (paper Section 6.5): both backends accept
``device_speeds=(1.0, 0.25)`` (per-device kernel speed factors) and
``steal_policy="speed"`` — the heterogeneity-aware scheduler that
partitions initial work proportionally to speed, ranks steal victims
by estimated remaining work and sizes steals by the thief/victim
speed ratio.  The cluster backend additionally takes per-node device
mixes, one inner tuple of ``n_devices`` factors per node —
``node_speeds=((1.0, 1.0), (0.25, 0.25))`` for two two-GPU nodes.  Run
statistics then report the online-calibrated model's predicted vs.
measured time (``last_stats.summary()``).

For cluster-scale *timing* studies (the paper's evaluation), use
:func:`repro.sim.rocketsim.run_simulation` instead, which runs the same
cache/scheduling logic on a simulated platform.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Optional, Sequence, Union

from repro.core.api import Application
from repro.core.result import ResultMatrix
from repro.core.session import RocketSession
from repro.core.workload import Workload
from repro.data.filestore import FileStore
from repro.runtime.backend import available_backends, create_backend
from repro.runtime.localrocket import RocketConfig

__all__ = ["Rocket", "RocketConfig"]


class Rocket:
    """Run all-pairs applications with caching, stealing and overlap."""

    def __init__(
        self,
        app: Application,
        store: FileStore,
        config: RocketConfig = RocketConfig(),
        backend: str = "local",
        **backend_options,
    ) -> None:
        self.app = app
        self.store = store
        self.config = config
        # Kept so run(profile=...) can rebuild the backend with the
        # profiling flag flipped on without the caller re-plumbing
        # every backend option.
        self._backend_name = backend
        self._backend_options = dict(backend_options)
        self._runtime = create_backend(backend, app, store, config, **backend_options)

    @property
    def backend(self) -> str:
        """Name of the selected execution backend."""
        return self._runtime.name

    @staticmethod
    def backends() -> tuple:
        """Names of all registered execution backends."""
        return available_backends()

    def run(
        self,
        keys: Union[Sequence[Hashable], Workload],
        pair_filter=None,
        profile: Optional[str] = None,
    ) -> ResultMatrix:
        """Execute one workload to completion (a one-shot session).

        ``keys`` is a plain key sequence (the paper's interface: all
        pairs ``i < j``) or any :class:`~repro.core.workload.Workload`.
        ``pair_filter`` optionally restricts a plain key list to
        accepted pairs — the deprecated spelling of
        :class:`~repro.core.workload.FilteredPairs`; passing it emits a
        ``DeprecationWarning``.

        ``profile=`` writes the run's merged multi-process
        Chrome/Perfetto trace to that path (loadable in
        ``chrome://tracing`` / `ui.perfetto.dev`_); profiling is turned
        on for the run even when ``config.profiling`` is off.

        .. _ui.perfetto.dev: https://ui.perfetto.dev
        """
        if profile is None:
            return self._runtime.run(keys, pair_filter=pair_filter)
        runtime = self._runtime
        if not self.config.profiling:
            runtime = create_backend(
                self._backend_name, self.app, self.store,
                dataclasses.replace(self.config, profiling=True),
                **self._backend_options,
            )
        result = runtime.run(keys, pair_filter=pair_filter, profile=profile)
        if runtime is not self._runtime:
            self._runtime.last_stats = runtime.last_stats
        return result

    def session(self, policy="fifo", max_active=None) -> RocketSession:
        """Open a long-lived session on this Rocket's backend.

        The session accepts many workload submissions
        (``session.submit(workload, priority=...) -> RunHandle``) and
        keeps the backend's worker processes and cache levels warm
        between them; close it (context manager or ``close()``) to tear
        them down.  ``policy`` selects the job scheduling policy:
        ``"fifo"`` (default) runs jobs serially in submission order,
        ``"fair"`` runs up to ``max_active`` jobs concurrently with
        weighted fair sharing over their pair blocks — a small
        high-priority job co-scheduled with a large one finishes in
        roughly its own time instead of queueing behind it.
        """
        return RocketSession._wrap(self._runtime, policy=policy, max_active=max_active)

    @property
    def last_stats(self):
        """Statistics of the most recent :meth:`run` (None before any run).

        A :class:`~repro.runtime.localrocket.RunStats` for the local
        backend, a :class:`~repro.runtime.cluster.ClusterRunStats` for
        the cluster backend; both provide ``summary()``.
        """
        return self._runtime.last_stats
