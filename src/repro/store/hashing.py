"""Content hashing of corpus items, with a stat-validated cache.

Everything the persistent store does — payload addressing, memo
invalidation — is keyed on the SHA-1 of an item's *raw bytes*, so an
edited item automatically stops matching anything cached under its old
contents.  Hashing every blob on every session would itself cost a full
corpus read, which is exactly the IO a warm start is meant to skip; the
:class:`ItemHasher` therefore keeps a ``hashes.json`` cache in the
store directory, validated per blob against :meth:`FileStore.stat`
``(size, mtime)``.  Stores that cannot report honest mtimes (the base
default returns ``0.0``) are never trusted: their blobs are re-read and
re-hashed each session, which is slower but always correct.

The cache file is advisory and shared: any process may rewrite it
(atomic replace, last writer wins) and a lost update merely costs a
re-hash next time.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.data.filestore import FileStore

__all__ = ["ItemHasher", "hash_bytes"]

_HASHES_FILE = "hashes.json"


def hash_bytes(data: bytes) -> str:
    """Hex content digest of raw item bytes."""
    return hashlib.sha1(bytes(data)).hexdigest()


class ItemHasher:
    """Content hashes for blobs of one :class:`FileStore`, cached on disk."""

    def __init__(self, root: "str | Path", files: FileStore) -> None:
        self.root = Path(root)
        self.files = files
        self._lock = threading.Lock()
        self._dirty = False
        # name -> (size, mtime, digest); only trusted when stat matches.
        self._cache: Dict[str, Tuple[int, float, str]] = {}
        self._load()

    @property
    def path(self) -> Path:
        return self.root / _HASHES_FILE

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
            self._cache = {
                name: (int(size), float(mtime), str(digest))
                for name, (size, mtime, digest) in raw.items()
            }
        except (OSError, ValueError, TypeError, AttributeError):
            self._cache = {}  # absent or corrupt: start cold

    def digest(self, name: str) -> str:
        """Content hash of blob ``name``, reading it only when needed.

        Raises ``KeyError`` when the blob is absent (propagated from the
        store), matching the load pipeline's behaviour for missing files.
        """
        size, mtime = self.files.stat(name)
        with self._lock:
            cached = self._cache.get(name)
            if cached is not None and cached[0] == size and cached[1] == mtime and mtime > 0:
                return cached[2]
        digest = hash_bytes(self.files.read(name))
        with self._lock:
            self._cache[name] = (size, mtime, digest)
            self._dirty = True
        return digest

    def note(self, name: str, data: bytes) -> str:
        """Record the hash of ``data`` as blob ``name``'s current contents.

        Used by the load pipeline, which already holds the raw bytes —
        hashing them directly avoids a second store read.
        """
        digest = hash_bytes(data)
        try:
            size, mtime = self.files.stat(name)
        except Exception:
            size, mtime = len(data), 0.0
        with self._lock:
            self._cache[name] = (size, mtime, digest)
            self._dirty = True
        return digest

    def cached_count(self) -> int:
        with self._lock:
            return len(self._cache)

    def save(self) -> None:
        """Persist the cache (atomic replace; best-effort, advisory)."""
        with self._lock:
            if not self._dirty:
                return
            snapshot = dict(self._cache)
            self._dirty = False
        tmp = self.path.with_name(f".{_HASHES_FILE}.{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(snapshot, sort_keys=True), encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
