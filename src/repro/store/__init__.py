"""Persistent cross-session store: item cache + result memoization.

The paper's cache hierarchy (device → host → distributed peers) dies
with the session.  ``repro.store`` adds the two planes that survive it,
sharing one ``store_dir`` (enable with ``RocketConfig(store_dir=...)``,
``Rocket.run``'s ``--store-dir`` CLI flag, or the serve daemon's
``--store-dir``):

- :class:`~repro.store.itemcache.PersistentItemCache` — the disk level
  behind the host cache: content-addressed preprocessed payloads,
  mmap-loaded on warm start so stored items skip io/parse/preprocess;
- :class:`~repro.store.memo.ResultMemoStore` — an append-merge journal
  of computed pair results consulted at submit time by
  :class:`~repro.store.integration.StoreSession`, so a repeated job
  over an unchanged corpus recomputes zero pairs;
- :class:`~repro.store.manager.RocketStore` — the directory façade:
  stats and size-budgeted GC (``python -m repro store stats|gc``).

Both planes invalidate through item content hashes plus the
application's :meth:`~repro.core.api.Application.fingerprint`: edit an
item and exactly its rows recompute; bump ``Application.version`` and
everything does.
"""

from repro.store.hashing import ItemHasher, hash_bytes
from repro.store.integration import (
    PairSubsetFilter,
    ResidualPairs,
    StoreSession,
    maybe_wrap_store,
)
from repro.store.itemcache import PersistentItemCache
from repro.store.manager import RocketStore
from repro.store.memo import ResultMemoStore

__all__ = [
    "ItemHasher",
    "PairSubsetFilter",
    "PersistentItemCache",
    "ResidualPairs",
    "ResultMemoStore",
    "RocketStore",
    "StoreSession",
    "hash_bytes",
    "maybe_wrap_store",
]
