"""Persistent item cache: the disk-backed level behind the host cache.

The paper's hierarchy (device SlotCache → host SlotCache → distributed
peers) forgets every preprocessed item when the session dies.  This
module adds the level below: a content-addressed directory of ``.npy``
payloads, one per ``(application fingerprint, key, raw-bytes hash)``.
A warm-start session finds its items here and skips the entire load
pipeline — no store IO, no parse, no preprocess kernel — paying only an
``np.load(mmap_mode="r")`` whose pages fault in lazily as the H2D copy
touches them.

Addressing by content hash makes invalidation automatic: editing an
item's bytes changes its digest, so the stale payload is simply never
found again (GC eventually removes it).  The key is part of the digest
because application callbacks receive keys and may use them (the
microscopy app seeds its optimizer from the key), so identical bytes
under two keys are *not* interchangeable.

Writes are atomic (temp file + ``os.replace``) so concurrent processes
sharing one store directory never observe half-written payloads; a
corrupt or vanished file is treated as a miss, never an error.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
from pathlib import Path
from typing import Optional

import numpy as np

from repro.core.api import Application
from repro.data.filestore import FileStore

from repro.store.hashing import ItemHasher

__all__ = ["PersistentItemCache", "ITEMS_DIR"]

ITEMS_DIR = "items"


class PersistentItemCache:
    """Content-addressed ``.npy`` payload store under ``store_dir/items``."""

    def __init__(self, store_dir: "str | Path", app: Application, files: FileStore) -> None:
        self.root = Path(store_dir)
        self.items_dir = self.root / ITEMS_DIR
        self.items_dir.mkdir(parents=True, exist_ok=True)
        self.app = app
        self.files = files
        self.hasher = ItemHasher(self.root, files)
        self._fingerprint = app.fingerprint()
        self._lock = threading.Lock()

    # -- addressing ------------------------------------------------------

    def entry_digest(self, key, blob_hash: str) -> str:
        token = f"{self._fingerprint}\x00{key!r}\x00{blob_hash}"
        return hashlib.sha1(token.encode("utf-8")).hexdigest()

    def _path_for(self, key, blob_hash: str) -> Path:
        return self.items_dir / f"{self.entry_digest(key, blob_hash)}.npy"

    # -- read side -------------------------------------------------------

    def load(self, key) -> Optional[np.ndarray]:
        """Memory-mapped preprocessed payload for ``key``, or ``None``.

        ``None`` covers every way a warm start can fail — unknown item,
        stale payload (bytes edited since it was stored), corrupt or
        concurrently-GC'd file — because the load pipeline is always
        there to fall back on.
        """
        try:
            blob_hash = self.hasher.digest(self.app.file_name(key))
        except Exception:
            return None  # missing blob: let the real pipeline raise
        path = self._path_for(key, blob_hash)
        try:
            return np.load(path, mmap_mode="r", allow_pickle=False)
        except FileNotFoundError:
            return None
        except Exception:
            # Torn write or bit rot: drop the file so it stops costing
            # a failed load on every future session.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    # -- write side ------------------------------------------------------

    def store(self, key, payload: np.ndarray, blob: Optional[bytes] = None) -> int:
        """Persist ``key``'s preprocessed payload; returns bytes written.

        ``blob`` is the raw item bytes when the caller just loaded them
        (the pipeline write-back path) — hashing them directly avoids a
        second store read.  Returns 0 when the payload is already
        present or cannot be stored (object dtype, disk error): the
        cache is an accelerator, never a correctness dependency.
        """
        try:
            name = self.app.file_name(key)
            blob_hash = (
                self.hasher.note(name, blob) if blob is not None else self.hasher.digest(name)
            )
        except Exception:
            return 0
        path = self._path_for(key, blob_hash)
        if path.exists():
            return 0
        arr = np.asarray(payload)
        if arr.dtype == object:
            return 0  # never allow_pickle on either side of the store
        fd = None
        tmp_name = None
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.items_dir), prefix=".tmp-", suffix=".npy"
            )
            with os.fdopen(fd, "wb") as fh:
                fd = None
                np.save(fh, arr, allow_pickle=False)
            os.replace(tmp_name, path)
            tmp_name = None
            return path.stat().st_size
        except Exception:
            return 0
        finally:
            if fd is not None:
                os.close(fd)
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass

    def close(self) -> None:
        self.hasher.save()
