"""The store directory as one object: stats, GC, component factories.

A store directory looks like::

    store_dir/
      hashes.json          # advisory stat-validated content-hash cache
      items/<digest>.npy   # persistent item cache (content-addressed)
      memo/seg-*.log       # result memo journal segments
      lock                 # GC mutual exclusion

:class:`RocketStore` is the façade the CLI (``store stats|gc``) and the
session integration build on.  GC is size-budgeted: when the directory
exceeds the budget it deletes item payloads oldest-first (they are pure
accelerators — a deleted payload just reloads through the pipeline),
then dead memo segments oldest-first (live ones are detected by their
writer's ``flock`` and never touched).  Concurrent GCs serialise on an
exclusive lock file; everything else needs no locks by construction.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional

from repro.core.api import Application
from repro.data.filestore import DirectoryStore, FileStore

from repro.store.hashing import ItemHasher
from repro.store.itemcache import ITEMS_DIR, PersistentItemCache
from repro.store.memo import MEMO_DIR, ResultMemoStore

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = ["RocketStore"]


class RocketStore:
    """One persistent store directory: item payloads + result memos."""

    def __init__(self, store_dir: "str | Path") -> None:
        self.root = Path(store_dir)
        self.root.mkdir(parents=True, exist_ok=True)
        self._memo: Optional[ResultMemoStore] = None

    # -- components ------------------------------------------------------

    @property
    def memo(self) -> ResultMemoStore:
        if self._memo is None:
            self._memo = ResultMemoStore(self.root)
        return self._memo

    def item_cache(self, app: Application, files: FileStore) -> PersistentItemCache:
        return PersistentItemCache(self.root, app, files)

    def hasher(self, files: FileStore) -> ItemHasher:
        return ItemHasher(self.root, files)

    # -- stats -----------------------------------------------------------

    def _dir_store(self, sub: str) -> DirectoryStore:
        # DirectoryStore.stat() is exactly the (size, mtime) helper the
        # GC needs; both planes keep their files flat for this reason.
        return DirectoryStore(self.root / sub, create=True)

    def stats(self) -> Dict[str, dict]:
        """Sizes and counts of both planes (pure filesystem inspection)."""
        items = self._dir_store(ITEMS_DIR)
        item_names = [n for n in items.names() if n.endswith(".npy")]
        memo = self.memo
        memo.refresh()
        return {
            "items": {
                "count": len(item_names),
                "bytes": sum(items.stat(n)[0] for n in item_names),
            },
            "memo": {
                "records": memo.record_count(),
                "segments": len(memo.segment_files()),
                "bytes": memo.size_bytes(),
            },
            "hashes": {"cached": ItemHasher(self.root, items).cached_count()},
            "total_bytes": self.total_bytes(),
        }

    def total_bytes(self) -> int:
        total = 0
        for sub in (ITEMS_DIR, MEMO_DIR):
            d = self.root / sub
            if not d.is_dir():
                continue
            for path in d.iterdir():
                try:
                    total += path.stat().st_size
                except OSError:
                    pass
        return total

    # -- garbage collection ---------------------------------------------

    def _segment_is_live(self, path: Path) -> bool:
        """A segment whose writer still holds its flock must survive."""
        if fcntl is None:
            return True  # cannot tell: be conservative
        try:
            fd = os.open(str(path), os.O_RDONLY)
        except OSError:
            return False
        try:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                return True  # writer holds it
            fcntl.flock(fd, fcntl.LOCK_UN)
            return False
        finally:
            os.close(fd)

    def gc(self, max_bytes: int) -> Dict[str, int]:
        """Shrink the store to ``max_bytes``; returns a deletion report.

        Eviction order is oldest-first within each plane, items before
        memo segments: payloads only cost a re-load, while a deleted
        segment costs recomputing every pair it memoized.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be non-negative, got {max_bytes}")
        report = {"deleted_items": 0, "deleted_segments": 0, "freed_bytes": 0}
        lock_path = self.root / "lock"
        lock_fd = os.open(str(lock_path), os.O_WRONLY | os.O_CREAT, 0o644)
        try:
            if fcntl is not None:
                fcntl.flock(lock_fd, fcntl.LOCK_EX)
            excess = self.total_bytes() - max_bytes
            if excess <= 0:
                return report

            def oldest_first(directory: Path, keep_live: bool):
                entries = []
                if not directory.is_dir():
                    return entries
                for path in directory.iterdir():
                    if path.name.startswith("."):
                        continue  # in-flight temp files
                    try:
                        st = path.stat()
                    except OSError:
                        continue
                    if keep_live and self._segment_is_live(path):
                        continue
                    entries.append((st.st_mtime, st.st_size, path))
                entries.sort()
                return entries

            victims = oldest_first(self.root / ITEMS_DIR, keep_live=False)
            victims += oldest_first(self.root / MEMO_DIR, keep_live=True)
            for _mtime, size, path in victims:
                if excess <= 0:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                excess -= size
                report["freed_bytes"] += size
                if path.suffix == ".log":
                    report["deleted_segments"] += 1
                else:
                    report["deleted_items"] += 1
            return report
        finally:
            if fcntl is not None:
                try:
                    fcntl.flock(lock_fd, fcntl.LOCK_UN)
                except OSError:
                    pass
            os.close(lock_fd)

    def close(self) -> None:
        if self._memo is not None:
            self._memo.close()
            self._memo = None
