"""Submit-time memoization: rewrite jobs to their non-memoized pairs.

:class:`StoreSession` is a :class:`~repro.runtime.backend.BackendSession`
wrapper installed (by :class:`~repro.core.session.RocketSession` and the
one-shot ``Rocket.run`` path) whenever the backend's config carries a
``store_dir``.  On every submit it:

1. content-hashes the workload's items (through the shared stat-cached
   :class:`~repro.store.hashing.ItemHasher`, so an unchanged corpus
   costs stat calls, not reads);
2. partitions the accepted pairs into *memoized* (the memo store holds
   a value recorded under both items' current hashes) and *residual*;
3. injects the memoized values straight into the job's handle —
   exactly-once, value-identical to recomputing them — and submits only
   a :class:`ResidualPairs` rewrite of the workload to the real
   backend.  A fully-memoized job never touches the backend at all;
4. bridges the inner job's stream back to the outer handle, appending
   each freshly computed pair to the memo journal as it lands.

The memo key includes the item *keys*, not just their content hashes:
application callbacks receive keys and may depend on them (the
microscopy app seeds its optimizer from the key), so identical bytes
under different keys must not share results.  Invalidation still works
through the stored content hashes — editing an item changes its hash
and exactly its pairs stop matching.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.session import RunHandle, RunState
from repro.core.workload import Workload
from repro.runtime.backend import BackendSession, RocketBackend

from repro.store.manager import RocketStore

__all__ = ["StoreSession", "ResidualPairs", "PairSubsetFilter", "maybe_wrap_store"]


class PairSubsetFilter:
    """Picklable predicate accepting exactly a precomputed pair set.

    Module-level class (not a closure) so the cluster backend can ship
    it to its node processes like any user pair filter.
    """

    __slots__ = ("pairs",)

    def __init__(self, pairs) -> None:
        self.pairs = frozenset(pairs)

    def __call__(self, key_a, key_b) -> bool:
        return (key_a, key_b) in self.pairs

    def __reduce__(self):
        return (type(self), (self.pairs,))


class ResidualPairs(Workload):
    """A workload restricted to the pairs the memo store could not serve.

    Keeps the base workload's index space and block decomposition (so
    scheduling locality is untouched) and narrows the accepted set with
    a :class:`PairSubsetFilter` — which already embeds the base
    workload's own filter, applied during the submit-time sweep.
    """

    kind = "memo-residual"

    def __init__(self, base: Workload, accepted: Set[Tuple[Any, Any]]) -> None:
        super().__init__()
        if not accepted:
            raise ValueError("residual workload needs at least one pair")
        self.keys = list(base.keys)
        self._base = base
        self._subset = PairSubsetFilter(accepted)

    def blocks(self):
        return self._base.blocks()

    @property
    def pair_filter(self):
        return self._subset


class StoreSession(BackendSession):
    """Backend session wrapper adding submit-time result memoization."""

    def __init__(self, inner: BackendSession, app, files, store_dir) -> None:
        self._inner = inner
        self._app = app
        self._fingerprint = app.fingerprint()
        self._store = RocketStore(store_dir)
        self._hasher = self._store.hasher(files)
        self._lock = threading.Lock()
        self._counters = {
            "hits": 0,  # pairs served from the memo store
            "misses": 0,  # pairs consulted but recomputed
            "appended": 0,  # freshly computed pairs journaled
            "append_failures": 0,  # unpicklable / unwritable values
            "jobs": 0,
            "jobs_short_circuited": 0,  # jobs fully served from the store
        }
        self._bridges: List[threading.Thread] = []

    # -- submit-time rewrite --------------------------------------------

    def _hash_items(self, keys) -> Dict[Any, Optional[str]]:
        """Current content hash per key; None when the blob is unreadable.

        A missing blob is the *job's* problem (its load will fail the
        same way a cold run's would); here it just disables memoization
        for the pairs that touch it.
        """
        hashes: Dict[Any, Optional[str]] = {}
        for key in keys:
            try:
                hashes[key] = self._hasher.digest(self._app.file_name(key))
            except Exception:
                hashes[key] = None
        return hashes

    def submit(
        self,
        workload: Workload,
        *,
        priority: float = 1.0,
        max_inflight: Optional[int] = None,
    ) -> RunHandle:
        keys = workload.keys
        hashes = self._hash_items(keys)
        memo = self._store.memo
        memo.refresh()

        flt = workload.pair_filter
        memoized: List[Tuple[int, int, Any]] = []
        residual: Set[Tuple[Any, Any]] = set()
        for block in workload.blocks():
            for i, j in block.pairs():
                ka, kb = keys[i], keys[j]
                if flt is not None and not flt(ka, kb):
                    continue
                ha, hb = hashes[ka], hashes[kb]
                hit = False
                if ha is not None and hb is not None:
                    hit, value = memo.lookup(self._fingerprint, ka, kb, ha, hb)
                if hit:
                    memoized.append((i, j, value))
                else:
                    residual.add((ka, kb))

        with self._lock:
            self._counters["jobs"] += 1
            self._counters["hits"] += len(memoized)
            self._counters["misses"] += len(residual)

        outer = RunHandle(workload, priority=priority, max_inflight=max_inflight)
        #: Pairs this job served from the memo store (read by the serve
        #: daemon's per-tenant hit accounting).
        outer.memo_hits = len(memoized)

        if not residual:
            # Nothing left for the backend: resolve the job right here.
            with self._lock:
                self._counters["jobs_short_circuited"] += 1
            outer._mark_running(None)
            for i, j, value in memoized:
                outer._record(i, j, value)
            outer._finish(RunState.DONE)
            self._hasher.save()
            return outer

        inner_handle = self._inner.submit(
            ResidualPairs(workload, residual),
            priority=priority,
            max_inflight=max_inflight,
        )
        # Memoized values land in the stream first, then computed pairs
        # in backend arrival order; each pair exactly once (the memoized
        # and residual sets are disjoint by construction).
        outer._mark_running(inner_handle.cancel)
        for i, j, value in memoized:
            outer._record(i, j, value)

        bridge = threading.Thread(
            target=self._bridge,
            args=(outer, inner_handle, {key: idx for idx, key in enumerate(keys)}, hashes),
            name="store-bridge",
            daemon=True,
        )
        self._bridges.append(bridge)
        bridge.start()
        return outer

    def _bridge(self, outer: RunHandle, inner: RunHandle, index, hashes) -> None:
        """Forward the inner job's results, journaling each pair."""
        appended = failures = 0
        try:
            for ka, kb, value in inner.stream():
                outer._record(index[ka], index[kb], value)
                ha, hb = hashes.get(ka), hashes.get(kb)
                if ha is not None and hb is not None:
                    if self._store.memo.append(self._fingerprint, ka, kb, ha, hb, value):
                        appended += 1
                    else:
                        failures += 1
        except BaseException as error:
            # A FAILED inner job raises from stream() once drained.
            outer.accounting = inner.accounting
            outer._finish(RunState.FAILED, stats=inner.stats, error=error)
            return
        finally:
            with self._lock:
                self._counters["appended"] += appended
                self._counters["append_failures"] += failures
            self._hasher.save()
        inner.wait()
        outer.accounting = inner.accounting
        outer._finish(inner.state, stats=inner.stats)

    # -- delegation ------------------------------------------------------

    def close(self) -> None:
        try:
            self._inner.close()
        finally:
            for bridge in self._bridges:
                bridge.join(timeout=10.0)
            self._bridges.clear()
            self._hasher.save()
            self._store.close()

    @property
    def closed(self) -> bool:
        return self._inner.closed

    def add_node(self) -> int:
        return self._inner.add_node()

    def retire_node(self, node: Optional[int] = None, *, drain: bool = True) -> int:
        return self._inner.retire_node(node, drain=drain)

    def metrics(self) -> Dict[str, Any]:
        snap = self._inner.metrics()
        with self._lock:
            counters = dict(self._counters)
        snap = dict(snap)
        snap["store"] = {
            "memo": dict(
                counters,
                records=self._store.memo.record_count(),
                journal_bytes=self._store.memo.size_bytes(),
            ),
            "hashes_cached": self._hasher.cached_count(),
        }
        return snap

    def profile(self):
        return self._inner.profile()


def maybe_wrap_store(session: BackendSession, backend: RocketBackend) -> BackendSession:
    """Wrap ``session`` with memoization when the backend has a store.

    The no-op path (no ``store_dir`` configured, or a backend without
    the app/store/config attributes) returns the session unchanged.
    """
    config = getattr(backend, "config", None)
    store_dir = getattr(config, "store_dir", None)
    app = getattr(backend, "app", None)
    files = getattr(backend, "store", None)
    if not store_dir or app is None or files is None:
        return session
    return StoreSession(session, app, files, store_dir)
