"""Cross-session result memo store: an append-merge journal of pairs.

Every computed pair result is appended as one record keyed on
``(application fingerprint, key_a, key_b)`` together with the content
hashes both items had when the value was computed.  At submit time the
session consults the store: a pair whose stored hashes still match the
items' current hashes is *memoized* — its value is injected straight
into the job's :class:`ResultMatrix` and the backend never sees the
pair.  Editing an item changes its hash, so exactly that item's rows
stop matching and recompute; nothing else does.  This is
``DeltaPairs.merge()`` extended across sessions: the journal is the
durable prior matrix and each run appends its delta.

Durability model — single-writer journal segments:

- each writing process appends to its *own* segment file (created
  ``O_EXCL``, held under an ``flock`` for its lifetime so the GC can
  tell live segments from dead ones);
- a record is ``[u32 length][u32 crc32][pickle payload]``; readers stop
  a segment at the first short or corrupt record and simply retry from
  that offset on the next refresh — a torn tail behind a crash (or a
  concurrent writer mid-append) costs those records, never a crash or
  a wrong result;
- merging is a fold over all segments in name order; later records win
  (they carry newer content hashes).

No coordination is needed between one long-lived daemon and N one-shot
CLIs sharing a directory: writers never touch each other's segments and
readers tolerate any prefix of a segment.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import zlib
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = ["ResultMemoStore", "MEMO_DIR", "canonical_pair"]

MEMO_DIR = "memo"
_HEADER = struct.Struct("<II")  # record length, crc32 of the payload
_MAX_RECORD = 64 * 1024 * 1024  # sanity bound: larger lengths mean corruption


def canonical_pair(key_a, key_b) -> Tuple[Any, Any]:
    """Deterministic ordering of an unordered pair.

    Workloads enumerate pairs in key-list index order, which can differ
    between runs (``AllPairs`` vs the ``DeltaPairs`` that first computed
    a pair); the memo must treat ``(a, b)`` and ``(b, a)`` as the same
    entry, so both sides normalize through this.
    """
    return (key_a, key_b) if repr(key_a) <= repr(key_b) else (key_b, key_a)


class ResultMemoStore:
    """Journal-backed map ``(fingerprint, key_a, key_b) -> (hash_a, hash_b, value)``."""

    def __init__(self, store_dir: "str | Path") -> None:
        self.dir = Path(store_dir) / MEMO_DIR
        self.dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._entries: Dict[tuple, Tuple[str, str, Any]] = {}
        # Per segment: bytes already consumed (up to the last valid record).
        self._offsets: Dict[str, int] = {}
        self._writer = None
        self._writer_path: Optional[Path] = None
        self.dropped_segments = 0  # unreadable segments seen by refresh
        self._counted_drops: set = set()
        self.refresh()

    # -- reading ---------------------------------------------------------

    def refresh(self) -> None:
        """Fold any new journal records from every segment into memory."""
        with self._lock:
            try:
                segments = sorted(p for p in self.dir.iterdir() if p.suffix == ".log")
            except OSError:
                return
            for path in segments:
                self._consume(path)

    def _consume(self, path: Path) -> None:
        offset = self._offsets.get(path.name, 0)
        try:
            size = path.stat().st_size
        except OSError:
            return
        if size <= offset:
            return
        try:
            with open(path, "rb") as fh:
                fh.seek(offset)
                data = fh.read(size - offset)
        except OSError:
            self._count_drop(path.name)
            return
        pos = 0
        torn = False
        while pos + _HEADER.size <= len(data):
            length, crc = _HEADER.unpack_from(data, pos)
            end = pos + _HEADER.size + length
            if length > _MAX_RECORD or end > len(data):
                torn = True
                break  # torn tail or garbage length: retry next refresh
            payload = data[pos + _HEADER.size : end]
            if zlib.crc32(payload) != crc:
                torn = True
                break  # corrupt record poisons the rest of the segment
            try:
                fp, key_a, key_b, hash_a, hash_b, value = pickle.loads(payload)
            except Exception:
                torn = True
                break
            self._entries[(fp, key_a, key_b)] = (hash_a, hash_b, value)
            pos = end
        if torn and pos == 0 and offset == 0:
            # Nothing was ever readable from this segment: pure garbage
            # (as opposed to a torn tail behind valid records).
            self._count_drop(path.name)
        self._offsets[path.name] = offset + pos

    def _count_drop(self, name: str) -> None:
        if name not in self._counted_drops:
            self._counted_drops.add(name)
            self.dropped_segments += 1

    def lookup(self, fingerprint: str, key_a, key_b, hash_a: str, hash_b: str):
        """``(True, value)`` when the pair is memoized under these hashes."""
        ka, kb = canonical_pair(key_a, key_b)
        if (ka, kb) != (key_a, key_b):
            hash_a, hash_b = hash_b, hash_a
        with self._lock:
            entry = self._entries.get((fingerprint, ka, kb))
        if entry is not None and entry[0] == hash_a and entry[1] == hash_b:
            return True, entry[2]
        return False, None

    def record_count(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- writing ---------------------------------------------------------

    def _open_writer(self) -> None:
        token = os.urandom(4).hex()
        path = self.dir / f"seg-{os.getpid():06d}-{token}.log"
        fd = os.open(str(path), os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        fh = os.fdopen(fd, "ab")
        if fcntl is not None:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        self._writer = fh
        self._writer_path = path
        self._offsets.setdefault(path.name, 0)

    def append(self, fingerprint: str, key_a, key_b, hash_a: str, hash_b: str, value) -> bool:
        """Journal one computed pair; False when the value can't be stored.

        Unpicklable values are simply not memoized — the job still
        completes normally, the pair just recomputes next session.
        """
        ka, kb = canonical_pair(key_a, key_b)
        if (ka, kb) != (key_a, key_b):
            hash_a, hash_b = hash_b, hash_a
        try:
            payload = pickle.dumps(
                (fingerprint, ka, kb, hash_a, hash_b, value), protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception:
            return False
        with self._lock:
            try:
                if self._writer is None:
                    self._open_writer()
                self._writer.write(_HEADER.pack(len(payload), zlib.crc32(payload)))
                self._writer.write(payload)
                self._writer.flush()
            except OSError:
                return False
            self._entries[(fingerprint, ka, kb)] = (hash_a, hash_b, value)
            if self._writer_path is not None:
                # Own records are already folded in: skip them on refresh.
                self._offsets[self._writer_path.name] = (
                    self._offsets.get(self._writer_path.name, 0)
                    + _HEADER.size
                    + len(payload)
                )
        return True

    # -- introspection / lifecycle --------------------------------------

    def segment_files(self):
        try:
            return sorted(p for p in self.dir.iterdir() if p.suffix == ".log")
        except OSError:
            return []

    def size_bytes(self) -> int:
        total = 0
        for path in self.segment_files():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def close(self) -> None:
        with self._lock:
            if self._writer is not None:
                try:
                    self._writer.flush()
                    if fcntl is not None:
                        fcntl.flock(self._writer.fileno(), fcntl.LOCK_UN)
                    self._writer.close()
                except OSError:
                    pass
                self._writer = None
                self._writer_path = None
