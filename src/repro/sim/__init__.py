"""Discrete-event simulation substrate and the simulated Rocket runtime.

The paper evaluates Rocket on DAS-5 (16 heterogeneous GPU nodes) and on
the Cartesius supercomputer (48 nodes, 96 GPUs).  Neither platform is
available here, so this subpackage provides a deterministic
discrete-event simulation of such clusters:

- :mod:`repro.sim.engine` — a generator-based process simulation kernel
  (events, processes, timeouts, condition events);
- :mod:`repro.sim.resources` — FIFO resources, stores, bandwidth links;
- :mod:`repro.sim.gpu` — GPU performance models for the seven device
  types used in the paper;
- :mod:`repro.sim.node` / :mod:`repro.sim.cluster` — node and cluster
  topology including the shared storage server;
- :mod:`repro.sim.workload` — per-application workload profiles derived
  from Table 1 of the paper;
- :mod:`repro.sim.rocketsim` — the complete Rocket runtime (three-level
  cache, divide-and-conquer work-stealing, asynchronous pipelines)
  executing on simulated time.

All simulated results are exact deterministic functions of the
(workload, configuration, seed) triple.
"""

from repro.sim.engine import Environment, Event, Process, Interrupt, all_of, any_of
from repro.sim.resources import Resource, Store, BandwidthLink, Mailbox
from repro.sim.gpu import GpuModel, GPU_CATALOG, gpu_model
from repro.sim.node import NodeSpec, SimNode
from repro.sim.cluster import ClusterSpec, SimCluster, StorageSpec
from repro.sim.workload import WorkloadProfile, FORENSICS, BIOINFORMATICS, MICROSCOPY, scaled_profile
from repro.sim.rocketsim import RocketSim, RocketSimConfig, SimReport

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Interrupt",
    "all_of",
    "any_of",
    "Resource",
    "Store",
    "BandwidthLink",
    "Mailbox",
    "GpuModel",
    "GPU_CATALOG",
    "gpu_model",
    "NodeSpec",
    "SimNode",
    "ClusterSpec",
    "StorageSpec",
    "SimCluster",
    "WorkloadProfile",
    "FORENSICS",
    "BIOINFORMATICS",
    "MICROSCOPY",
    "scaled_profile",
    "RocketSim",
    "RocketSimConfig",
    "SimReport",
]
