"""Cluster topology: nodes, network, and the shared storage server.

:class:`ClusterSpec` describes a platform declaratively (so benchmark
sweeps can build "1..16 TitanX nodes" or the paper's heterogeneous
4-node mix in one line); :class:`SimCluster` instantiates it on a
simulation environment and provides inter-node data transfer and
control messaging.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Sequence, Tuple

from repro.sim.engine import Environment, Event
from repro.sim.node import NodeSpec, SimNode
from repro.sim.resources import coupled_transfer
from repro.sim.storage import StorageServer, StorageSpec
from repro.scheduling.workstealing import WorkerTopology

__all__ = ["ClusterSpec", "SimCluster"]


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a whole platform."""

    nodes: Tuple[NodeSpec, ...]
    storage: StorageSpec = StorageSpec()
    #: One-way latency of small control messages (steal requests,
    #: distributed-cache protocol messages).  Higher than raw NIC
    #: latency: it includes the communication-stack handling cost.
    control_latency: float = 100e-6

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a cluster needs at least one node")
        if self.control_latency < 0:
            raise ValueError("control_latency must be non-negative")

    @classmethod
    def homogeneous(
        cls,
        n_nodes: int,
        gpu: str = "TitanX Maxwell",
        gpus_per_node: int = 1,
        node_spec: NodeSpec | None = None,
        storage: StorageSpec | None = None,
    ) -> "ClusterSpec":
        """A cluster of ``n_nodes`` identical nodes (the DAS-5 scaling setup)."""
        if n_nodes < 1:
            raise ValueError(f"need at least one node, got {n_nodes}")
        if gpus_per_node < 1:
            raise ValueError(f"need at least one GPU per node, got {gpus_per_node}")
        base = node_spec if node_spec is not None else NodeSpec()
        nodes = tuple(
            replace(base, name=f"node{i}", gpus=(gpu,) * gpus_per_node)
            for i in range(n_nodes)
        )
        return cls(nodes=nodes, storage=storage if storage is not None else StorageSpec())

    @classmethod
    def das5_heterogeneous(cls) -> "ClusterSpec":
        """The paper's Section 6.5 platform: 4 nodes, 7 GPUs, 4 generations.

        Node I: K20m; node II: GTX980 + TitanX Pascal; node III:
        2x RTX 2080 Ti; node IV: GTX Titan + TitanX Pascal.
        """
        return cls(
            nodes=(
                NodeSpec(name="node I", gpus=("K20m",)),
                NodeSpec(name="node II", gpus=("GTX980", "TitanX Pascal")),
                NodeSpec(name="node III", gpus=("RTX2080Ti", "RTX2080Ti")),
                NodeSpec(name="node IV", gpus=("GTX Titan", "TitanX Pascal")),
            )
        )

    @classmethod
    def cartesius(cls, n_nodes: int) -> "ClusterSpec":
        """Cartesius nodes: 2x K40m, 96 GB (80 GB host cache), dual FDR."""
        GB = 1e9
        node = NodeSpec(
            name="cartesius",
            gpus=("K40m", "K40m"),
            cpu_cores=16,
            host_cache_bytes=80.0 * GB,
            nic_bandwidth=14.0e9,  # two ConnectX-3 adapters
        )
        return cls.homogeneous(n_nodes, gpu="K40m", gpus_per_node=2, node_spec=node)

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    @property
    def n_gpus(self) -> int:
        """Total number of GPUs across all nodes."""
        return sum(len(nd.gpus) for nd in self.nodes)

    @property
    def total_speed(self) -> float:
        """Aggregate GPU speed in baseline-GPU equivalents."""
        return sum(nd.total_speed for nd in self.nodes)

    def worker_topology(self) -> WorkerTopology:
        """One work-stealing worker per GPU, placed on its node."""
        return WorkerTopology.from_gpus_per_node([len(nd.gpus) for nd in self.nodes])


class SimCluster:
    """A :class:`ClusterSpec` instantiated on a simulation environment."""

    def __init__(self, env: Environment, spec: ClusterSpec) -> None:
        self.env = env
        self.spec = spec
        self.nodes: List[SimNode] = [SimNode(env, ns, i) for i, ns in enumerate(spec.nodes)]
        self.storage = StorageServer(env, spec.storage)

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    def all_gpus(self):
        """All GPUs of the cluster as a flat list (worker order)."""
        return [gpu for node in self.nodes for gpu in node.gpus]

    def control_message(self, src: int, dst: int) -> Event:
        """Deliver a small protocol message from node ``src`` to ``dst``.

        Control messages cost latency only (they are a few bytes and do
        not meaningfully occupy NIC bandwidth).  A message to self still
        pays the local handling cost.
        """
        self._check_node(src)
        self._check_node(dst)
        return self.env.timeout(self.spec.control_latency)

    def transfer(self, src: int, dst: int, nbytes: float) -> Event:
        """Move ``nbytes`` of payload from node ``src`` to node ``dst``.

        Occupies the sender's uplink and the receiver's downlink for the
        same interval (both are virtual-clock FIFO links, so concurrent
        distributed-cache traffic contends realistically on both sides).
        """
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            # Local memory copy; effectively free at this modelling scale.
            return self.env.timeout(0.0)
        return coupled_transfer(
            self.env,
            [self.nodes[src].nic_up, self.nodes[dst].nic_down],
            nbytes,
        )

    def _check_node(self, idx: int) -> None:
        if not 0 <= idx < len(self.nodes):
            raise ValueError(f"node index {idx} out of range [0, {len(self.nodes)})")
