"""The complete Rocket runtime executing on simulated time.

:class:`RocketSim` wires together every mechanism of the paper's
Section 4 on top of the DES substrate:

- **multi-level caching** (Section 4.1): per-GPU device caches and
  per-node host caches (:class:`~repro.cache.slots.SlotCache` with
  READ/WRITE flags and reader pinning) plus the third-level distributed
  cache using the mediator/candidates protocol of Section 4.1.3;
- **locality-aware scheduling** (Section 4.2): quadrant
  divide-and-conquer over the pair matrix with per-GPU worker loops,
  hierarchical random work-stealing (same-node victims first, steal the
  largest task) and the concurrent-job limit for back-pressure;
- **asynchronous processing** (Section 4.3): every resource is its own
  simulated server (CPU pool, per-GPU kernel queue, per-direction copy
  engines, per-node I/O lane, NICs, shared storage), so comparisons,
  loads, transfers and I/O all overlap exactly as in Rocket.

A run produces a :class:`SimReport` carrying everything the paper's
evaluation plots: run time, the data-reuse factor ``R``, per-thread
busy times (Fig. 8/10), distributed-cache hop statistics (Fig. 11),
I/O usage (Fig. 12), per-GPU throughput series (Fig. 14), steal and
cache counters, and the modeled system efficiency.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cache.distributed import CandidateDirectory, HopStats, RequestOutcome, mediator_of
from repro.cache.policy import EvictionPolicy, safe_job_limit
from repro.cache.slots import CacheCounters, SlotCache, SlotState
from repro.model.perfmodel import system_efficiency, t_min
from repro.scheduling.quadtree import PairBlock
from repro.scheduling.throttle import SimAdmission
from repro.scheduling.workstealing import StealOrder, TaskDeque, VictimSelector
from repro.sim.cluster import ClusterSpec, SimCluster
from repro.sim.engine import Environment, Event, SimulationError, all_of
from repro.sim.node import SimGpu, SimNode
from repro.sim.workload import WorkloadInstance, WorkloadProfile
from repro.util.rng import RngFactory
from repro.util.rolling import ThroughputSeries
from repro.util.trace import TraceRecorder

__all__ = ["RocketSimConfig", "RocketSim", "SimReport", "run_simulation"]


@dataclass(frozen=True)
class RocketSimConfig:
    """Tunables of the simulated Rocket runtime.

    ``device_cache_slots`` / ``host_cache_slots`` default to "derive
    from device memory / configured host-cache bytes and the workload's
    slot size, capped at the item count", which reproduces the slot
    counts of Table 1.
    """

    device_cache_slots: Optional[int] = None
    host_cache_slots: Optional[int] = None
    #: Enable the third-level (cluster-wide) cache.
    distributed_cache: bool = True
    #: Maximum forwarding hops ``h`` of the distributed protocol.
    max_hops: int = 1
    #: Concurrent-job limit per GPU worker (clamped for deadlock safety).
    concurrent_jobs: int = 64
    #: Pairs per leaf task of the divide-and-conquer tree.
    leaf_size: int = 1
    #: Steal the largest (paper) or smallest (ablation) task.
    steal_order: StealOrder = StealOrder.LARGEST
    #: Same-node victims before remote ones (paper) or uniform (ablation).
    hierarchical_stealing: bool = True
    #: Section 7 extension: prefer remote victims whose task overlaps
    #: the thief's host cache ("remote tasks are chosen based on
    #: locally available data, thus enabling more reuse").
    cache_aware_stealing: bool = False
    #: How many non-empty remote victims a cache-aware thief inspects.
    cache_aware_candidates: int = 4
    #: Section 7 extension: persistent caches — start with host caches
    #: pre-filled (round-robin by the mediator mapping) as a previous
    #: run of the same data set would have left them.
    warm_host_caches: bool = False
    #: Slot eviction policy of device and host caches.
    eviction: EvictionPolicy = EvictionPolicy.LRU
    #: Record a full task trace (the paper's optional profiling flag).
    profiling: bool = False
    #: Record per-GPU completion timestamps for throughput plots.
    record_throughput: bool = False
    #: Rolling window for throughput series, seconds (Fig. 14 uses 60 s).
    throughput_window: float = 60.0
    seed: int = 0
    #: How long an idle worker sleeps before re-trying to steal.
    idle_backoff: float = 1e-3
    #: Hard wall on simulated time to turn bugs into errors, not hangs.
    max_sim_time: float = 1e8

    def __post_init__(self) -> None:
        if self.max_hops < 1:
            raise ValueError(f"max_hops must be >= 1, got {self.max_hops}")
        if self.concurrent_jobs < 1:
            raise ValueError(f"concurrent_jobs must be >= 1, got {self.concurrent_jobs}")
        if self.leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {self.leaf_size}")
        if self.idle_backoff <= 0:
            raise ValueError("idle_backoff must be positive")


@dataclass
class SimReport:
    """Everything a simulated run measured (inputs for every figure)."""

    profile_name: str
    n_items: int
    n_pairs: int
    n_nodes: int
    n_gpus: int
    runtime: float
    total_loads: int
    per_node_loads: List[int]
    reuse_factor: float  # the paper's R
    efficiency: float  # eq. 5, against the modeled lower bound
    t_min_cluster: float
    gpu_busy: Dict[str, Dict[str, float]]  # lane -> {preprocess, compare}
    cpu_busy: Dict[str, float]  # per-node CPU-pool busy time
    io_busy: Dict[str, float]  # per-node I/O-lane busy time
    h2d_busy: Dict[str, float]
    d2h_busy: Dict[str, float]
    storage_bytes: int
    avg_io_usage: float  # bytes/s, Fig. 12 bottom row
    hop_stats: HopStats
    device_counters: CacheCounters
    host_counters: CacheCounters
    local_steals: int
    remote_steals: int
    failed_steal_rounds: int
    pairs_per_gpu: Dict[str, int]
    throughput: float  # pairs per second overall
    remote_fetch_bytes: int
    throughput_series: Dict[str, ThroughputSeries] = field(default_factory=dict)
    trace: Optional[TraceRecorder] = None

    def speedup_against(self, baseline_runtime: float) -> float:
        """Speedup of this run relative to a baseline run time."""
        if self.runtime <= 0:
            raise ValueError("run time must be positive")
        return baseline_runtime / self.runtime

    def summary(self) -> str:
        """One-paragraph human-readable digest of the run."""
        lines = [
            f"{self.profile_name}: {self.n_pairs} pairs over {self.n_items} items "
            f"on {self.n_nodes} node(s) / {self.n_gpus} GPU(s)",
            f"  run time          {self.runtime:.2f} s "
            f"(T_min={self.t_min_cluster:.2f} s, efficiency {100 * self.efficiency:.1f}%)",
            f"  loads             {self.total_loads} (R = {self.reuse_factor:.2f})",
            f"  throughput        {self.throughput:.1f} pairs/s",
            f"  storage traffic   {self.storage_bytes / 1e6:.1f} MB "
            f"({self.avg_io_usage / 1e6:.2f} MB/s average)",
            f"  steals            {self.local_steals} local, {self.remote_steals} remote",
        ]
        if self.hop_stats.requests:
            pct = self.hop_stats.percentages()
            pretty = ", ".join(f"{k}: {v:.1f}%" for k, v in pct.items())
            lines.append(f"  distributed cache {pretty}")
        return "\n".join(lines)


class _GpuState:
    """Per-GPU runtime state: device cache, waiters, admission, worker."""

    def __init__(
        self,
        gpu: SimGpu,
        device_cache: SlotCache,
        admission: SimAdmission,
        worker_id: int,
    ) -> None:
        self.gpu = gpu
        self.device_cache = device_cache
        self.admission = admission
        self.worker_id = worker_id
        # item -> events of jobs waiting for an in-flight WRITE
        self.write_waiters: Dict[int, List[Event]] = defaultdict(list)
        # events of jobs waiting for any slot to become evictable
        self.slot_waiters: List[Event] = []


class _NodeState:
    """Per-node runtime state: host cache, waiters, mediator directory."""

    def __init__(self, node: SimNode, host_cache: SlotCache, directory: CandidateDirectory) -> None:
        self.node = node
        self.host_cache = host_cache
        self.directory = directory
        self.write_waiters: Dict[int, List[Event]] = defaultdict(list)
        self.slot_waiters: List[Event] = []


class RocketSim:
    """One all-pairs run of a workload on a simulated cluster."""

    def __init__(
        self,
        cluster_spec: ClusterSpec,
        workload: WorkloadInstance,
        config: RocketSimConfig = RocketSimConfig(),
    ) -> None:
        self.env = Environment()
        self.cluster = SimCluster(self.env, cluster_spec)
        self.workload = workload
        self.profile: WorkloadProfile = workload.profile
        self.config = config
        self.rng = RngFactory(config.seed)
        self.trace = TraceRecorder(enabled=config.profiling)

        n = self.profile.n_items
        slot_size = self.profile.slot_size
        self._total_pairs = self.profile.n_pairs
        self._completed = 0
        self._done = self.env.event()

        # --- per-node state -------------------------------------------
        self.nodes: List[_NodeState] = []
        for node in self.cluster.nodes:
            host_slots = self._host_slots_for(node)
            cache = SlotCache(
                host_slots,
                slot_size,
                policy=config.eviction,
                name=f"host:n{node.index}",
                rng=self.rng.get(f"evict:host:{node.index}"),
            )
            directory = CandidateDirectory(config.max_hops)
            self.nodes.append(_NodeState(node, cache, directory))

        # --- per-GPU state (one work-stealing worker per GPU) ---------
        self.gpus: List[_GpuState] = []
        worker_id = 0
        for node_state in self.nodes:
            node = node_state.node
            host_slots = node_state.host_cache.n_slots
            for gpu in node.gpus:
                dev_slots = self._device_slots_for(gpu)
                limit = safe_job_limit(
                    config.concurrent_jobs, dev_slots, host_slots, gpus_per_node=node.n_gpus
                )
                cache = SlotCache(
                    dev_slots,
                    slot_size,
                    policy=config.eviction,
                    name=f"device:{gpu.lane}",
                    rng=self.rng.get(f"evict:dev:{worker_id}"),
                )
                self.gpus.append(
                    _GpuState(gpu, cache, SimAdmission(self.env, limit), worker_id)
                )
                worker_id += 1

        # --- scheduling -------------------------------------------------
        topology = cluster_spec.worker_topology()
        self.deques: List[TaskDeque] = [TaskDeque(w) for w in range(topology.n_workers)]
        self.selector = VictimSelector(
            topology, self.rng.get("steal"), hierarchical=config.hierarchical_stealing
        )
        self._node_of_worker = topology.node_of

        # --- statistics -------------------------------------------------
        self.hop_stats = HopStats(config.max_hops)
        self.local_steals = 0
        self.remote_steals = 0
        self.failed_steal_rounds = 0
        self.total_loads = 0
        self.remote_fetch_bytes = 0
        self.throughput_series: Dict[str, ThroughputSeries] = {}
        if config.record_throughput:
            for gs in self.gpus:
                self.throughput_series[gs.gpu.lane] = ThroughputSeries(config.throughput_window)

        self._started = False

    # ------------------------------------------------------------------
    # Configuration helpers
    # ------------------------------------------------------------------

    def _device_slots_for(self, gpu: SimGpu) -> int:
        if self.config.device_cache_slots is not None:
            slots = self.config.device_cache_slots
        else:
            slots = int(gpu.model.usable_cache_bytes() // max(self.profile.slot_size, 1.0))
            slots = min(slots, self.profile.n_items)
        if slots < 2:
            raise ValueError(
                f"device cache of {gpu.model.name} holds {slots} slot(s) of "
                f"{self.profile.slot_size / 1e6:.1f} MB; need at least 2"
            )
        return slots

    def _host_slots_for(self, node: SimNode) -> int:
        if self.config.host_cache_slots is not None:
            slots = self.config.host_cache_slots
        else:
            slots = int(node.spec.host_cache_bytes // max(self.profile.slot_size, 1.0))
            slots = min(slots, self.profile.n_items)
        if slots < 2:
            raise ValueError(
                f"host cache of node {node.index} holds {slots} slot(s); need at least 2"
            )
        return slots

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------

    def run(self) -> SimReport:
        """Execute the workload to completion and return the report."""
        if self._started:
            raise SimulationError("RocketSim instances are single-use; build a new one")
        self._started = True
        if self._total_pairs == 0:
            raise ValueError("workload has no pairs")
        if self.config.warm_host_caches:
            self._prefill_host_caches()
        # The master node spawns the single root task (paper Section 4.2).
        self.deques[0].push(PairBlock.root(self.profile.n_items))
        for gs in self.gpus:
            self.env.process(self._worker(gs), name=f"worker:{gs.worker_id}")
        self.env.run(until=self._done)
        return self._build_report()

    # ------------------------------------------------------------------
    # Worker loop: divide-and-conquer + hierarchical work-stealing
    # ------------------------------------------------------------------

    def _worker(self, gs: _GpuState):
        env = self.env
        cfg = self.config
        deque_ = self.deques[gs.worker_id]
        backoff_rng = self.rng.get(f"backoff:{gs.worker_id}")
        while self._completed < self._total_pairs:
            if env.now > cfg.max_sim_time:
                raise SimulationError(
                    f"simulated time exceeded max_sim_time={cfg.max_sim_time}; "
                    "the run is livelocked or the workload is far too large"
                )
            task = deque_.pop()
            if task is None:
                task, remote = self._try_steal(gs.worker_id)
                if task is None:
                    self.failed_steal_rounds += 1
                    # Exponential-free jittered backoff keeps idle workers
                    # from hammering peers in lockstep.
                    yield env.timeout(cfg.idle_backoff * (0.5 + backoff_rng.random()))
                    continue
                if remote:
                    # A remote steal costs a request/response round trip.
                    yield self.cluster.control_message(0, 0)
                    yield self.cluster.control_message(0, 0)
            if task.is_leaf(cfg.leaf_size):
                for (i, j) in task.pairs():
                    # Back-pressure: stop submitting once the limit is hit.
                    yield gs.admission.acquire()
                    env.process(self._job(gs, i, j), name=f"job:{i},{j}")
            else:
                deque_.push_children(task.split())

    def _try_steal(self, worker: int) -> Tuple[Optional[PairBlock], bool]:
        if self.config.cache_aware_stealing:
            return self._try_steal_cache_aware(worker)
        for victim in self.selector.candidates(worker):
            task = self.deques[victim].steal(self.config.steal_order)
            if task is not None:
                remote = self.selector.is_remote(worker, victim)
                if remote:
                    self.remote_steals += 1
                else:
                    self.local_steals += 1
                return task, remote
        return None, False

    def _try_steal_cache_aware(self, worker: int) -> Tuple[Optional[PairBlock], bool]:
        """Section 7 extension: pick the remote victim with the best overlap.

        Local (same-node) victims are still preferred unconditionally —
        they share our host cache, so any of their tasks is 'local'
        data.  Among remote victims, up to ``cache_aware_candidates``
        non-empty deques are inspected and the one whose steal target
        overlaps our node's host cache the most wins.
        """
        order = self.config.steal_order
        my_cache = self.nodes[self._node_of_worker[worker]].host_cache
        best: Optional[int] = None
        best_score = -1.0
        inspected = 0
        for victim in self.selector.candidates(worker):
            if not self.selector.is_remote(worker, victim):
                task = self.deques[victim].steal(order)
                if task is not None:
                    self.local_steals += 1
                    return task, False
                continue
            target = self.deques[victim].peek_steal_target(order)
            if target is None:
                continue
            sample = target.sample_items()
            hits = sum(1 for item in sample if my_cache.peek(item) is not None)
            score = hits / len(sample) if sample else 0.0
            if score > best_score:
                best_score = score
                best = victim
            inspected += 1
            if inspected >= self.config.cache_aware_candidates:
                break
        if best is not None:
            task = self.deques[best].steal(order)
            if task is not None:  # races are impossible here, but be safe
                self.remote_steals += 1
                return task, True
        return None, False

    def _prefill_host_caches(self) -> None:
        """Warm start: distribute items over host caches as a previous
        run would have left them (item ``i`` on its mediator node)."""
        p = self.cluster.n_nodes
        for item in range(self.profile.n_items):
            ns = self.nodes[mediator_of(item, p)]
            slot = ns.host_cache.reserve(item)
            if slot is None:
                continue  # that node's cache is already full
            ns.host_cache.publish(slot)
            # Seed the mediator's candidate list so the first remote
            # request finds the holder immediately.
            ns.directory.lookup_and_record(item, ns.node.index)

    # ------------------------------------------------------------------
    # Job pipeline (paper Fig. 2): acquire both items, compare, post.
    # ------------------------------------------------------------------

    def _job(self, gs: _GpuState, i: int, j: int):
        env = self.env
        # Items are acquired sequentially (smaller index first): a job
        # stalled on its second item then holds at most one reader pin,
        # which is what makes the relaxed concurrent-job limit of
        # :func:`repro.cache.policy.safe_job_limit` deadlock-free.
        slot_i = yield env.process(self._acquire_device(gs, i), name=f"acq:{i}")
        slot_j = yield env.process(self._acquire_device(gs, j), name=f"acq:{j}")

        # Comparison kernel on this GPU.
        duration = gs.gpu.kernel_time(self.workload.compare_time())
        start, end = yield gs.gpu.compute.execute(duration)
        gs.gpu.compare_busy += end - start
        self.trace.record(gs.gpu.lane, "compare", start, end)

        self._unpin_device(gs, slot_i)
        self._unpin_device(gs, slot_j)

        # Result copy device-to-host.
        start, end = yield gs.gpu.d2h.transfer(self.profile.result_size)
        self.trace.record(f"GPU->CPU n{gs.gpu.node_index}.{gs.gpu.index}", "result", start, end)

        # Post-processing on the CPU (zero for all three applications,
        # but the pipeline stage exists per Fig. 2).
        post = self.workload.postprocess_time(i)
        if post > 0:
            yield self.nodes[gs.gpu.node_index].node.cpu.request()
            t0 = env.now
            yield env.timeout(post)
            self.nodes[gs.gpu.node_index].node.cpu.release()
            self.nodes[gs.gpu.node_index].node.cpu_busy += env.now - t0
            self.trace.record(f"CPU n{gs.gpu.node_index}", "postprocess", t0, env.now)

        gs.gpu.pairs_done += 1
        series = self.throughput_series.get(gs.gpu.lane)
        if series is not None:
            series.record(env.now)
        gs.admission.release()
        self._completed += 1
        if self._completed == self._total_pairs:
            self._done.succeed()

    # ------------------------------------------------------------------
    # First level: device cache (Section 4.1.1)
    # ------------------------------------------------------------------

    def _acquire_device(self, gs: _GpuState, item: int):
        """Process returning the device slot of ``item``, pinned once."""
        cache = gs.device_cache
        first_attempt = True
        while True:
            slot = cache.lookup(item) if first_attempt else cache.peek(item)
            if not first_attempt and slot is None:
                cache.counters.misses += 1  # retried miss still counts once more
            first_attempt = False
            if slot is not None and slot.state is SlotState.READ:
                cache.pin(slot)
                return slot
            if slot is not None:
                # WRITE in progress: park until the writer publishes; the
                # publisher pins the slot on our behalf (no eviction window).
                evt = self.env.event()
                gs.write_waiters[item].append(evt)
                slot = yield evt
                return slot
            wslot = cache.reserve(item)
            if wslot is not None:
                break
            # Nothing evictable: wait until some reader unpins, then retry.
            evt = self.env.event()
            gs.slot_waiters.append(evt)
            yield evt

        # We are the device-level writer: obtain the item from level 2/3
        # or by loading, then publish.  _fill_device publishes the slot
        # (handing pins to any queued waiters) and pins it once for us.
        yield self.env.process(self._fill_device(gs, item, wslot))
        return wslot

    def _unpin_device(self, gs: _GpuState, slot) -> None:
        gs.device_cache.unpin(slot)
        if not slot.pinned:
            self._wake_slot_waiters(gs.slot_waiters)

    @staticmethod
    def _wake_slot_waiters(waiters: List[Event]) -> None:
        if waiters:
            pending = list(waiters)
            waiters.clear()
            for evt in pending:
                evt.succeed()

    def _publish_device(self, gs: _GpuState, slot) -> None:
        """Publish a device slot, pinning it for the writer and all waiters."""
        waiters = gs.write_waiters.pop(slot.key, [])
        gs.device_cache.publish(slot, initial_readers=1 + len(waiters))
        for evt in waiters:
            evt.succeed(slot)

    def _publish_host(self, ns: _NodeState, slot, writer_keeps_pin: bool) -> None:
        waiters = ns.write_waiters.pop(slot.key, [])
        initial = len(waiters) + (1 if writer_keeps_pin else 0)
        ns.host_cache.publish(slot, initial_readers=initial)
        for evt in waiters:
            evt.succeed(slot)
        if initial == 0:
            # Freshly published but unpinned: it may already be evictable.
            self._wake_slot_waiters(ns.slot_waiters)

    # ------------------------------------------------------------------
    # Second level: host cache (Section 4.1.2), and the Fig. 4 flow
    # ------------------------------------------------------------------

    def _fill_device(self, gs: _GpuState, item: int, dev_slot):
        """Fill a reserved device slot from host cache / cluster / storage."""
        ns = self.nodes[gs.gpu.node_index]
        cache = ns.host_cache
        first_attempt = True
        host_slot = None
        host_writer = False
        while True:
            slot = cache.lookup(item) if first_attempt else cache.peek(item)
            if not first_attempt and slot is None:
                cache.counters.misses += 1
            first_attempt = False
            if slot is not None and slot.state is SlotState.READ:
                cache.pin(slot)
                host_slot = slot
                break
            if slot is not None:
                evt = self.env.event()
                ns.write_waiters[item].append(evt)
                host_slot = yield evt  # pinned for us by the publisher
                break
            host_slot = cache.reserve(item)
            if host_slot is not None:
                host_writer = True
                break
            evt = self.env.event()
            ns.slot_waiters.append(evt)
            yield evt

        if not host_writer:
            # Host hit: copy host slot -> device slot and publish.
            yield from self._h2d_and_publish(gs, ns, item, dev_slot, host_slot)
            return

        # Host miss: we own the host WRITE slot.  Try the distributed
        # cache first (Section 4.1.3), then fall back to a local load.
        fetched = False
        if self.config.distributed_cache and self.cluster.n_nodes > 1:
            outcome = yield self.env.process(self._distributed_fetch(ns, item))
            fetched = outcome.hit
        if fetched:
            # Remote data landed in our host slot: publish it (keeping a
            # pin for ourselves), then copy to the device.
            self._publish_host(ns, host_slot, writer_keeps_pin=True)
            yield from self._h2d_and_publish(gs, ns, item, dev_slot, host_slot)
            return

        # Full local load: storage -> parse -> H2D -> pre-process.  The
        # pipeline ends with the item on the GPU, so the device slot is
        # published first and the host copy is written back D2H
        # afterwards ("data is always written to both caches").
        yield from self._load_pipeline(gs, ns, item)
        self._publish_device(gs, dev_slot)
        self._wake_slot_waiters(gs.slot_waiters)
        start, end = yield gs.gpu.d2h.transfer(self.profile.slot_size)
        self.trace.record(f"GPU->CPU n{gs.gpu.node_index}.{gs.gpu.index}", "writeback", start, end)
        self._publish_host(ns, host_slot, writer_keeps_pin=False)

    def _h2d_and_publish(self, gs: _GpuState, ns: _NodeState, item: int, dev_slot, host_slot):
        start, end = yield gs.gpu.h2d.transfer(self.profile.slot_size)
        self.trace.record(f"CPU->GPU n{gs.gpu.node_index}.{gs.gpu.index}", "h2d", start, end)
        cache = ns.host_cache
        cache.unpin(host_slot)
        if not host_slot.pinned:
            self._wake_slot_waiters(ns.slot_waiters)
        self._publish_device(gs, dev_slot)

    # ------------------------------------------------------------------
    # Load pipeline l(i): I/O -> parse -> H2D -> pre-process
    # ------------------------------------------------------------------

    def _load_pipeline(self, gs: _GpuState, ns: _NodeState, item: int):
        env = self.env
        node = ns.node
        self.total_loads += 1
        node.loads += 1

        # Remote I/O through the node's single I/O lane and the shared
        # storage server: per-request latency overlaps across nodes,
        # bandwidth contends on the server's uplink.
        yield node.io.request()
        t0 = env.now
        if self.cluster.storage.latency > 0:
            yield env.timeout(self.cluster.storage.latency)
        yield self.cluster.storage.read(self.workload.file_size(item))
        node.io.release()
        node.io_busy += env.now - t0
        self.trace.record(f"IO n{node.index}", "io", t0, env.now)

        # Parse on the CPU pool.
        yield node.cpu.request()
        t0 = env.now
        yield env.timeout(self.workload.parse_time(item))
        node.cpu.release()
        node.cpu_busy += env.now - t0
        self.trace.record(f"CPU n{node.index}", "parse", t0, env.now)

        # Parsed data host -> device.
        start, end = yield gs.gpu.h2d.transfer(self.profile.slot_size)
        self.trace.record(f"CPU->GPU n{node.index}.{gs.gpu.index}", "h2d", start, end)

        # Pre-process kernel on this GPU (absent for microscopy).
        pre = self.workload.preprocess_time(item)
        if pre > 0:
            duration = gs.gpu.kernel_time(pre)
            start, end = yield gs.gpu.compute.execute(duration)
            gs.gpu.preprocess_busy += end - start
            self.trace.record(gs.gpu.lane, "preprocess", start, end)

    # ------------------------------------------------------------------
    # Third level: distributed cache protocol (Section 4.1.3)
    # ------------------------------------------------------------------

    def _distributed_fetch(self, ns: _NodeState, item: int):
        """Run the mediator/candidates protocol for ``item``.

        Returns a :class:`RequestOutcome`; on a hit the data transfer to
        this node has completed.
        """
        requester = ns.node.index
        mediator_idx = mediator_of(item, self.cluster.n_nodes)
        mediator = self.nodes[mediator_idx]
        messages = 1
        yield self.cluster.control_message(requester, mediator_idx)
        candidates = mediator.directory.lookup_and_record(item, requester)
        if not candidates:
            self.hop_stats.record_miss(had_candidates=False)
            messages += 1
            yield self.cluster.control_message(mediator_idx, requester)
            return RequestOutcome(item, hit=False, messages=messages)

        prev = mediator_idx
        for hop, cand_idx in enumerate(candidates, start=1):
            messages += 1
            yield self.cluster.control_message(prev, cand_idx)
            prev = cand_idx
            cand = self.nodes[cand_idx]
            if cand_idx == requester:
                # Our own host cache holds the item only as our WRITE
                # reservation; a candidate list may legitimately contain
                # the requester ("this does not affect correctness").
                continue
            slot = cand.host_cache.peek(item)
            if slot is not None and slot.state is SlotState.READ:
                cand.host_cache.pin(slot)
                yield self.cluster.transfer(cand_idx, requester, self.profile.slot_size)
                cand.host_cache.unpin(slot)
                if not slot.pinned:
                    self._wake_slot_waiters(cand.slot_waiters)
                self.remote_fetch_bytes += int(self.profile.slot_size)
                self.hop_stats.record_hit(hop)
                return RequestOutcome(item, hit=True, hop=hop, provider=cand_idx, messages=messages + 1)

        messages += 1
        yield self.cluster.control_message(prev, requester)
        self.hop_stats.record_miss()
        return RequestOutcome(item, hit=False, messages=messages)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _build_report(self) -> SimReport:
        runtime = self.env.now
        n = self.profile.n_items
        reuse = self.total_loads / n if n else 0.0
        agg_speed = self.cluster.spec.total_speed
        eff = system_efficiency(self.profile, runtime, agg_speed) if runtime > 0 else 0.0

        gpu_busy: Dict[str, Dict[str, float]] = {}
        h2d_busy: Dict[str, float] = {}
        d2h_busy: Dict[str, float] = {}
        pairs_per_gpu: Dict[str, int] = {}
        for gs in self.gpus:
            gpu = gs.gpu
            gpu_busy[gpu.lane] = {
                "preprocess": gpu.preprocess_busy,
                "compare": gpu.compare_busy,
            }
            h2d_busy[gpu.lane] = gpu.h2d.busy_time()
            d2h_busy[gpu.lane] = gpu.d2h.busy_time()
            pairs_per_gpu[gpu.lane] = gpu.pairs_done

        device_counters = CacheCounters()
        host_counters = CacheCounters()
        for gs in self.gpus:
            c = gs.device_cache.counters
            device_counters.hits += c.hits
            device_counters.hits_while_writing += c.hits_while_writing
            device_counters.misses += c.misses
            device_counters.evictions += c.evictions
        for ns in self.nodes:
            c = ns.host_cache.counters
            host_counters.hits += c.hits
            host_counters.hits_while_writing += c.hits_while_writing
            host_counters.misses += c.misses
            host_counters.evictions += c.evictions

        return SimReport(
            profile_name=self.profile.name,
            n_items=n,
            n_pairs=self._total_pairs,
            n_nodes=self.cluster.n_nodes,
            n_gpus=len(self.gpus),
            runtime=runtime,
            total_loads=self.total_loads,
            per_node_loads=[ns.node.loads for ns in self.nodes],
            reuse_factor=reuse,
            efficiency=eff,
            t_min_cluster=t_min(self.profile, speed=agg_speed),
            gpu_busy=gpu_busy,
            cpu_busy={f"n{ns.node.index}": ns.node.cpu_busy for ns in self.nodes},
            io_busy={f"n{ns.node.index}": ns.node.io_busy for ns in self.nodes},
            h2d_busy=h2d_busy,
            d2h_busy=d2h_busy,
            storage_bytes=self.cluster.storage.bytes_read,
            avg_io_usage=self.cluster.storage.average_usage(runtime),
            hop_stats=self.hop_stats,
            device_counters=device_counters,
            host_counters=host_counters,
            local_steals=self.local_steals,
            remote_steals=self.remote_steals,
            failed_steal_rounds=self.failed_steal_rounds,
            pairs_per_gpu=pairs_per_gpu,
            throughput=self._total_pairs / runtime if runtime > 0 else 0.0,
            remote_fetch_bytes=self.remote_fetch_bytes,
            throughput_series=self.throughput_series,
            trace=self.trace if self.config.profiling else None,
        )


def run_simulation(
    cluster_spec: ClusterSpec,
    profile: WorkloadProfile,
    config: RocketSimConfig = RocketSimConfig(),
    seed: int = 0,
) -> SimReport:
    """Convenience wrapper: instantiate the workload and run one simulation."""
    workload = profile.instantiate(seed=seed)
    return RocketSim(cluster_spec, workload, config).run()
