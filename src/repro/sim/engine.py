"""Generator-based discrete-event simulation kernel.

A *process* is a Python generator that yields :class:`Event` objects;
the environment resumes the generator when the yielded event triggers,
sending the event's value back into the generator (or throwing the
event's exception).  The design follows the classic SimPy architecture
but is trimmed to exactly what the simulated Rocket runtime needs:

- :class:`Environment` — the event loop with a binary-heap agenda;
- :class:`Event` — one-shot triggerable with success/failure payloads;
- :class:`Timeout` — an event that fires after a simulated delay;
- :class:`Process` — runs a generator; is itself an event that triggers
  when the generator finishes (supporting process joins);
- :func:`all_of` / :func:`any_of` — condition events over several events.

The kernel is single-threaded and deterministic: events scheduled at
equal times fire in scheduling order (FIFO tie-breaking by a sequence
counter), so simulation results are exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "all_of",
    "any_of",
]

#: Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (double trigger, deadlock, …)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries an arbitrary payload describing why the process was
    interrupted (used e.g. to cancel in-flight distributed-cache waits
    when the run terminates early).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; it is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`.  Callbacks attached before the
    trigger run when the environment processes the event; callbacks
    attached after the trigger run immediately at the current simulated
    time.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once all callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only valid once triggered)."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or the exception for failed events)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters receive ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Attach ``fn``; runs on processing (immediately if already processed)."""
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """Event that fires ``delay`` simulated seconds after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self._ok = True
        self._value = value
        env._schedule(self, delay)

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger themselves")


class Process(Event):
    """Runs a generator as a simulation process.

    The process is itself an event: it triggers with the generator's
    return value when the generator finishes, or fails with the
    generator's unhandled exception.  Other processes can therefore
    ``yield proc`` to join it.
    """

    def __init__(self, env: "Environment", generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"Process needs a generator, got {generator!r}")
        super().__init__(env)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._target: Optional[Event] = None
        # Bootstrap: resume the process at the current time.
        init = Event(env)
        init._ok = True
        init._value = None
        init.add_callback(self._resume)
        env._schedule(init)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        evt = Event(self.env)
        evt._ok = False
        evt._value = Interrupt(cause)
        evt._defused = True  # not a real failure; never reported as unhandled
        evt.add_callback(self._resume)
        self.env._schedule(evt)

    def _resume(self, event: Event) -> None:
        self._target = None
        self.env._active_process = self
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                setattr(event, "_defused", True)
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Events"
            )
        if target.env is not self.env:
            raise SimulationError("yielded event belongs to a different Environment")
        self._target = target
        target.add_callback(self._resume)


class Environment:
    """The simulation event loop.

    ``now`` is the current simulated time in seconds.  :meth:`run`
    processes events until the agenda empties, ``until`` is reached, or
    a given event triggers.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self.now = float(initial_time)
        self._agenda: List = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    # -- scheduling ---------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._agenda, (self.now + delay, self._seq, event))
        self._seq += 1

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between steps)."""
        return self._active_process

    # -- factories ----------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start ``generator`` as a new process."""
        return Process(self, generator, name=name)

    # -- execution ----------------------------------------------------

    def step(self) -> None:
        """Process the single next event on the agenda."""
        if not self._agenda:
            raise SimulationError("step() on an empty agenda")
        self.now, _, event = heapq.heappop(self._agenda)
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for fn in callbacks:
            fn(event)
        if event._ok is False and not getattr(event, "_defused", False):
            # A failed event nobody handled: surface it instead of
            # silently continuing with a corrupt simulation.
            raise event._value

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until the agenda empties, time ``until``, or event ``until``.

        Returns the event's value when ``until`` is an event.
        """
        stop_time: Optional[float] = None
        stop_event: Optional[Event] = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                # An already-processed event must behave exactly like one
                # that triggers during this run: failures raise, they are
                # not handed back as return values.
                if stop_event._ok:
                    return stop_event.value
                setattr(stop_event, "_defused", True)
                raise stop_event.value
            done = [False]
            stop_event.add_callback(lambda _e: done.__setitem__(0, True))
        elif until is not None:
            stop_time = float(until)
            if stop_time < self.now:
                raise ValueError(f"until={stop_time} is in the past (now={self.now})")

        while self._agenda:
            next_time = self._agenda[0][0]
            if stop_time is not None and next_time > stop_time:
                self.now = stop_time
                return None
            self.step()
            if stop_event is not None and stop_event.processed:
                if stop_event._ok:
                    return stop_event.value
                setattr(stop_event, "_defused", True)
                raise stop_event.value

        if stop_event is not None and not stop_event.triggered:
            raise SimulationError(
                "simulation agenda empty but the awaited event never triggered "
                "(deadlock: some process is waiting forever)"
            )
        if stop_time is not None:
            self.now = stop_time
        return None

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` when empty)."""
        return self._agenda[0][0] if self._agenda else float("inf")


class _Condition(Event):
    """Shared machinery for :func:`all_of` / :func:`any_of`."""

    def __init__(self, env: Environment, events: Iterable[Event], need_all: bool) -> None:
        super().__init__(env)
        self._events = list(events)
        self._need_all = need_all
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed([])
            return
        for e in self._events:
            if e.env is not env:
                raise SimulationError("condition mixes events from different environments")
            e.add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            if event._ok is False:
                setattr(event, "_defused", True)
            return
        if event._ok is False:
            setattr(event, "_defused", True)
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._need_all:
            if self._remaining == 0:
                self.succeed([e.value for e in self._events])
        else:
            self.succeed(event.value)


def all_of(env: Environment, events: Iterable[Event]) -> Event:
    """Event that succeeds when *all* of ``events`` succeed.

    Its value is the list of the constituent values (in input order).
    Fails as soon as any constituent fails.
    """
    return _Condition(env, events, need_all=True)


def any_of(env: Environment, events: Iterable[Event]) -> Event:
    """Event that succeeds when *any* of ``events`` succeeds.

    Its value is the first-succeeding event's value.
    """
    return _Condition(env, events, need_all=False)
