"""Simulation resource primitives: FIFO resources, stores, links, mailboxes.

These model the contended hardware of the paper's platforms:

- :class:`Resource` — ``capacity`` concurrent holders, FIFO grant order;
  models CPU core pools and GPU execution queues;
- :class:`BandwidthLink` — a serialised byte pipe with latency; models
  PCIe copy engines, NICs, and the storage server's uplink;
- :class:`Store` / :class:`Mailbox` — producer/consumer queues; the
  mailbox carries the distributed-cache protocol messages between nodes.

All grant orders are FIFO, keeping the simulation deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from repro.sim.engine import Environment, Event, SimulationError

__all__ = ["Resource", "Store", "BandwidthLink", "Mailbox", "SerialServer", "coupled_transfer"]


class Resource:
    """A counted resource with FIFO queueing.

    ``request()`` returns an event that triggers when one unit is
    granted; the holder must call ``release()`` exactly once.  The
    convenience generator :meth:`using` wraps a one-shot hold::

        yield from resource.using(lambda: env.timeout(dt))
    """

    def __init__(self, env: Environment, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiting: Deque[Event] = deque()
        # Busy-time accounting (for utilisation reports).
        self._busy_accum = 0.0
        self._busy_since: Optional[float] = None

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Requests waiting for a grant."""
        return len(self._waiting)

    def request(self) -> Event:
        """Ask for one unit; the returned event fires when granted."""
        evt = self.env.event()
        if self._in_use < self.capacity:
            self._grant(evt)
        else:
            self._waiting.append(evt)
        return evt

    def _grant(self, evt: Event) -> None:
        if self._in_use == 0:
            self._busy_since = self.env.now
        self._in_use += 1
        evt.succeed(self)

    def release(self) -> None:
        """Return one unit; grants the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        self._in_use -= 1
        if self._in_use == 0 and self._busy_since is not None:
            self._busy_accum += self.env.now - self._busy_since
            self._busy_since = None
        if self._waiting and self._in_use < self.capacity:
            self._grant(self._waiting.popleft())

    def busy_time(self) -> float:
        """Total time during which at least one unit was held."""
        accum = self._busy_accum
        if self._busy_since is not None:
            accum += self.env.now - self._busy_since
        return accum

    def using(self, work_factory) -> Generator:
        """Hold one unit around the event produced by ``work_factory``.

        ``work_factory`` is called *after* the grant and must return an
        event (typically a timeout for the service time); the unit is
        released when that event fires, even if it fails.
        """
        yield self.request()
        try:
            result = yield work_factory()
        finally:
            self.release()
        return result


class Store:
    """Unbounded FIFO item store with blocking ``get``.

    ``put`` never blocks (the simulated runtime applies back-pressure at
    the job-admission level, per the paper's concurrent-job limit, not
    at queue level).
    """

    def __init__(self, env: Environment, name: str = "store") -> None:
        self.env = env
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest blocked getter."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item (FIFO)."""
        evt = self.env.event()
        if self._items:
            evt.succeed(self._items.popleft())
        else:
            self._getters.append(evt)
        return evt


class Mailbox(Store):
    """A named message queue; one per node for cache-protocol traffic."""

    def __init__(self, env: Environment, owner: str) -> None:
        super().__init__(env, name=f"mailbox:{owner}")
        self.owner = owner


class BandwidthLink:
    """A serialised data pipe: ``latency + nbytes / bandwidth`` per transfer.

    Transfers are served strictly FIFO; a transfer issued while the link
    is busy starts when all earlier transfers finish.  This is an O(1)
    "virtual clock" implementation — the link keeps only the time at
    which it next becomes free — so simulating millions of transfers is
    cheap.

    Models: PCIe H2D/D2H engines (one link each, matching Rocket's one
    copy thread per direction per GPU), node NICs, and the storage
    server's shared uplink (where FIFO serialisation reproduces the
    bandwidth contention the paper discusses for MinIO).
    """

    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        latency: float = 0.0,
        name: str = "link",
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        self.env = env
        self.bandwidth = float(bandwidth)  # bytes per second
        self.latency = float(latency)
        self.name = name
        self._free_at = 0.0
        self.bytes_transferred = 0
        self.transfer_count = 0
        self._busy_accum = 0.0

    def transfer_time(self, nbytes: float) -> float:
        """Pure service time for ``nbytes`` (no queueing)."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        return self.latency + nbytes / self.bandwidth

    def transfer(self, nbytes: float) -> Event:
        """Start a transfer; the event fires when the last byte lands.

        The event's value is the ``(start, end)`` interval the transfer
        occupied on the link (used for trace recording).
        """
        service = self.transfer_time(nbytes)
        start = max(self.env.now, self._free_at)
        done = start + service
        self._free_at = done
        self._busy_accum += service
        self.bytes_transferred += int(nbytes)
        self.transfer_count += 1
        return self.env.timeout(done - self.env.now, value=(start, done))

    def busy_time(self) -> float:
        """Total service time issued so far (excludes queueing waits)."""
        return self._busy_accum

    @property
    def backlog(self) -> float:
        """Seconds of already-issued work still ahead of a new transfer."""
        return max(0.0, self._free_at - self.env.now)


class SerialServer:
    """A FIFO single server measured in seconds of service time.

    Models one GPU's kernel execution queue: kernels issued by Rocket's
    per-GPU launch thread run back-to-back in issue order.  Like
    :class:`BandwidthLink` this is an O(1) virtual-clock server.  The
    completion event's value is the ``(start, end)`` service interval,
    which the runtime uses for trace recording and busy accounting.
    """

    def __init__(self, env: Environment, name: str = "server") -> None:
        self.env = env
        self.name = name
        self._free_at = 0.0
        self._busy_accum = 0.0
        self.jobs_executed = 0

    def execute(self, service_time: float) -> Event:
        """Enqueue ``service_time`` seconds of work; fires at completion.

        The event's value is the ``(start, end)`` interval actually
        occupied on the server.
        """
        if service_time < 0:
            raise ValueError(f"negative service time: {service_time}")
        start = max(self.env.now, self._free_at)
        end = start + service_time
        self._free_at = end
        self._busy_accum += service_time
        self.jobs_executed += 1
        return self.env.timeout(end - self.env.now, value=(start, end))

    def busy_time(self) -> float:
        """Total service time issued so far."""
        return self._busy_accum

    @property
    def backlog(self) -> float:
        """Seconds of issued work still pending ahead of new work."""
        return max(0.0, self._free_at - self.env.now)


def coupled_transfer(
    env: Environment,
    links: "list[BandwidthLink]",
    nbytes: float,
    extra_latency: float = 0.0,
) -> Event:
    """Transfer ``nbytes`` through several links simultaneously.

    An inter-node transfer occupies the sender's NIC uplink *and* the
    receiver's NIC downlink for the same wall-clock interval; the
    transfer starts when the last of the involved links becomes free.
    All links advance their virtual clocks to the common completion
    time, so subsequent transfers on either side queue behind it.
    """
    if not links:
        raise ValueError("coupled_transfer needs at least one link")
    if nbytes < 0:
        raise ValueError(f"negative transfer size: {nbytes}")
    service = extra_latency + max(link.transfer_time(nbytes) - link.latency for link in links)
    start = max([env.now] + [link._free_at for link in links])
    done = start + service + max(link.latency for link in links)
    for link in links:
        link._free_at = done
        link._busy_accum += done - start
        link.bytes_transferred += int(nbytes)
        link.transfer_count += 1
    return env.timeout(done - env.now, value=(start, done))
