"""Shared remote storage server (the paper's MinIO over InfiniBand).

All input files live on one central file server; every node's load
pipeline starts by pulling the compressed file from it.  The server's
uplink is a single shared :class:`~repro.sim.resources.BandwidthLink`,
so concurrent readers contend for bandwidth — the effect the paper
discusses when 16 nodes without a distributed cache drive I/O usage to
~295 MB/s while one node needs only ~10 MB/s.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import Environment, Event
from repro.sim.resources import BandwidthLink

__all__ = ["StorageSpec", "StorageServer"]


@dataclass(frozen=True)
class StorageSpec:
    """Static description of the storage server.

    Defaults approximate the paper's MinIO server on 56 Gb/s FDR
    InfiniBand: a few GB/s of effective sequential read bandwidth and a
    per-request latency covering request handling and object lookup.
    """

    bandwidth: float = 2.0e9  # bytes/s aggregate read bandwidth
    latency: float = 2.0e-3  # seconds per read request

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive: {self.bandwidth}")
        if self.latency < 0:
            raise ValueError(f"latency must be non-negative: {self.latency}")


class StorageServer:
    """The simulated shared file server.

    Request-handling latency is paid *per request in parallel* (the
    server processes many outstanding requests concurrently, like any
    object store); only the data transfer itself contends for the shared
    uplink bandwidth.  Modelling latency inside the shared FIFO link
    would wrongly serialise all cluster I/O on the latency term and cap
    scaling at ``1 / latency`` requests per second.
    """

    def __init__(self, env: Environment, spec: StorageSpec) -> None:
        self.env = env
        self.spec = spec
        self.link = BandwidthLink(env, spec.bandwidth, latency=0.0, name="storage")

    @property
    def latency(self) -> float:
        """Per-request handling latency (paid by the requester)."""
        return self.spec.latency

    def read(self, nbytes: float) -> Event:
        """Start the bandwidth part of a read; fires when data arrived.

        Callers should first wait :attr:`latency` (their own timeout, so
        concurrent requesters overlap their latencies), then yield this.
        The event's value is the ``(start, end)`` interval occupied on
        the server's uplink (used for I/O-lane trace recording).
        """
        return self.link.transfer(nbytes)

    @property
    def bytes_read(self) -> int:
        """Total bytes served so far."""
        return self.link.bytes_transferred

    @property
    def read_count(self) -> int:
        """Total read requests served so far."""
        return self.link.transfer_count

    def average_usage(self, runtime: float) -> float:
        """Average I/O usage in bytes/s over a run of ``runtime`` seconds.

        This is Fig. 12's bottom row: "total bytes transferred by all
        nodes divided by total run time".
        """
        if runtime <= 0:
            return 0.0
        return self.bytes_read / runtime
