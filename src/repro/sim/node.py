"""Simulated compute nodes: CPU pool, GPUs, NIC, and I/O thread.

A :class:`SimNode` mirrors one DAS-5/Cartesius node as Rocket sees it:

- a CPU core pool executing parse (and post-process) tasks — Rocket's
  "thread pool performs CPU computations";
- one or more GPUs, each with a serial kernel queue and dedicated
  H2D / D2H copy engines (matching Rocket's one launch thread plus one
  copy thread per direction per GPU);
- a full-duplex NIC (separate up/down links) carrying distributed-cache
  traffic;
- a single I/O lane serialising remote-storage reads, matching Rocket's
  "one thread for I/O on the (remote) file system".

The host cache itself is owned by the runtime (:mod:`repro.sim.rocketsim`)
because its slot count depends on the workload's slot size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.sim.engine import Environment
from repro.sim.gpu import GpuModel, gpu_model
from repro.sim.resources import BandwidthLink, Resource, SerialServer

__all__ = ["NodeSpec", "SimGpu", "SimNode"]

GB = 1e9  # decimal, matching the paper-derived slot counts


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one node.

    Defaults correspond to the paper's DAS-5 VU-site nodes: 16 CPU
    cores, 64 GB of memory with 40 GB allocated to the host cache, and
    56 Gb/s FDR InfiniBand (~7 GB/s per direction).
    """

    name: str = "node"
    gpus: Tuple[str, ...] = ("TitanX Maxwell",)
    cpu_cores: int = 16
    host_cache_bytes: float = 40.0 * GB
    nic_bandwidth: float = 7.0e9  # bytes/s each direction
    nic_latency: float = 5.0e-6  # seconds, InfiniBand-class

    def __post_init__(self) -> None:
        if not self.gpus:
            raise ValueError("a node needs at least one GPU")
        if self.cpu_cores < 1:
            raise ValueError(f"cpu_cores must be >= 1, got {self.cpu_cores}")
        if self.host_cache_bytes <= 0:
            raise ValueError("host_cache_bytes must be positive")
        for name in self.gpus:
            gpu_model(name)  # validate early

    @property
    def gpu_models(self) -> List[GpuModel]:
        """Resolved GPU models for this node."""
        return [gpu_model(name) for name in self.gpus]

    @property
    def total_speed(self) -> float:
        """Sum of GPU speed factors (baseline-GPU equivalents)."""
        return sum(m.speed_factor for m in self.gpu_models)


class SimGpu:
    """One GPU instance inside a node."""

    def __init__(self, env: Environment, model: GpuModel, node_index: int, index: int) -> None:
        self.env = env
        self.model = model
        self.node_index = node_index
        self.index = index  # index within the node
        label = f"n{node_index}g{index}"
        self.compute = SerialServer(env, name=f"gpu:{label}")
        self.h2d = BandwidthLink(env, model.h2d_bandwidth, name=f"h2d:{label}")
        self.d2h = BandwidthLink(env, model.d2h_bandwidth, name=f"d2h:{label}")
        # Busy-time split for the Fig. 8 GPU bar.
        self.preprocess_busy = 0.0
        self.compare_busy = 0.0
        self.pairs_done = 0

    @property
    def lane(self) -> str:
        """Trace lane name for this GPU."""
        return f"GPU n{self.node_index}.{self.index} ({self.model.name})"

    def kernel_time(self, baseline_seconds: float) -> float:
        """Scale a baseline-GPU kernel time to this device."""
        return self.model.kernel_time(baseline_seconds)


class SimNode:
    """One simulated node: resources instantiated on an environment."""

    def __init__(self, env: Environment, spec: NodeSpec, index: int) -> None:
        self.env = env
        self.spec = spec
        self.index = index
        self.cpu = Resource(env, spec.cpu_cores, name=f"cpu:n{index}")
        self.io = Resource(env, 1, name=f"io:n{index}")
        self.nic_up = BandwidthLink(env, spec.nic_bandwidth, spec.nic_latency, name=f"nic_up:n{index}")
        self.nic_down = BandwidthLink(env, spec.nic_bandwidth, spec.nic_latency, name=f"nic_down:n{index}")
        self.gpus: List[SimGpu] = [
            SimGpu(env, model, index, g) for g, model in enumerate(spec.gpu_models)
        ]
        # Busy-time accounting for the per-thread bars of Fig. 8.
        self.cpu_busy = 0.0
        self.io_busy = 0.0
        # Data-reuse accounting: how many times this node ran the load
        # pipeline (the paper's per-node contribution to R).
        self.loads = 0

    @property
    def n_gpus(self) -> int:
        """Number of GPUs on this node."""
        return len(self.gpus)

    def __repr__(self) -> str:
        gpus = "+".join(g.model.name for g in self.gpus)
        return f"SimNode({self.index}: {gpus})"
