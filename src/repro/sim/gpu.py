"""GPU performance models for the devices used in the paper.

The paper's platforms mix seven NVIDIA device types across four
generations (Kepler, Maxwell, Pascal, Turing).  Rocket's behaviour
depends on two device properties only: *how fast* kernels run (which
drives heterogeneous load balancing, Fig. 13/14) and *how much memory*
the device cache can use (which bounds first-level cache slots, Fig. 9).

We model each device by a speed factor relative to the paper's
single-node baseline (TitanX Maxwell = 1.0), derived from the ratio of
peak single-precision throughput, plus memory capacity and PCIe copy
bandwidth.  Kernel times from the workload profiles (Table 1, measured
on the TitanX Maxwell) are divided by the speed factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["GpuModel", "GPU_CATALOG", "gpu_model"]

#: Hardware capacities in the paper resolve to decimal gigabytes
#: (e.g. the 40 GB host cache holds exactly 1050 x 38.1 MB slots).
GB = 1e9


@dataclass(frozen=True)
class GpuModel:
    """Static performance description of one GPU type."""

    name: str
    generation: str
    #: Kernel speed relative to the TitanX Maxwell baseline.
    speed_factor: float
    #: Device memory in bytes (bounds the device cache).
    memory_bytes: int
    #: Host-to-device copy bandwidth, bytes/s.
    h2d_bandwidth: float
    #: Device-to-host copy bandwidth, bytes/s.
    d2h_bandwidth: float

    def __post_init__(self) -> None:
        if self.speed_factor <= 0:
            raise ValueError(f"speed_factor must be positive: {self.speed_factor}")
        if self.memory_bytes <= 0:
            raise ValueError(f"memory_bytes must be positive: {self.memory_bytes}")

    def kernel_time(self, baseline_seconds: float) -> float:
        """Time this device needs for a kernel measured at the baseline."""
        if baseline_seconds < 0:
            raise ValueError(f"negative kernel time: {baseline_seconds}")
        return baseline_seconds / self.speed_factor

    def usable_cache_bytes(self, reserve_fraction: float = 0.08) -> int:
        """Device memory available to the cache after kernel workspace.

        Rocket reserves part of device memory for kernel buffers; the
        paper's TitanX Maxwell (12 GB) runs an 11 GB device cache, i.e.
        ~8 % reserved, which we use as the default.
        """
        if not 0.0 <= reserve_fraction < 1.0:
            raise ValueError(f"reserve_fraction out of range: {reserve_fraction}")
        return int(self.memory_bytes * (1.0 - reserve_fraction))


#: Speed factors are peak-FP32 ratios vs the TitanX Maxwell (6.7 TFLOPS):
#: K20m 3.5, GTX Titan 4.7, K40m 4.3, GTX 980 5.0, Titan X Pascal 11.0,
#: RTX 2080 Ti 13.4 TFLOPS.  PCIe gen-3 devices copy at ~12 GB/s, the
#: older Kepler boards at ~6 GB/s effective.
GPU_CATALOG: Dict[str, GpuModel] = {
    "K20m": GpuModel("K20m", "Kepler", 0.52, int(5 * GB), 6e9, 6e9),
    "GTX Titan": GpuModel("GTX Titan", "Kepler", 0.70, int(6 * GB), 6e9, 6e9),
    "K40m": GpuModel("K40m", "Kepler", 0.64, int(12 * GB), 6e9, 6e9),
    "GTX980": GpuModel("GTX980", "Maxwell", 0.75, int(4 * GB), 12e9, 12e9),
    "TitanX Maxwell": GpuModel("TitanX Maxwell", "Maxwell", 1.00, int(12 * GB), 12e9, 12e9),
    "TitanX Pascal": GpuModel("TitanX Pascal", "Pascal", 1.64, int(12 * GB), 12e9, 12e9),
    "RTX2080Ti": GpuModel("RTX2080Ti", "Turing", 2.00, int(11 * GB), 12e9, 12e9),
}


def gpu_model(name: str) -> GpuModel:
    """Look up a GPU by name, with a helpful error for typos."""
    try:
        return GPU_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(GPU_CATALOG))
        raise KeyError(f"unknown GPU model {name!r}; known models: {known}") from None
