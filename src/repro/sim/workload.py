"""Application workload profiles derived from Table 1 of the paper.

The paper characterises each application by per-stage timings measured
on a TitanX Maxwell, plus data sizes.  A :class:`WorkloadProfile`
captures those numbers; :meth:`WorkloadProfile.instantiate` materialises
a concrete :class:`WorkloadInstance` for a chosen item count ``n`` and
seed:

- per-item parse/pre-process times are drawn once and *fixed* — the load
  pipeline ``l(i)`` is deterministic, so re-loading an evicted item must
  cost the same as the first load;
- per-pair comparison times are drawn per job from the stage
  distribution (normal for the regular forensics kernel, lognormal for
  the two irregular kernels — Fig. 7).

Experiments are run at reduced ``n`` (Python cannot step a DES through
12.4 M pairs in reasonable time), so :func:`scaled_profile` shrinks the
item count while EXPERIMENTS.md records the scale used per experiment;
cache capacities in the benchmarks are scaled by the same ratio to keep
the cache-pressure regime, and hence the result shapes, intact.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

from repro.util.rng import seeded_rng
from repro.util.stats import lognormal_params

__all__ = [
    "WorkloadProfile",
    "WorkloadInstance",
    "FORENSICS",
    "BIOINFORMATICS",
    "MICROSCOPY",
    "PROFILES",
    "scaled_profile",
]

#: Table 1 quotes decimal megabytes (38.1 MB = 189.7 GB / 4980 items).
MB = 1e6


@dataclass(frozen=True)
class WorkloadProfile:
    """Static description of one application's cost structure (Table 1)."""

    name: str
    n_items: int
    #: Mean compressed input-file size on remote storage, bytes.
    file_size: float
    #: Cache slot size = size of one pre-processed item on GPU, bytes.
    slot_size: float
    #: Comparison result size (bytes) copied device-to-host per pair.
    result_size: float
    #: CPU parse stage: (mean, std) seconds.
    t_parse: tuple
    #: GPU pre-process stage: (mean, std) seconds; (0, 0) when absent.
    t_preprocess: tuple
    #: GPU comparison stage: (mean, std) seconds.
    t_compare: tuple
    #: CPU post-process stage: (mean, std) seconds.
    t_postprocess: tuple
    #: ``"normal"`` (regular kernels) or ``"lognormal"`` (irregular).
    compare_distribution: str = "normal"

    def __post_init__(self) -> None:
        if self.n_items < 2:
            raise ValueError(f"need at least 2 items, got {self.n_items}")
        if self.compare_distribution not in ("normal", "lognormal"):
            raise ValueError(f"unknown distribution {self.compare_distribution!r}")
        for label, pair in (
            ("t_parse", self.t_parse),
            ("t_preprocess", self.t_preprocess),
            ("t_compare", self.t_compare),
            ("t_postprocess", self.t_postprocess),
        ):
            mean, std = pair
            if mean < 0 or std < 0:
                raise ValueError(f"{label} must be non-negative, got {pair}")

    @property
    def n_pairs(self) -> int:
        """Number of comparisons C(n, 2)."""
        return self.n_items * (self.n_items - 1) // 2

    @property
    def total_pairwise_bytes(self) -> float:
        """Total data combined across all pairs (each item touched n-1 times).

        This is Table 1's "total data pair-wise processed" row, which
        exhibits the quadratic blow-up the paper highlights (≈1 PB for
        forensics at full scale).
        """
        return float(self.n_items - 1) * self.n_items * self.slot_size

    @property
    def is_compute_intensive(self) -> bool:
        """Microscopy-style: one comparison costs much more than a parse."""
        return self.t_compare[0] > 10 * max(self.t_parse[0], 1e-9)

    def instantiate(self, seed: int = 0) -> "WorkloadInstance":
        """Materialise fixed per-item costs for this profile."""
        return WorkloadInstance(self, seed)


class WorkloadInstance:
    """A concrete workload: per-item costs fixed, per-pair costs sampled.

    Deterministic under (profile, seed): re-running an experiment yields
    identical load costs and an identical comparison-time stream.
    """

    def __init__(self, profile: WorkloadProfile, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed
        n = profile.n_items
        rng = seeded_rng(seed)

        def _positive_normal(mean: float, std: float, size: int) -> np.ndarray:
            if mean == 0:
                return np.zeros(size)
            draw = rng.normal(mean, std, size)
            # Stage times are strictly positive; renormal-draw negatives.
            floor = mean * 0.05
            return np.maximum(draw, floor)

        self.parse_times = _positive_normal(*profile.t_parse, n)
        self.preprocess_times = _positive_normal(*profile.t_preprocess, n)
        self.postprocess_times = _positive_normal(*profile.t_postprocess, n)
        # File sizes vary mildly around the mean (±20% uniform).
        if profile.file_size > 0:
            self.file_sizes = rng.uniform(0.8, 1.2, n) * profile.file_size
        else:
            self.file_sizes = np.zeros(n)
        self._pair_rng = seeded_rng(seed + 1)
        mean, std = profile.t_compare
        if profile.compare_distribution == "lognormal" and mean > 0:
            self._ln_mu, self._ln_sigma = lognormal_params(mean, std)
        else:
            self._ln_mu = self._ln_sigma = None

    @property
    def n_items(self) -> int:
        """Item count of the underlying profile."""
        return self.profile.n_items

    def parse_time(self, item: int) -> float:
        """Fixed CPU parse time of ``item`` (same on every reload)."""
        return float(self.parse_times[item])

    def preprocess_time(self, item: int) -> float:
        """Fixed GPU pre-process time of ``item`` at baseline speed."""
        return float(self.preprocess_times[item])

    def postprocess_time(self, item: int) -> float:
        """Fixed CPU post-process time attributed to ``item``."""
        return float(self.postprocess_times[item])

    def file_size(self, item: int) -> float:
        """Compressed on-storage size of ``item`` in bytes."""
        return float(self.file_sizes[item])

    def compare_time(self) -> float:
        """Sample one comparison-kernel time at baseline speed.

        Regular kernels (forensics) draw from a tight normal; irregular
        kernels (bioinformatics, microscopy) draw from a lognormal with
        Table 1's moments, reproducing the long tails of Fig. 7.
        """
        mean, std = self.profile.t_compare
        if mean == 0:
            return 0.0
        if self._ln_mu is not None:
            return float(self._pair_rng.lognormal(self._ln_mu, self._ln_sigma))
        return float(max(self._pair_rng.normal(mean, std), mean * 0.05))


# ---------------------------------------------------------------------------
# The three applications of the paper, numbers transcribed from Table 1.
# Sizes are per-item averages of the table's dataset totals.
# ---------------------------------------------------------------------------

FORENSICS = WorkloadProfile(
    name="forensics",
    n_items=4980,
    file_size=19.4e9 / 4980,  # 19.4 GB over 4980 JPEGs ~ 3.9 MB
    slot_size=38.1 * MB,  # PRNU pattern of a 3648x2736 image
    result_size=8.0,  # one correlation score
    t_parse=(130.8e-3, 14.11e-3),
    t_preprocess=(20.5e-3, 0.02e-3),
    t_compare=(1.1e-3, 0.01e-3),
    t_postprocess=(0.0, 0.0),
    compare_distribution="normal",
)

BIOINFORMATICS = WorkloadProfile(
    name="bioinformatics",
    n_items=2500,
    file_size=1.8e9 / 2500,  # compressed FASTA ~ 720 KB
    slot_size=145.8 * MB,  # sparse composition vector slot
    result_size=8.0,
    t_parse=(36.9e-3, 14.79e-3),
    t_preprocess=(27.0e-3, 4.90e-3),
    t_compare=(2.1e-3, 0.79e-3),
    t_postprocess=(0.0, 0.0),
    compare_distribution="lognormal",
)

MICROSCOPY = WorkloadProfile(
    name="microscopy",
    n_items=256,
    file_size=150e6 / 256,  # JSON particle ~ 586 KB
    slot_size=6.0e3,  # binary localisations, 6 KB
    result_size=64.0,
    t_parse=(27.4e-3, 1.56e-3),
    t_preprocess=(0.0, 0.0),
    t_compare=(564.3e-3, 348e-3),
    t_postprocess=(0.0, 0.0),
    compare_distribution="lognormal",
)

PROFILES: Dict[str, WorkloadProfile] = {
    p.name: p for p in (FORENSICS, BIOINFORMATICS, MICROSCOPY)
}


def scaled_profile(
    profile: WorkloadProfile,
    n_items: int,
    scale_load_costs: bool = True,
) -> WorkloadProfile:
    """Return ``profile`` with the item count reduced to ``n_items``.

    With ``scale_load_costs=True`` (the default) the per-item costs —
    parse time, pre-process time, file size, *and slot size* — shrink by
    the same factor ``s = n_items / profile.n_items``.  This is the
    *faithful* scaling law for all-pairs workloads: comparisons grow as
    ``n^2`` but loads only as ``R*n``, so at the paper's scale loads are
    rare events per pair (e.g. forensics performs one load per ~370
    comparisons).  Shrinking ``n`` alone would inflate the
    load-to-compare ratio by ``1/s`` and move every experiment into a
    load-bound regime the paper never ran in; shrinking the per-item
    costs with ``n`` keeps

    - the composition of the GPU bound ``R n t_pre + C(n,2) t_cmp``,
    - the CPU/GPU and IO/GPU overlap ratios,
    - the latency-hiding demand (concurrent loads needed per unit time),
    - and the per-pair H2D/NIC copy overhead: cache slot *counts* are
      scaled by ``s`` in the experiment configs, which raises the
      device-miss rate by ~1/s relative to the paper; scaling the bytes
      moved per miss by ``s`` keeps the total copy overhead per unit of
      comparison work at its paper-scale value

    which is what preserves the *shapes* of Figs. 8-15 (see
    EXPERIMENTS.md for the factors used per experiment).

    ``scale_load_costs=False`` performs a plain truncation of the data
    set (useful for unit tests that want round numbers).
    """
    if n_items < 2:
        raise ValueError(f"n_items must be >= 2, got {n_items}")
    if not scale_load_costs:
        return replace(profile, n_items=n_items)
    s = n_items / profile.n_items
    scale2 = lambda pair: (pair[0] * s, pair[1] * s)  # noqa: E731
    return replace(
        profile,
        n_items=n_items,
        file_size=profile.file_size * s,
        slot_size=profile.slot_size * s,
        t_parse=scale2(profile.t_parse),
        t_preprocess=scale2(profile.t_preprocess),
    )
