"""Rocket's multi-level software cache (paper Section 4.1).

This package contains the *policy logic* of all three cache levels as
plain synchronous data structures, deliberately independent of any
concurrency model:

- :mod:`repro.cache.slots` — fixed-slot caches with READ/WRITE status
  flags, reader pinning, and pluggable eviction (device level and host
  level are both instances of :class:`SlotCache`);
- :mod:`repro.cache.distributed` — the third-level protocol state: the
  ``item -> node (item mod p)`` mediator mapping and the per-mediator
  ``candidates`` bookkeeping array;
- :mod:`repro.cache.policy` — eviction policies and the admission
  clamp that keeps the concurrent-job limit deadlock-free with respect
  to cache capacity.

The discrete-event simulator (:mod:`repro.sim.rocketsim`) and the real
threaded runtime (:mod:`repro.runtime`) wrap these structures with
their own waiting/wake-up mechanics (simulation events vs. condition
variables), so the policy behaviour tested here is exactly the
behaviour both runtimes execute.
"""

from repro.cache.slots import Slot, SlotState, SlotCache, CacheCounters
from repro.cache.distributed import CandidateDirectory, mediator_of, RequestOutcome
from repro.cache.policy import EvictionPolicy, safe_job_limit

__all__ = [
    "Slot",
    "SlotState",
    "SlotCache",
    "CacheCounters",
    "CandidateDirectory",
    "mediator_of",
    "RequestOutcome",
    "EvictionPolicy",
    "safe_job_limit",
]
