"""Third-level (distributed) cache protocol state (paper Section 4.1.3).

After a local host-cache miss, a node may fetch the pre-processed item
from a *remote* host cache instead of re-loading it from storage.  The
paper's scheme avoids any central registry:

- item ``i`` is *mediated* by node ``i mod p`` (p = node count);
- the mediator keeps, per item, a list of the ``h`` nodes that most
  recently requested it — the best guesses for who holds it now;
- a request from node A goes to mediator B; B prepends A to the
  candidate list and forwards the request along candidates
  ``C1..Ch``; the first candidate holding the item sends the data to A
  directly; if all ``h`` candidates miss, A receives a failure and
  loads the item itself.

The cost is ``h + 2`` messages per request and O(candidates) state.

This module holds the *state machine* of the scheme (mediator mapping,
candidate bookkeeping, outcome accounting).  Message transport and
timing live in the runtimes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Hashable, List, Sequence

__all__ = [
    "mediator_of",
    "mediator_of_live",
    "CandidateDirectory",
    "RequestOutcome",
    "HopStats",
]


def mediator_of(item: int, n_nodes: int) -> int:
    """Node responsible for mediating requests for ``item`` (``i mod p``)."""
    if n_nodes < 1:
        raise ValueError(f"need at least one node, got {n_nodes}")
    if item < 0:
        raise ValueError(f"item ids are non-negative, got {item}")
    return item % n_nodes


def mediator_of_live(item: int, live_nodes: Sequence[int]) -> int:
    """Mediator for ``item`` over an elastic (non-contiguous) node set.

    The paper's ``i mod p`` assumes nodes ``0..p-1`` all exist; under
    elastic membership the live set may have holes (dead or retired
    ids) and extensions (joined ids), so the mapping becomes ``i mod
    |live|`` into the *sorted* live list.  Every node that agrees on
    the membership epoch derives the same mediator with no extra
    coordination — the property the modulo scheme was chosen for.
    """
    if not live_nodes:
        raise ValueError("need at least one live node")
    if item < 0:
        raise ValueError(f"item ids are non-negative, got {item}")
    ordered = sorted(live_nodes)
    return ordered[item % len(ordered)]


class CandidateDirectory:
    """Per-mediator bookkeeping: the recent requesters of each item.

    ``lookup_and_record(item, requester)`` implements the mediator's
    step: return the current candidate list (most recent first, at most
    ``h`` entries) and then prepend the requester, because "a node that
    requested an item in the past will eventually find the data and
    keep it for some time into the future".
    """

    def __init__(self, max_candidates: int) -> None:
        if max_candidates < 1:
            raise ValueError(f"max_candidates (h) must be >= 1, got {max_candidates}")
        self.max_candidates = max_candidates
        self._candidates: Dict[Hashable, Deque[int]] = {}

    def lookup_and_record(self, item: Hashable, requester: int) -> List[int]:
        """Return candidates for ``item`` (before recording ``requester``)."""
        dq = self._candidates.get(item)
        if dq is None:
            dq = deque(maxlen=self.max_candidates)
            self._candidates[item] = dq
        result = list(dq)
        # Prepend the requester; drop an older duplicate entry so the
        # list stays a set of *distinct* likely holders.
        if requester in dq:
            dq.remove(requester)
        dq.appendleft(requester)
        return result

    def peek(self, item: Hashable) -> List[int]:
        """Current candidate list without recording anything."""
        dq = self._candidates.get(item)
        return list(dq) if dq else []

    def evict_node(self, node: int) -> int:
        """Drop ``node`` from every candidate list (it left the cluster).

        A dead node can never serve a payload, so forwarding a probe to
        it would burn a hop (or, worse, a timeout).  Returns the number
        of entries removed.
        """
        removed = 0
        for dq in self._candidates.values():
            if node in dq:
                dq.remove(node)
                removed += 1
        return removed

    @property
    def tracked_items(self) -> int:
        """Number of items with at least one recorded requester."""
        return len(self._candidates)

    def memory_entries(self) -> int:
        """Total candidate entries stored (the scheme's whole footprint)."""
        return sum(len(dq) for dq in self._candidates.values())


@dataclass
class HopStats:
    """Outcome accounting for Fig. 11: hits per hop and misses."""

    max_hops: int
    hits_at_hop: List[int] = field(default_factory=list)
    misses: int = 0
    no_candidates: int = 0

    def __post_init__(self) -> None:
        if not self.hits_at_hop:
            self.hits_at_hop = [0] * self.max_hops

    @property
    def requests(self) -> int:
        """Total distributed-cache requests issued."""
        return sum(self.hits_at_hop) + self.misses + self.no_candidates

    @property
    def total_hits(self) -> int:
        """Requests satisfied by some remote host cache."""
        return sum(self.hits_at_hop)

    def record_hit(self, hop: int) -> None:
        """Record a hit at 1-based hop index ``hop``."""
        if not 1 <= hop <= self.max_hops:
            raise ValueError(f"hop must be in [1, {self.max_hops}], got {hop}")
        self.hits_at_hop[hop - 1] += 1

    def record_miss(self, had_candidates: bool = True) -> None:
        """Record a request that no candidate could serve."""
        if had_candidates:
            self.misses += 1
        else:
            self.no_candidates += 1

    def percentages(self) -> Dict[str, float]:
        """Fig. 11's series: percentage per hop plus the miss bucket.

        Requests that found an empty candidate list count as misses, as
        in the paper (they fall through to a local load).
        """
        total = self.requests
        if total == 0:
            return {f"hit at hop {k + 1}": 0.0 for k in range(self.max_hops)} | {"miss": 0.0}
        out = {
            f"hit at hop {k + 1}": 100.0 * self.hits_at_hop[k] / total
            for k in range(self.max_hops)
        }
        out["miss"] = 100.0 * (self.misses + self.no_candidates) / total
        return out


@dataclass
class RequestOutcome:
    """Result of one distributed-cache request (returned by runtimes)."""

    item: Hashable
    hit: bool
    hop: int = 0  # 1-based hop at which the hit occurred; 0 for misses
    provider: int = -1  # node that served the data; -1 for misses
    messages: int = 0  # protocol messages spent on this request
