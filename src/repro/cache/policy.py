"""Eviction policies and cache-related admission clamping.

The paper's caches evict least-recently-used slots; FIFO and RANDOM are
provided as ablation baselines (see ``benchmarks/bench_ablation_eviction``)
to quantify how much the LRU choice matters for all-pairs reuse.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["EvictionPolicy", "safe_job_limit"]


class EvictionPolicy(Enum):
    """Which unpinned slot a full cache sacrifices on a miss."""

    LRU = "lru"
    FIFO = "fifo"
    RANDOM = "random"


def safe_job_limit(requested: int, device_slots: int, host_slots: int, gpus_per_node: int = 1) -> int:
    """Clamp the concurrent-job limit so cache capacity cannot deadlock.

    Jobs acquire their two items *sequentially* (smaller index first),
    so a job stalled on a cache slot holds at most **one** reader pin.
    Slots in WRITE state always publish — the load pipeline and the
    distributed fetch never wait on cache capacity once their slot is
    reserved — so the only deadlock scenario is every device slot being
    reader-pinned by jobs that are all waiting for an eviction.  With at
    most one held pin per waiting job, ``limit <= device_slots - 1``
    guarantees an unpinned (hence evictable or in-flight) slot always
    exists, and the host level needs no clamp at all: host pins are only
    held across bounded H2D copies.

    The sequential-acquisition argument (rather than the naive
    ``2 * limit < slots`` bound for concurrent acquisition) matters in
    practice: it admits roughly 4x more jobs in flight for the same
    cache size, which is what lets Rocket "anticipate first-level cache
    misses and acquire the necessary data before running out of work"
    (paper Section 4.3).
    """
    if requested < 1:
        raise ValueError(f"job limit must be >= 1, got {requested}")
    if device_slots < 2:
        raise ValueError(f"need >= 2 device cache slots, got {device_slots}")
    if host_slots < 2:
        raise ValueError(f"need >= 2 host cache slots, got {host_slots}")
    if gpus_per_node < 1:
        raise ValueError(f"gpus_per_node must be >= 1, got {gpus_per_node}")
    return max(1, min(requested, device_slots - 1))
