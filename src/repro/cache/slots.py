"""Fixed-slot software caches with READ/WRITE flags (paper Section 4.1.1-2).

Both the per-GPU device cache and the per-node host cache manage "a
fixed number of fixed-sized slots", each holding one loaded item plus a
status flag:

- ``WRITE`` — one writer is filling the slot; jobs needing the item must
  wait until it is published;
- ``READ`` — the slot holds valid data; ``readers`` jobs are currently
  pinned on it and it cannot be evicted while ``readers > 0``.

:class:`SlotCache` implements lookup, reservation-with-eviction,
publishing, and pinning as a *synchronous* structure.  It never blocks:
when an operation cannot proceed (item being written, nothing evictable)
it reports that outcome and the embedding runtime decides how to wait
(simulation events in :mod:`repro.sim.rocketsim`, condition variables in
:mod:`repro.runtime`).  Recency is tracked with an ordered dict so all
operations are O(1) amortised; eviction skips pinned slots from the LRU
end onward.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Hashable, List, Optional

import numpy as np

from repro.cache.policy import EvictionPolicy

__all__ = ["SlotState", "Slot", "CacheCounters", "SlotCache"]


class SlotState(Enum):
    """Status flag of one cache slot."""

    WRITE = "write"
    READ = "read"


@dataclass
class Slot:
    """One cache slot: a buffer bound to an item key.

    ``payload`` carries the actual item data in the threaded runtime and
    stays ``None`` in the simulator (where only timing matters).
    """

    index: int
    key: Optional[Hashable] = None
    state: SlotState = SlotState.WRITE
    readers: int = 0
    payload: Any = None
    #: Kernel-ready view derived from ``payload`` (e.g. an unpacked
    #: sparse CV), computed lazily by the runtime on first use and valid
    #: for the payload's residency — cleared whenever the slot is freed
    #: or rebound, so a pinned reader never sees a stale view.
    derived: Any = None

    @property
    def pinned(self) -> bool:
        """True while the slot must not be evicted."""
        return self.state is SlotState.WRITE or self.readers > 0


@dataclass
class CacheCounters:
    """Hit/miss/eviction accounting for one cache level."""

    hits: int = 0
    hits_while_writing: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        """Total lookups."""
        return self.hits + self.hits_while_writing + self.misses

    def hit_ratio(self) -> float:
        """Fraction of lookups that found the item (including in-flight)."""
        total = self.requests
        return (self.hits + self.hits_while_writing) / total if total else 0.0


class SlotCache:
    """A fixed number of fixed-size slots with LRU/FIFO/RANDOM eviction.

    The cache distinguishes three lookup outcomes, matching the flow
    diagram of the paper's Fig. 4:

    1. *hit (READ)* — data available; caller pins and proceeds;
    2. *hit (WRITE)* — another job is loading the item; caller waits;
    3. *miss* — caller reserves a slot (evicting if needed) and becomes
       the writer.
    """

    def __init__(
        self,
        n_slots: int,
        slot_size: float = 0.0,
        policy: EvictionPolicy = EvictionPolicy.LRU,
        name: str = "cache",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_slots < 1:
            raise ValueError(f"need at least one slot, got {n_slots}")
        self.n_slots = n_slots
        self.slot_size = slot_size
        self.policy = policy
        self.name = name
        self.counters = CacheCounters()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._by_key: Dict[Hashable, Slot] = {}
        # Recency order over *occupied* slots: oldest first.  For FIFO the
        # order is insertion order (never refreshed on use).
        self._order: "OrderedDict[Hashable, Slot]" = OrderedDict()
        self._free: List[Slot] = [Slot(index=i) for i in range(n_slots)]

    # -- introspection --------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_key)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._by_key

    @property
    def capacity_bytes(self) -> float:
        """Total cache size in bytes (``n_slots * slot_size``)."""
        return self.n_slots * self.slot_size

    def keys(self) -> List[Hashable]:
        """Keys currently resident (any state)."""
        return list(self._by_key)

    def pinned_count(self) -> int:
        """Number of slots that cannot currently be evicted."""
        return sum(1 for s in self._by_key.values() if s.pinned)

    # -- core operations -------------------------------------------------

    def lookup(self, key: Hashable, *, count: bool = True) -> Optional[Slot]:
        """Return the slot for ``key`` or None; updates hit/miss counters.

        Does *not* pin; a caller that proceeds to read must call
        :meth:`pin` while still holding control (both runtimes are
        effectively single-threaded per cache operation, so this is
        race-free by construction).
        """
        slot = self._by_key.get(key)
        if count:
            if slot is None:
                self.counters.misses += 1
            elif slot.state is SlotState.WRITE:
                self.counters.hits_while_writing += 1
            else:
                self.counters.hits += 1
        return slot

    def peek(self, key: Hashable) -> Optional[Slot]:
        """Lookup without touching the counters (for remote probes)."""
        return self._by_key.get(key)

    def pin(self, slot: Slot) -> None:
        """Register a reader on a published slot and refresh recency."""
        if slot.state is not SlotState.READ:
            raise ValueError(f"cannot pin slot in state {slot.state}")
        slot.readers += 1
        self._touch(slot)

    def unpin(self, slot: Slot) -> None:
        """Drop one reader registration."""
        if slot.readers <= 0:
            raise ValueError("unpin without matching pin")
        slot.readers -= 1

    def reserve(self, key: Hashable) -> Optional[Slot]:
        """Claim a slot for writing ``key``; returns None if nothing is evictable.

        On success the slot is in WRITE state and bound to ``key``;
        the caller is the unique writer and must eventually
        :meth:`publish` (or :meth:`abandon`) it.
        """
        if key in self._by_key:
            raise ValueError(f"reserve() for resident key {key!r}; use lookup() first")
        slot = self._claim_slot()
        if slot is None:
            return None
        slot.key = key
        slot.state = SlotState.WRITE
        slot.readers = 0
        slot.payload = None
        slot.derived = None
        self._by_key[key] = slot
        self._order[key] = slot
        return slot

    def publish(self, slot: Slot, payload: Any = None, initial_readers: int = 0) -> None:
        """Flip a WRITE slot to READ, making the item visible.

        ``initial_readers`` lets the runtime atomically hand the slot to
        jobs that were queued on the write, so the slot cannot be evicted
        between publication and their wake-up.
        """
        if slot.state is not SlotState.WRITE:
            raise ValueError(f"publish() on slot in state {slot.state}")
        if initial_readers < 0:
            raise ValueError("initial_readers must be >= 0")
        slot.state = SlotState.READ
        slot.readers = initial_readers
        if payload is not None:
            slot.payload = payload
        self._touch(slot)

    def abandon(self, slot: Slot) -> None:
        """Give up a WRITE reservation (load failed); frees the slot."""
        if slot.state is not SlotState.WRITE:
            raise ValueError(f"abandon() on slot in state {slot.state}")
        self._remove(slot)

    def invalidate(self, key: Hashable) -> bool:
        """Drop ``key`` if resident and unpinned; returns True if dropped."""
        slot = self._by_key.get(key)
        if slot is None or slot.pinned:
            return False
        self._remove(slot)
        return True

    # -- internals --------------------------------------------------------

    def _touch(self, slot: Slot) -> None:
        """Refresh recency (no-op for FIFO, which keeps insertion order)."""
        if self.policy is EvictionPolicy.FIFO:
            return
        if slot.key in self._order:
            self._order.move_to_end(slot.key)

    def _remove(self, slot: Slot) -> None:
        assert slot.key is not None
        del self._by_key[slot.key]
        del self._order[slot.key]
        slot.key = None
        slot.payload = None
        slot.derived = None
        slot.readers = 0
        slot.state = SlotState.WRITE
        self._free.append(slot)

    def _claim_slot(self) -> Optional[Slot]:
        if self._free:
            return self._free.pop()
        victim = self._pick_victim()
        if victim is None:
            return None
        self.counters.evictions += 1
        self._remove(victim)
        return self._free.pop()

    def _pick_victim(self) -> Optional[Slot]:
        if self.policy is EvictionPolicy.RANDOM:
            candidates = [s for s in self._by_key.values() if not s.pinned]
            if not candidates:
                return None
            return candidates[int(self._rng.integers(0, len(candidates)))]
        # LRU / FIFO: scan from the cold end, skipping pinned slots.
        for slot in self._order.values():
            if not slot.pinned:
                return slot
        return None
