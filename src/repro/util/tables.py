"""Plain-text table rendering for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figure series
and prints it as an aligned text table; these helpers keep the output
format consistent across the harness (and diffable between runs).
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence

__all__ = ["format_row", "format_table"]


def _cell(value: Any) -> str:
    """Render a single cell: floats get 4 significant digits."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_row(cells: Sequence[Any], widths: Sequence[int]) -> str:
    """Format one row given pre-computed column widths."""
    parts = []
    for value, width in zip(cells, widths):
        text = _cell(value)
        parts.append(text.rjust(width) if _is_numeric(value) else text.ljust(width))
    return "  ".join(parts).rstrip()


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned text table with ``headers`` over ``rows``."""
    materialized: List[Sequence[Any]] = [list(r) for r in rows]
    ncols = len(headers)
    for r in materialized:
        if len(r) != ncols:
            raise ValueError(f"row has {len(r)} cells, expected {ncols}: {r!r}")
    widths = [len(h) for h in headers]
    rendered = [[_cell(c) for c in r] for r in materialized]
    for r in rendered:
        for i, text in enumerate(r):
            widths[i] = max(widths[i], len(text))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for raw, r in zip(materialized, rendered):
        parts = []
        for value, text, width in zip(raw, r, widths):
            parts.append(text.rjust(width) if _is_numeric(value) else text.ljust(width))
        lines.append("  ".join(parts).rstrip())
    return "\n".join(lines)
