"""Streaming statistics and distribution fitting helpers.

Used throughout the benchmark harness to report the "mean ± std" stage
times of Table 1 and to fit the irregular kernel-time distributions of
Fig. 7 (the microscopy and bioinformatics kernels are long-tailed, which
we model as lognormal when synthesising workload profiles).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

__all__ = ["OnlineStats", "summarize", "lognormal_params"]


class OnlineStats:
    """Welford single-pass mean/variance accumulator.

    Numerically stable for the long streams the simulator produces
    (millions of task durations) without retaining samples.
    """

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, x: float) -> None:
        """Fold one observation into the accumulator."""
        self._n += 1
        delta = x - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (x - self._mean)
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x

    def add_many(self, xs: Iterable[float]) -> None:
        """Fold many observations."""
        for x in xs:
            self.add(x)

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._n

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self._n else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 for fewer than two samples)."""
        return self._m2 / (self._n - 1) if self._n > 1 else 0.0

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def total(self) -> float:
        """Sum of observations."""
        return self._mean * self._n

    @property
    def min(self) -> float:
        """Smallest observation (``inf`` when empty)."""
        return self._min

    @property
    def max(self) -> float:
        """Largest observation (``-inf`` when empty)."""
        return self._max

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Return a new accumulator equivalent to both inputs combined.

        Chan et al.'s parallel-variance merge; used when combining
        per-node statistics into cluster totals.
        """
        out = OnlineStats()
        n = self._n + other._n
        if n == 0:
            return out
        delta = other._mean - self._mean
        out._n = n
        out._mean = self._mean + delta * other._n / n
        out._m2 = self._m2 + other._m2 + delta * delta * self._n * other._n / n
        out._min = min(self._min, other._min)
        out._max = max(self._max, other._max)
        return out

    def __repr__(self) -> str:
        return f"OnlineStats(n={self._n}, mean={self.mean:.6g}, std={self.std:.6g})"


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """Descriptive summary (n/mean/std/min/max/p50/p95/p99) of ``samples``."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        return {"n": 0, "mean": 0.0, "std": 0.0, "min": 0.0, "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
    return {
        "n": int(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "max": float(arr.max()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
    }


def lognormal_params(mean: float, std: float) -> Tuple[float, float]:
    """Convert a (mean, std) pair to lognormal ``(mu, sigma)`` parameters.

    The simulated workload profiles reproduce Table 1's "mean ± std"
    stage times; irregular stages are drawn from a lognormal with these
    moments so the simulated Fig. 7 histograms have the right tail shape.
    """
    if mean <= 0:
        raise ValueError(f"lognormal mean must be positive, got {mean}")
    if std < 0:
        raise ValueError(f"std must be non-negative, got {std}")
    if std == 0:
        return math.log(mean), 0.0
    var_ratio = (std / mean) ** 2
    sigma2 = math.log1p(var_ratio)
    mu = math.log(mean) - sigma2 / 2.0
    return mu, math.sqrt(sigma2)
