"""Rolling-window throughput measurement (paper Fig. 14).

The heterogeneous experiment plots, per GPU, the number of pairs
processed per second as a rolling one-minute average over the run.
:class:`ThroughputSeries` records event completion timestamps and
produces exactly that series; :class:`RollingAverage` is the generic
windowed mean underneath it.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["RollingAverage", "ThroughputSeries"]


class RollingAverage:
    """Mean of (time, value) observations within a trailing window.

    Observations must be appended in non-decreasing time order — both the
    simulator and the threaded runtime naturally satisfy this per lane.
    """

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = float(window)
        self._times: List[float] = []
        self._values: List[float] = []
        self._sum = 0.0
        self._head = 0  # index of first in-window observation

    def __len__(self) -> int:
        return len(self._times) - self._head

    def add(self, time: float, value: float) -> None:
        """Record one observation at ``time``."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"observations must be time-ordered: got {time} after {self._times[-1]}"
            )
        self._times.append(time)
        self._values.append(value)
        self._sum += value
        self._evict(time)

    def _evict(self, now: float) -> None:
        cutoff = now - self.window
        while self._head < len(self._times) and self._times[self._head] <= cutoff:
            self._sum -= self._values[self._head]
            self._head += 1

    def mean(self) -> float:
        """Mean of in-window values (0.0 when the window is empty)."""
        n = len(self)
        return self._sum / n if n else 0.0


@dataclass
class ThroughputSeries:
    """Completion-event recorder producing rolling pairs/second series.

    Each call to :meth:`record` marks one completed unit of work (one
    pair comparison).  :meth:`series` then evaluates the rolling rate
    ``events_in_window / window`` on a regular grid, matching the
    one-minute rolling average of the paper's Fig. 14.
    """

    window: float = 60.0
    times: List[float] = field(default_factory=list)

    def record(self, time: float) -> None:
        """Mark one completion at ``time`` (must be non-decreasing)."""
        if self.times and time < self.times[-1]:
            raise ValueError("completion times must be non-decreasing")
        self.times.append(float(time))

    @property
    def count(self) -> int:
        """Total completions recorded."""
        return len(self.times)

    def rate_at(self, t: float) -> float:
        """Rolling rate (events/sec) in ``(t - window, t]``."""
        hi = bisect.bisect_right(self.times, t)
        lo = bisect.bisect_right(self.times, t - self.window)
        return (hi - lo) / self.window

    def series(self, step: float | None = None, end: float | None = None) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate the rolling rate on a grid; returns ``(t, rate)`` arrays."""
        if not self.times:
            return np.zeros(0), np.zeros(0)
        if end is None:
            end = self.times[-1]
        if step is None:
            step = max(self.window / 6.0, 1e-9)
        grid = np.arange(0.0, end + step, step)
        rates = np.array([self.rate_at(t) for t in grid])
        return grid, rates

    def overall_rate(self) -> float:
        """Average rate over the full recorded span (count / makespan)."""
        if len(self.times) < 1 or self.times[-1] <= 0:
            return 0.0
        return len(self.times) / self.times[-1]
