"""Deterministic random-number management.

Every stochastic component in this repository (workload generators, the
discrete-event simulator, synthetic data sets, work-stealing victim
selection) draws from a :class:`numpy.random.Generator` derived from a
single root seed.  Runs are therefore exactly reproducible: the same
(seed, configuration) pair always yields the same simulated trace and
the same measured statistics.

The paper's own experiments are wall-clock measurements on DAS-5 and
Cartesius; reproducing them on simulated time makes determinism *more*
important, since any nondeterminism would make the regenerated tables
unstable between runs.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

__all__ = ["seeded_rng", "spawn_seeds", "RngFactory"]

#: Default root seed used across examples and benchmarks.
DEFAULT_SEED = 0x524F434B  # "ROCK"


def seeded_rng(seed: int | None = None) -> np.random.Generator:
    """Return a fresh :class:`numpy.random.Generator` for ``seed``.

    ``None`` maps to :data:`DEFAULT_SEED` rather than OS entropy so that
    forgetting to pass a seed never silently produces irreproducible
    results.
    """
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_seeds(seed: int, count: int) -> List[int]:
    """Derive ``count`` independent child seeds from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning, which guarantees
    statistical independence between the children and between children
    and parent.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    ss = np.random.SeedSequence(seed)
    return [int(child.generate_state(1)[0]) for child in ss.spawn(count)]


class RngFactory:
    """Hand out named, independent random generators from one root seed.

    Components ask for a stream by name (``factory.get("steal:node3")``);
    the same name always yields a generator seeded identically, so adding
    a new consumer never perturbs the streams of existing consumers.
    This mirrors how per-entity RNGs are handled in serious DES codebases
    and keeps simulation results stable under refactoring.
    """

    def __init__(self, seed: int | None = None) -> None:
        self._seed = DEFAULT_SEED if seed is None else int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Root seed of this factory."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for stream ``name`` (created on first use)."""
        gen = self._cache.get(name)
        if gen is None:
            # Stable 64-bit hash of the stream name; Python's hash() is
            # salted per-process so it cannot be used here.
            h = 1469598103934665603  # FNV-1a offset basis
            for byte in name.encode("utf-8"):
                h = ((h ^ byte) * 1099511628211) & 0xFFFFFFFFFFFFFFFF
            gen = np.random.default_rng(np.random.SeedSequence([self._seed, h]))
            self._cache[name] = gen
        return gen

    def child(self, name: str) -> "RngFactory":
        """Return a sub-factory whose streams are independent of ours."""
        sub_seed = int(self.get(f"__child__:{name}").integers(0, 2**63 - 1))
        return RngFactory(sub_seed)

    def shuffle_copy(self, items: Sequence, name: str) -> list:
        """Return a shuffled copy of ``items`` using stream ``name``."""
        out = list(items)
        self.get(name).shuffle(out)
        return out

    def choice(self, items: Sequence, name: str):
        """Pick one element of ``items`` using stream ``name``."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        idx = int(self.get(name).integers(0, len(items)))
        return items[idx]
