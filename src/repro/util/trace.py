"""Task tracing on per-resource lanes (paper Fig. 6 and Fig. 8).

Rocket's profiling flag records, for every thread, which task ran when.
The paper uses these traces in two ways: a timeline visualisation
(Fig. 6) and per-thread total busy time compared against the overall run
time (Fig. 8 / Fig. 10).  :class:`TraceRecorder` supports both: events
carry a *lane* (thread name, e.g. ``"GPU0"``, ``"CPU"``, ``"IO"``), a
task label, a ``[start, end)`` interval in seconds, and an optional
``job_id`` so traces from concurrent jobs stay attributable.

The recorder is per-process: each node process (and the coordinator)
owns one, records against its own ``origin`` (an absolute
``time.perf_counter()`` reading taken at construction), and ships its
event buffer to the coordinator, which merges all buffers into a single
multi-process Chrome/Perfetto trace via :class:`ProfileTrace`.  Because
``perf_counter`` is ``CLOCK_MONOTONIC`` on Linux, origins from
different processes on one machine share a time base, so rebasing is a
single subtraction.
"""

from __future__ import annotations

import json
import threading
import time
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "ProfileTrace",
    "lane_summary",
    "ascii_timeline",
    "to_chrome_trace",
]

#: Default cap on events held by one recorder.  Concurrent FAIR-policy
#: pipelines can share a recorder; the bound keeps a runaway job from
#: exhausting memory (drops are counted, never silent).
DEFAULT_MAX_EVENTS = 200_000


@dataclass(frozen=True)
class TraceEvent:
    """One executed task: ``lane`` ran ``label`` over ``[start, end)``."""

    lane: str
    label: str
    start: float
    end: float
    job_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"end {self.end} precedes start {self.start}")

    @property
    def duration(self) -> float:
        """Task duration in seconds."""
        return self.end - self.start


class TraceRecorder:
    """Collects :class:`TraceEvent` records; can be disabled cheaply.

    A disabled recorder swallows events with near-zero overhead so that
    production runs (profiling flag off, the paper's default) pay almost
    nothing — mirroring Rocket's optional profiling flag.  Hot paths
    should additionally guard timestamp computation behind
    ``recorder.enabled`` so the disabled path performs no clock reads
    and no allocation at all.

    The recorder is thread-safe (pipelines record from IO/CPU/device
    worker threads concurrently) and bounded: once ``max_events`` events
    are held, further records increment :attr:`dropped` instead of
    growing the buffer.
    """

    def __init__(
        self,
        enabled: bool = True,
        *,
        max_events: int = DEFAULT_MAX_EVENTS,
        origin: Optional[float] = None,
    ) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.enabled = enabled
        self.max_events = max_events
        #: Absolute ``perf_counter`` reading that event times are
        #: relative to; lets a merger rebase buffers from several
        #: recorders (one per process) onto one session clock.
        self.origin = time.perf_counter() if origin is None else origin
        self.dropped = 0
        self._lock = threading.Lock()
        self._events: List[TraceEvent] = []

    def now(self) -> float:
        """Seconds since this recorder's :attr:`origin`."""
        return time.perf_counter() - self.origin

    def record(
        self,
        lane: str,
        label: str,
        start: float,
        end: float,
        job_id: Optional[int] = None,
    ) -> None:
        """Record one task execution (no-op when disabled)."""
        if not self.enabled:
            return
        event = TraceEvent(lane, label, start, end, job_id)
        with self._lock:
            if len(self._events) >= self.max_events:
                self.dropped += 1
                return
            self._events.append(event)

    def extend(self, events: Iterable[TraceEvent]) -> None:
        """Merge pre-built events (e.g. a shipped node buffer) in bulk."""
        if not self.enabled:
            return
        with self._lock:
            for event in events:
                if len(self._events) >= self.max_events:
                    self.dropped += 1
                    continue
                self._events.append(event)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        """All recorded events, in insertion order."""
        with self._lock:
            return list(self._events)

    def lanes(self) -> List[str]:
        """Sorted list of distinct lane names."""
        return sorted({e.lane for e in self.events})

    def events_for(self, lane: str) -> List[TraceEvent]:
        """Events of one lane, sorted by start time."""
        return sorted((e for e in self.events if e.lane == lane), key=lambda e: e.start)

    def busy_time(self, lane: str) -> float:
        """Total busy time of ``lane`` (sum of event durations).

        Fig. 8 of the paper plots exactly this per thread: "data per
        thread was extracted from a profile trace by taking the total
        time of tasks executed by each thread".
        """
        return sum(e.duration for e in self.events if e.lane == lane)

    def busy_by_label(self, lane: str) -> Dict[str, float]:
        """Busy time of ``lane`` broken down by task label.

        The GPU bar in Fig. 8 is split into pre-processing and
        comparison; this breakdown provides that split.
        """
        acc: Dict[str, float] = defaultdict(float)
        for e in self.events:
            if e.lane == lane:
                acc[e.label] += e.duration
        return dict(acc)

    def makespan(self) -> float:
        """End time of the last event (0.0 when empty)."""
        return max((e.end for e in self.events), default=0.0)

    def clear(self) -> None:
        """Drop all recorded events (and reset the drop counter)."""
        with self._lock:
            self._events.clear()
            self.dropped = 0


def lane_summary(recorder: TraceRecorder) -> Dict[str, Dict[str, object]]:
    """Per-lane summary: busy time, utilisation, task count, label split."""
    span = recorder.makespan()
    out: Dict[str, Dict[str, object]] = {}
    for lane in recorder.lanes():
        events = recorder.events_for(lane)
        busy = sum(e.duration for e in events)
        by_label: Dict[str, float] = defaultdict(float)
        for e in events:
            by_label[e.label] += e.duration
        out[lane] = {
            "busy": busy,
            "utilization": busy / span if span > 0 else 0.0,
            "tasks": float(len(events)),
            "by_label": dict(by_label),
        }
    return out


def ascii_timeline(
    recorder: TraceRecorder,
    width: int = 100,
    t0: float | None = None,
    t1: float | None = None,
) -> str:
    """Render the trace as an ASCII timeline, one row per lane (Fig. 6).

    Each column is a time bucket; a cell shows the first letter of the
    label that occupied most of that bucket, or ``.`` when idle.
    """
    events = recorder.events
    if not events:
        return "(empty trace)"
    if t0 is None:
        t0 = min(e.start for e in events)
    if t1 is None:
        t1 = max(e.end for e in events)
    if t1 <= t0:
        t1 = t0 + 1e-9
    dt = (t1 - t0) / width
    lines = []
    for lane in recorder.lanes():
        cells = [" "] * width
        occupancy = [0.0] * width
        for e in recorder.events_for(lane):
            first = max(0, int((e.start - t0) / dt))
            last = min(width - 1, int((e.end - t0) / dt))
            for c in range(first, last + 1):
                bucket_lo = t0 + c * dt
                bucket_hi = bucket_lo + dt
                overlap = min(e.end, bucket_hi) - max(e.start, bucket_lo)
                if overlap > occupancy[c]:
                    occupancy[c] = overlap
                    cells[c] = (e.label[:1] or "?").upper()
        row = "".join(ch if ch != " " else "." for ch in cells)
        lines.append(f"{lane:>12} |{row}|")
    lines.append(f"{'':>12}  t0={t0:.3f}s  t1={t1:.3f}s  ({dt:.4f}s/col)")
    return "\n".join(lines)


def _chrome_events(
    lanes_events: List[Tuple[str, int, List[TraceEvent]]],
    pid: int,
    time_unit: float,
) -> list:
    """Emit phase-``X`` events for one process's lanes."""
    out = []
    for lane, tid, events in lanes_events:
        for e in events:
            entry = {
                "name": e.label,
                "cat": "rocket",
                "ph": "X",
                "ts": e.start * time_unit,
                "dur": e.duration * time_unit,
                "pid": pid,
                "tid": tid,
                "args": {"lane": lane},
            }
            if e.job_id is not None:
                entry["args"]["job_id"] = e.job_id
            out.append(entry)
    return out


def to_chrome_trace(recorder: TraceRecorder, time_unit: float = 1e6, pid: int = 0) -> list:
    """Convert a trace to Chrome ``chrome://tracing`` JSON events.

    Returns the list of complete-duration events (phase ``X``); dump it
    with ``json.dump({"traceEvents": events}, fh)`` and load the file in
    ``chrome://tracing`` or Perfetto for the interactive version of the
    paper's Fig. 6.  ``time_unit`` converts seconds to the microsecond
    timestamps the format expects; ``pid`` tags the events with a
    process id (multi-process merges use :class:`ProfileTrace` instead).
    """
    lanes_events = [
        (lane, tid, recorder.events_for(lane))
        for tid, lane in enumerate(recorder.lanes())
    ]
    return _chrome_events(lanes_events, pid, time_unit)


class ProfileTrace:
    """A merged multi-process profile (coordinator + every node).

    Each contributing process registers once via :meth:`add_process`
    with its real OS pid, a display name, its event buffer, and the
    offset of its recorder's origin relative to the session origin;
    :meth:`to_chrome` then emits one Chrome/Perfetto trace where every
    process appears under its own pid with named lanes as threads.
    """

    def __init__(self) -> None:
        self._procs: Dict[int, Dict[str, object]] = {}

    def add_process(
        self,
        name: str,
        events: Iterable[TraceEvent],
        *,
        pid: int,
        offset: float = 0.0,
    ) -> None:
        """Merge one process's event buffer, rebased by ``offset`` seconds.

        ``offset`` is ``process_origin - session_origin``: added to every
        event time so all processes share the session clock.  Calling
        again with the same ``pid`` appends (a process can contribute one
        buffer per job).
        """
        proc = self._procs.setdefault(pid, {"name": name, "events": []})
        bucket: List[TraceEvent] = proc["events"]  # type: ignore[assignment]
        if offset:
            bucket.extend(
                TraceEvent(e.lane, e.label, e.start + offset, e.end + offset, e.job_id)
                for e in events
            )
        else:
            bucket.extend(events)

    def pids(self) -> List[int]:
        """Sorted pids of the contributing processes."""
        return sorted(self._procs)

    def process_name(self, pid: int) -> str:
        """Display name registered for ``pid``."""
        return str(self._procs[pid]["name"])

    def events_for_pid(self, pid: int) -> List[TraceEvent]:
        """All events contributed by ``pid``, in merge order."""
        return list(self._procs[pid]["events"])  # type: ignore[arg-type]

    @property
    def n_events(self) -> int:
        """Total events across all processes."""
        return sum(len(p["events"]) for p in self._procs.values())  # type: ignore[arg-type]

    def to_chrome(self, time_unit: float = 1e6) -> list:
        """Emit the merged trace: metadata + phase-``X`` events.

        Every process gets a ``process_name`` metadata record and one
        ``thread_name`` record per lane, so Perfetto shows e.g.
        ``node0 > gpu0`` instead of bare integers.
        """
        out: list = []
        for pid in self.pids():
            proc = self._procs[pid]
            events: List[TraceEvent] = proc["events"]  # type: ignore[assignment]
            lanes = sorted({e.lane for e in events})
            out.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": str(proc["name"])},
                }
            )
            by_lane: Dict[str, List[TraceEvent]] = defaultdict(list)
            for e in events:
                by_lane[e.lane].append(e)
            lanes_events = []
            for tid, lane in enumerate(lanes):
                out.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": tid,
                        "args": {"name": lane},
                    }
                )
                lanes_events.append(
                    (lane, tid, sorted(by_lane[lane], key=lambda e: e.start))
                )
            out.extend(_chrome_events(lanes_events, pid, time_unit))
        return out

    def save(self, path: str, time_unit: float = 1e6) -> str:
        """Write the merged trace as a Perfetto-loadable JSON file."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"traceEvents": self.to_chrome(time_unit)}, fh)
        return path
