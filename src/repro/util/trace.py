"""Task tracing on per-resource lanes (paper Fig. 6 and Fig. 8).

Rocket's profiling flag records, for every thread, which task ran when.
The paper uses these traces in two ways: a timeline visualisation
(Fig. 6) and per-thread total busy time compared against the overall run
time (Fig. 8 / Fig. 10).  :class:`TraceRecorder` supports both: events
carry a *lane* (thread name, e.g. ``"GPU0"``, ``"CPU"``, ``"IO"``), a
task label, and a ``[start, end)`` interval in seconds.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

__all__ = ["TraceEvent", "TraceRecorder", "lane_summary", "ascii_timeline", "to_chrome_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One executed task: ``lane`` ran ``label`` over ``[start, end)``."""

    lane: str
    label: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"end {self.end} precedes start {self.start}")

    @property
    def duration(self) -> float:
        """Task duration in seconds."""
        return self.end - self.start


class TraceRecorder:
    """Collects :class:`TraceEvent` records; can be disabled cheaply.

    A disabled recorder swallows events with near-zero overhead so that
    production runs (profiling flag off, the paper's default) pay almost
    nothing — mirroring Rocket's optional profiling flag.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: List[TraceEvent] = []

    def record(self, lane: str, label: str, start: float, end: float) -> None:
        """Record one task execution (no-op when disabled)."""
        if not self.enabled:
            return
        self._events.append(TraceEvent(lane, label, start, end))

    @property
    def events(self) -> List[TraceEvent]:
        """All recorded events, in insertion order."""
        return list(self._events)

    def lanes(self) -> List[str]:
        """Sorted list of distinct lane names."""
        return sorted({e.lane for e in self._events})

    def events_for(self, lane: str) -> List[TraceEvent]:
        """Events of one lane, sorted by start time."""
        return sorted((e for e in self._events if e.lane == lane), key=lambda e: e.start)

    def busy_time(self, lane: str) -> float:
        """Total busy time of ``lane`` (sum of event durations).

        Fig. 8 of the paper plots exactly this per thread: "data per
        thread was extracted from a profile trace by taking the total
        time of tasks executed by each thread".
        """
        return sum(e.duration for e in self._events if e.lane == lane)

    def busy_by_label(self, lane: str) -> Dict[str, float]:
        """Busy time of ``lane`` broken down by task label.

        The GPU bar in Fig. 8 is split into pre-processing and
        comparison; this breakdown provides that split.
        """
        acc: Dict[str, float] = defaultdict(float)
        for e in self._events:
            if e.lane == lane:
                acc[e.label] += e.duration
        return dict(acc)

    def makespan(self) -> float:
        """End time of the last event (0.0 when empty)."""
        return max((e.end for e in self._events), default=0.0)

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()


def lane_summary(recorder: TraceRecorder) -> Dict[str, Dict[str, float]]:
    """Per-lane summary: busy time, utilisation, task count, label split."""
    span = recorder.makespan()
    out: Dict[str, Dict[str, float]] = {}
    for lane in recorder.lanes():
        events = recorder.events_for(lane)
        busy = sum(e.duration for e in events)
        out[lane] = {
            "busy": busy,
            "utilization": busy / span if span > 0 else 0.0,
            "tasks": float(len(events)),
        }
    return out


def ascii_timeline(
    recorder: TraceRecorder,
    width: int = 100,
    t0: float | None = None,
    t1: float | None = None,
) -> str:
    """Render the trace as an ASCII timeline, one row per lane (Fig. 6).

    Each column is a time bucket; a cell shows the first letter of the
    label that occupied most of that bucket, or ``.`` when idle.
    """
    events = recorder.events
    if not events:
        return "(empty trace)"
    if t0 is None:
        t0 = min(e.start for e in events)
    if t1 is None:
        t1 = max(e.end for e in events)
    if t1 <= t0:
        t1 = t0 + 1e-9
    dt = (t1 - t0) / width
    lines = []
    for lane in recorder.lanes():
        cells = [" "] * width
        occupancy = [0.0] * width
        for e in recorder.events_for(lane):
            first = max(0, int((e.start - t0) / dt))
            last = min(width - 1, int((e.end - t0) / dt))
            for c in range(first, last + 1):
                bucket_lo = t0 + c * dt
                bucket_hi = bucket_lo + dt
                overlap = min(e.end, bucket_hi) - max(e.start, bucket_lo)
                if overlap > occupancy[c]:
                    occupancy[c] = overlap
                    cells[c] = (e.label[:1] or "?").upper()
        row = "".join(ch if ch != " " else "." for ch in cells)
        lines.append(f"{lane:>12} |{row}|")
    lines.append(f"{'':>12}  t0={t0:.3f}s  t1={t1:.3f}s  ({dt:.4f}s/col)")
    return "\n".join(lines)


def to_chrome_trace(recorder: TraceRecorder, time_unit: float = 1e6) -> list:
    """Convert a trace to Chrome ``chrome://tracing`` JSON events.

    Returns the list of complete-duration events (phase ``X``); dump it
    with ``json.dump({"traceEvents": events}, fh)`` and load the file in
    ``chrome://tracing`` or Perfetto for the interactive version of the
    paper's Fig. 6.  ``time_unit`` converts seconds to the microsecond
    timestamps the format expects.
    """
    events = []
    for lane_index, lane in enumerate(recorder.lanes()):
        for e in recorder.events_for(lane):
            events.append(
                {
                    "name": e.label,
                    "cat": "rocket",
                    "ph": "X",
                    "ts": e.start * time_unit,
                    "dur": e.duration * time_unit,
                    "pid": 0,
                    "tid": lane_index,
                    "args": {"lane": lane},
                }
            )
    return events
