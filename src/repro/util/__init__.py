"""Shared utilities: seeded RNG, histograms, traces, tables, rolling stats.

These helpers are deliberately dependency-light so that every other
subpackage (simulation, runtime, applications, benchmarks) can use them
without import cycles.
"""

from repro.util.rng import RngFactory, seeded_rng, spawn_seeds
from repro.util.histogram import Histogram, ascii_histogram
from repro.util.rolling import RollingAverage, ThroughputSeries
from repro.util.trace import ProfileTrace, TraceEvent, TraceRecorder, lane_summary
from repro.util.stats import OnlineStats, summarize, lognormal_params
from repro.util.tables import format_table, format_row

__all__ = [
    "RngFactory",
    "seeded_rng",
    "spawn_seeds",
    "Histogram",
    "ascii_histogram",
    "RollingAverage",
    "ThroughputSeries",
    "TraceEvent",
    "TraceRecorder",
    "ProfileTrace",
    "lane_summary",
    "OnlineStats",
    "summarize",
    "lognormal_params",
    "format_table",
    "format_row",
]
