"""Histogram support for kernel-runtime distributions (paper Fig. 7).

The paper characterises the three applications by the distribution of
their comparison-kernel run times: forensics is sharply peaked
(regular), bioinformatics and microscopy are long-tailed (irregular).
:class:`Histogram` builds fixed-bin histograms from samples and
:func:`ascii_histogram` renders them for the benchmark harness output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

import numpy as np

__all__ = ["Histogram", "ascii_histogram"]


@dataclass
class Histogram:
    """Fixed-bin histogram over ``[lo, hi)``.

    Values outside the range are clamped into the first/last bin so that
    long-tailed kernel-time distributions never lose samples silently;
    the clamp counts are tracked separately for inspection.
    """

    lo: float
    hi: float
    bins: int
    counts: np.ndarray = field(init=False)
    n_clamped_low: int = field(init=False, default=0)
    n_clamped_high: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if not (self.hi > self.lo):
            raise ValueError(f"need hi > lo, got [{self.lo}, {self.hi})")
        if self.bins <= 0:
            raise ValueError(f"bins must be positive, got {self.bins}")
        self.counts = np.zeros(self.bins, dtype=np.int64)

    @classmethod
    def from_samples(
        cls, samples: Sequence[float], bins: int = 40, lo: float | None = None, hi: float | None = None
    ) -> "Histogram":
        """Build a histogram sized to ``samples`` (range defaults to data range)."""
        arr = np.asarray(list(samples), dtype=np.float64)
        if arr.size == 0:
            raise ValueError("cannot build a histogram from zero samples")
        if lo is None:
            lo = float(arr.min())
        if hi is None:
            hi = float(arr.max())
        if hi <= lo:  # all samples identical: widen artificially
            hi = lo + max(abs(lo), 1.0) * 1e-6
        h = cls(lo=lo, hi=hi, bins=bins)
        h.add_many(arr)
        return h

    @property
    def total(self) -> int:
        """Total number of recorded samples (including clamped ones)."""
        return int(self.counts.sum())

    @property
    def edges(self) -> np.ndarray:
        """Bin edges, length ``bins + 1``."""
        return np.linspace(self.lo, self.hi, self.bins + 1)

    @property
    def centers(self) -> np.ndarray:
        """Bin centres, length ``bins``."""
        e = self.edges
        return (e[:-1] + e[1:]) / 2.0

    def add(self, value: float) -> None:
        """Record one sample."""
        idx = int((value - self.lo) / (self.hi - self.lo) * self.bins)
        if idx < 0:
            idx = 0
            self.n_clamped_low += 1
        elif idx >= self.bins:
            if value > self.hi:
                self.n_clamped_high += 1
            idx = self.bins - 1
        self.counts[idx] += 1

    def add_many(self, values: Iterable[float]) -> None:
        """Record many samples (vectorised)."""
        arr = np.asarray(list(values), dtype=np.float64)
        if arr.size == 0:
            return
        idx = ((arr - self.lo) / (self.hi - self.lo) * self.bins).astype(np.int64)
        self.n_clamped_low += int((idx < 0).sum())
        self.n_clamped_high += int((arr > self.hi).sum())
        np.clip(idx, 0, self.bins - 1, out=idx)
        np.add.at(self.counts, idx, 1)

    def mode_bin(self) -> int:
        """Index of the fullest bin."""
        return int(np.argmax(self.counts))

    def quantile(self, q: float) -> float:
        """Approximate quantile from binned counts (bin-centre resolution)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            raise ValueError("empty histogram has no quantiles")
        cum = np.cumsum(self.counts)
        target = q * cum[-1]
        idx = int(np.searchsorted(cum, target, side="left"))
        idx = min(idx, self.bins - 1)
        return float(self.centers[idx])

    def coefficient_of_variation(self) -> float:
        """CV (std/mean) estimated from binned counts.

        The paper's notion of a *regular* application (forensics) maps to
        a small CV; the irregular applications have CV near or above 1.
        """
        if self.total == 0:
            raise ValueError("empty histogram")
        c = self.centers
        w = self.counts / self.total
        mean = float((c * w).sum())
        var = float(((c - mean) ** 2 * w).sum())
        if mean == 0:
            return float("inf")
        return float(np.sqrt(var) / mean)


def ascii_histogram(hist: Histogram, width: int = 50, max_rows: int | None = None) -> str:
    """Render ``hist`` as an ASCII bar chart (one row per bin)."""
    lines: List[str] = []
    peak = int(hist.counts.max()) if hist.total else 1
    peak = max(peak, 1)
    edges = hist.edges
    rows = range(hist.bins) if max_rows is None else range(min(hist.bins, max_rows))
    for i in rows:
        bar = "#" * int(round(width * hist.counts[i] / peak))
        lines.append(f"[{edges[i]:10.4g}, {edges[i + 1]:10.4g}) {hist.counts[i]:>8d} {bar}")
    return "\n".join(lines)
