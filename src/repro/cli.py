"""Command-line interface: ``python -m repro <command>``.

Six subcommands cover the common entry points without writing code:

- ``run`` — run one of the three paper applications end-to-end on
  synthetic data on a selectable execution backend (``local`` threads
  or a real multi-process ``cluster``) and print the run stats
  (optionally saving the result matrix as JSON);
- ``demo`` — shorthand for ``run --backend local`` (kept for
  compatibility);
- ``serve`` — start the Rocket-as-a-service daemon: one warm session
  on the selected backend, served to socket clients until SIGTERM
  drains it (see :mod:`repro.serve`);
- ``submit`` — submit a workload to a running ``serve`` daemon and
  wait for the result (``--connect HOST:PORT``);
- ``simulate`` — run a workload profile on a simulated cluster and
  print the report (optionally dumping a Chrome trace of the run);
- ``profiles`` — print the Table 1 workload profiles;
- ``store`` — inspect (``stats``) or shrink (``gc``) a persistent
  cross-session store directory (see :mod:`repro.store`; enable one on
  a run with ``--store-dir``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.result import save_results
from repro.sim.cluster import ClusterSpec
from repro.sim.rocketsim import RocketSimConfig, run_simulation
from repro.sim.workload import PROFILES, scaled_profile
from repro.util.tables import format_table
from repro.util.trace import to_chrome_trace

__all__ = ["main", "build_parser", "add_run_arguments"]


def _add_dataset_arguments(p: argparse.ArgumentParser) -> None:
    """Flags selecting the synthetic data set and local device mix."""
    p.add_argument("app", choices=["forensics", "bioinformatics", "microscopy"])
    p.add_argument("--items", type=int, default=12, help="data set size")
    p.add_argument("--devices", type=int, default=2, help="virtual GPUs per node")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--device-speeds", metavar="S,S,...", default=None,
        help="comma-separated per-device speed factors (e.g. 1.0,0.25); "
        "for the cluster backend, nodes*devices values give a per-node mix",
    )
    p.add_argument(
        "--steal-policy", choices=["uniform", "speed"], default="uniform",
        help="uniform: the paper's randomized stealing; speed: "
        "heterogeneity-aware scheduling (speed-proportional partition, "
        "remaining-work victim ranking, speed-scaled steals)",
    )
    p.add_argument(
        "--log-json", action="store_true",
        help="emit structured runtime logs as JSON lines on stderr",
    )
    p.add_argument(
        "--store-dir", metavar="DIR", default=None,
        help="persistent cross-session store under DIR: preprocessed "
        "item payloads are reused on warm start and already-computed "
        "pairs are served without recomputation ('repro store stats' "
        "inspects it, 'repro store gc' shrinks it)",
    )


def _add_backend_arguments(p: argparse.ArgumentParser) -> None:
    """Flags selecting and configuring the execution backend."""
    p.add_argument(
        "--backend", choices=["local", "cluster"], default="local",
        help="execution backend (cluster = one worker process per node)",
    )
    p.add_argument("--nodes", type=int, default=2, help="cluster node count")
    p.add_argument(
        "--hops", type=int, default=2,
        help="distributed-cache forwarding bound h (cluster backend)",
    )
    p.add_argument(
        "--no-distributed-cache", action="store_true",
        help="disable the third cache level (cluster backend)",
    )
    p.add_argument(
        "--transport", choices=["queue", "shm"], default="queue",
        help="cluster data plane: pickled queues or zero-copy "
        "shared-memory descriptors",
    )
    p.add_argument(
        "--result-batch", type=int, default=64, metavar="N",
        help="pair results per coordinator message (cluster backend)",
    )
    p.add_argument(
        "--elastic", action="store_true",
        help="elastic membership: survive node loss mid-job and "
        "allow add_node()/retire_node() (cluster backend)",
    )
    p.add_argument(
        "--max-nodes", type=int, default=None, metavar="N",
        help="pre-allocated node-slot capacity for --elastic "
        "joins (default: nodes + 4)",
    )


def _add_shape_arguments(p: argparse.ArgumentParser, with_jobs_file: bool = True) -> None:
    """The --bipartite/--delta workload shape flags (one-of group)."""
    shape = p.add_mutually_exclusive_group()
    shape.add_argument(
        "--bipartite", type=int, default=None, metavar="N",
        help="bipartite workload: compare the first N items (the query "
        "set) against the remaining items (the reference corpus) "
        "instead of computing all pairs",
    )
    shape.add_argument(
        "--delta", type=int, default=None, metavar="N",
        help="delta workload: treat the last N items as newly added and "
        "compute only new-vs-old and new-vs-new pairs (incremental "
        "corpus growth)",
    )
    if with_jobs_file:
        shape.add_argument(
            "--jobs-file", metavar="PATH", default=None,
            help="run several jobs concurrently in one fair-sharing session: "
            "a JSON list of objects, each {'workload': 'all'|'bipartite'|"
            "'delta', 'n': N (split size, bipartite/delta only), "
            "'priority': W, 'max_inflight': M} — priorities are "
            "fair-share weights over the same synthetic data set",
        )


def add_run_arguments(p: argparse.ArgumentParser, with_backend: bool) -> None:
    """The full ``run``/``demo`` flag set (data + shape + backend)."""
    _add_dataset_arguments(p)
    p.add_argument("--save", metavar="PATH", help="write the result matrix as JSON")
    _add_shape_arguments(p)
    p.add_argument(
        "--priority", type=float, default=1.0, metavar="W",
        help="fair-share weight of the submitted single job; with "
        "--jobs-file set per-entry 'priority' keys instead (combining "
        "the two is an error)",
    )
    p.add_argument(
        "--profile", metavar="PATH", default=None,
        help="profile the run and write the merged multi-process "
        "Chrome/Perfetto trace JSON to PATH (load it in "
        "chrome://tracing or ui.perfetto.dev)",
    )
    if with_backend:
        _add_backend_arguments(p)


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rocket (SC 2020) reproduction - all-pairs computations",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a paper application on a selected backend")
    add_run_arguments(run, with_backend=True)

    demo = sub.add_parser("demo", help="run a paper application on synthetic data (local backend)")
    add_run_arguments(demo, with_backend=False)

    serve = sub.add_parser(
        "serve",
        help="start the serving daemon: one warm session, many socket clients",
    )
    _add_dataset_arguments(serve)
    _add_backend_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1", help="listen address")
    serve.add_argument(
        "--port", type=int, default=7070,
        help="listen port (0 = ephemeral, printed on startup)",
    )
    serve.add_argument(
        "--tenants", metavar="PATH", default=None,
        help="JSON tenant directory (weights + quotas); omitted = every "
        "tenant admitted at weight 1 with no quotas",
    )
    serve.add_argument(
        "--max-active", type=int, default=None, metavar="N",
        help="session-wide cap on concurrently active jobs",
    )
    serve.add_argument(
        "--result-ttl", type=float, default=900.0, metavar="SECONDS",
        help="how long finished, unacknowledged job results stay fetchable",
    )

    submit = sub.add_parser(
        "submit", help="submit a workload to a running serve daemon"
    )
    submit.add_argument(
        "--connect", metavar="HOST:PORT", required=True,
        help="address of the serving daemon",
    )
    submit.add_argument("--tenant", default="default", help="tenant identity")
    _add_shape_arguments(submit, with_jobs_file=False)
    submit.add_argument(
        "--priority", type=float, default=1.0, metavar="W",
        help="requested fair-share weight (multiplied by the tenant weight)",
    )
    submit.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="cap on this job's concurrently in-flight pair comparisons",
    )
    submit.add_argument("--save", metavar="PATH", help="write the result matrix as JSON")

    sim = sub.add_parser("simulate", help="run a workload on a simulated cluster")
    sim.add_argument("profile", choices=sorted(PROFILES))
    sim.add_argument("--items", type=int, default=96, help="scaled item count")
    sim.add_argument("--nodes", type=int, default=4)
    sim.add_argument("--gpus-per-node", type=int, default=1)
    sim.add_argument("--gpu", default="TitanX Maxwell")
    sim.add_argument("--device-slots", type=int, default=8)
    sim.add_argument("--host-slots", type=int, default=12)
    sim.add_argument("--no-distributed-cache", action="store_true")
    sim.add_argument("--hops", type=int, default=1)
    sim.add_argument("--seed", type=int, default=1)
    sim.add_argument("--trace", metavar="PATH", help="write a Chrome trace JSON")

    sub.add_parser("profiles", help="print the Table 1 workload profiles")

    store = sub.add_parser(
        "store", help="inspect or shrink a persistent store directory"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_stats = store_sub.add_parser(
        "stats", help="print size and count statistics for both store planes"
    )
    store_gc = store_sub.add_parser(
        "gc",
        help="delete oldest item payloads (then dead memo segments) "
        "until the directory fits a size budget",
    )
    for p in (store_stats, store_gc):
        p.add_argument("--store-dir", metavar="DIR", required=True)
        p.add_argument("--json", action="store_true", help="machine-readable output")
    store_gc.add_argument(
        "--max-bytes", type=int, required=True, metavar="N",
        help="target size budget for the store directory",
    )
    return parser


def _cmd_profiles() -> int:
    rows = []
    for prof in PROFILES.values():
        rows.append(
            [
                prof.name,
                prof.n_items,
                prof.n_pairs,
                f"{prof.slot_size / 1e6:.2f} MB",
                f"{1e3 * prof.t_parse[0]:.1f} ms",
                f"{1e3 * prof.t_preprocess[0]:.1f} ms",
                f"{1e3 * prof.t_compare[0]:.1f} ms",
                prof.compare_distribution,
            ]
        )
    print(
        format_table(
            ["profile", "items", "pairs", "slot", "parse", "preprocess", "compare", "dist"],
            rows,
            title="Workload profiles (paper Table 1)",
        )
    )
    return 0


def _make_demo_app(store, name: str, items: int, seed: int):
    """Synthesise a data set for one paper application; returns (app, keys)."""
    if name == "forensics":
        from repro.apps import ForensicsApplication
        from repro.data.synthetic import make_forensics_dataset

        dataset = make_forensics_dataset(store, n_images=items, seed=seed)
        return ForensicsApplication(), dataset.keys
    if name == "bioinformatics":
        from repro.apps import BioinformaticsApplication
        from repro.data.synthetic import make_bioinformatics_dataset

        dataset = make_bioinformatics_dataset(store, n_species=max(3, items), seed=seed)
        return BioinformaticsApplication(k=3), dataset.keys
    from repro.apps import MicroscopyApplication
    from repro.data.synthetic import make_microscopy_dataset

    dataset = make_microscopy_dataset(store, n_particles=items, seed=seed)
    return MicroscopyApplication(restarts=2), dataset.keys


def _parse_device_speeds(spec: Optional[str], devices: int, nodes: int):
    """Parse ``--device-speeds``: per-device, or nodes*devices per-node.

    Returns ``(device_speeds, node_speed_factors)`` — exactly one is
    non-None when a spec is given.
    """
    if spec is None:
        return None, None
    try:
        values = tuple(float(v) for v in spec.split(","))
    except ValueError:
        raise SystemExit(f"--device-speeds expects comma-separated floats, got {spec!r}")
    if any(not 0 < v <= 1.0 for v in values):
        raise SystemExit(
            f"--device-speeds values must be in (0, 1] (1.0 = reference GPU), got {spec!r}"
        )
    if len(values) == devices:
        return values, None
    if nodes > 1 and len(values) == nodes * devices:
        per_node = tuple(
            values[i * devices:(i + 1) * devices] for i in range(nodes)
        )
        return None, per_node
    raise SystemExit(
        f"--device-speeds needs {devices} values (per device) or "
        f"{nodes * devices} (per node x device), got {len(values)}"
    )


def _make_workload(keys, bipartite: Optional[int], delta: Optional[int]):
    """Build the run's workload from the CLI shape flags."""
    from repro.core.workload import AllPairs, Bipartite, DeltaPairs

    if bipartite is not None:
        if not 1 <= bipartite < len(keys):
            raise SystemExit(
                f"--bipartite needs a query-set size in [1, {len(keys) - 1}], "
                f"got {bipartite}"
            )
        return Bipartite(keys[:bipartite], keys[bipartite:])
    if delta is not None:
        if not 1 <= delta < len(keys):
            raise SystemExit(
                f"--delta needs a new-batch size in [1, {len(keys) - 1}], got {delta}"
            )
        return DeltaPairs(keys[:-delta], keys[-delta:])
    return AllPairs(keys)


def _load_jobs_file(path: str, keys) -> List[dict]:
    """Parse and validate a ``--jobs-file`` JSON job list."""
    with open(path, "r", encoding="utf-8") as fh:
        specs = json.load(fh)
    if not isinstance(specs, list) or not specs:
        raise SystemExit(f"--jobs-file {path!r} must hold a non-empty JSON list")
    jobs = []
    for idx, spec in enumerate(specs):
        if not isinstance(spec, dict):
            raise SystemExit(f"--jobs-file entry {idx} must be a JSON object")
        shape = spec.get("workload", "all")
        n = spec.get("n")
        if shape not in ("all", "bipartite", "delta"):
            raise SystemExit(
                f"--jobs-file entry {idx}: unknown workload {shape!r} "
                f"(expected all / bipartite / delta)"
            )
        if shape != "all" and not isinstance(n, int):
            raise SystemExit(f"--jobs-file entry {idx}: {shape} needs an integer 'n'")
        try:
            # Same construction + split-size validation as the
            # --bipartite/--delta flags.
            workload = _make_workload(
                keys,
                n if shape == "bipartite" else None,
                n if shape == "delta" else None,
            )
        except SystemExit as exc:
            raise SystemExit(f"--jobs-file entry {idx}: {exc}") from None
        priority = float(spec.get("priority", 1.0))
        max_inflight = spec.get("max_inflight")
        if max_inflight is not None:
            max_inflight = int(max_inflight)
        jobs.append(
            {"workload": workload, "priority": priority, "max_inflight": max_inflight}
        )
    return jobs


def _run_jobs_file(
    rocket, path: str, keys, save: Optional[str], profile: Optional[str] = None
) -> int:
    """Submit every --jobs-file job to one fair-sharing session."""
    with rocket.session(policy="fair") as session:
        handles = [
            session.submit(
                job["workload"],
                priority=job["priority"],
                max_inflight=job["max_inflight"],
            )
            for job in _load_jobs_file(path, keys)
        ]
        for idx, handle in enumerate(handles):
            results = handle.result()
            print(f"job {idx}: {handle.workload.describe()}")
            print(f"  {handle.accounting.summary()}")
            if save:
                target = f"{save}.job{idx}.json"
                save_results(results, target)
                print(f"  results written to {target}")
        if profile:
            session.profile().save(profile)
            print(f"profile trace written to {profile}")
    return 0


def _build_runtime(args: argparse.Namespace, profiling: bool = False):
    """Shared ``run``/``serve`` setup: synthetic data + backend config.

    Returns ``(app, store, keys, config, backend, options)`` ready for
    a ``Rocket``/``RocketSession`` constructor.
    """
    from repro.data.filestore import InMemoryStore
    from repro.runtime.localrocket import RocketConfig
    from repro.scheduling.workstealing import StealPolicy

    backend = getattr(args, "backend", "local")
    nodes = getattr(args, "nodes", 1) if backend == "cluster" else 1
    device_speeds, node_speeds = _parse_device_speeds(
        args.device_speeds, args.devices, nodes
    )
    if args.log_json:
        from repro.obs.log import configure_logging

        configure_logging(json_lines=True)

    store = InMemoryStore()
    app, keys = _make_demo_app(store, args.app, args.items, args.seed)
    config = RocketConfig(
        n_devices=args.devices,
        seed=args.seed,
        device_speed_factors=device_speeds,
        steal_policy=StealPolicy(args.steal_policy),
        profiling=profiling,
        store_dir=args.store_dir,
    )

    options = {}
    if backend == "cluster":
        from repro.runtime.cluster import ClusterConfig

        options["cluster"] = ClusterConfig(
            n_nodes=args.nodes,
            max_hops=args.hops,
            distributed_cache=not args.no_distributed_cache,
            transport=args.transport,
            result_batch=args.result_batch,
            node_speed_factors=node_speeds,
            elastic=args.elastic,
            max_nodes=args.max_nodes,
        )
    return app, store, keys, config, backend, options


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core.rocket import Rocket

    app, store, keys, config, backend, options = _build_runtime(
        args, profiling=bool(args.profile)
    )
    rocket = Rocket(app, store, config, backend=backend, **options)
    if getattr(args, "jobs_file", None):
        if args.priority != 1.0:
            raise SystemExit(
                "--priority has no effect with --jobs-file; set per-entry "
                "'priority' keys in the jobs file instead"
            )
        return _run_jobs_file(rocket, args.jobs_file, keys, args.save, args.profile)
    workload = _make_workload(keys, args.bipartite, args.delta)
    if args.priority != 1.0:
        # A lone job has no competition, so keep the serial FIFO
        # execution path (wholesale block hand-out); the weight rides
        # on the handle for scripted callers to inspect.
        with rocket.session() as session:
            handle = session.submit(workload, priority=args.priority)
            results = handle.result()
            if args.profile:
                session.profile().save(args.profile)
    else:
        results = rocket.run(workload, profile=args.profile)
    if args.profile:
        print(f"profile trace written to {args.profile}")
    print(workload.describe())
    stats = rocket.last_stats
    if stats is not None:
        print(stats.summary())
    else:
        # Fully memoized run: every pair came out of --store-dir and
        # the backend never executed a job.
        print("all pairs served from the persistent store; nothing recomputed")
    sample = list(results.items())[:5]
    for a, b, v in sample:
        print(f"  {a} vs {b}: {v:+.4f}")
    if args.save:
        save_results(results, args.save)
        print(f"results written to {args.save}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Start the serving daemon and block until SIGTERM drains it."""
    from repro.core.session import RocketSession
    from repro.serve import RocketServer, TenantDirectory

    app, store, keys, config, backend, options = _build_runtime(args)
    tenants = (
        TenantDirectory.from_file(args.tenants)
        if args.tenants
        else TenantDirectory.permissive()
    )
    session = RocketSession(
        app, store, config,
        backend=backend, policy="fair", max_active=args.max_active,
        **options,
    )
    try:
        server = RocketServer(
            session, keys,
            host=args.host, port=args.port,
            tenants=tenants, result_ttl=args.result_ttl,
        )
    except OSError as exc:
        session.close()
        print(f"cannot listen on {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1
    # Machine-parseable startup line: the SIGTERM drain test and shell
    # wrappers read the bound address (meaningful with --port 0).
    print(f"serving on {server.address}", flush=True)
    print(
        f"  backend={backend} items={args.items} app={args.app} "
        f"tenants={'directory' if args.tenants else 'permissive'}",
        flush=True,
    )
    server.serve_forever()
    print("daemon drained, exiting", flush=True)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit one workload to a running daemon and wait for the result."""
    from repro.serve import RemoteJobFailed, ServeConnectionError, connect

    try:
        client = connect(args.connect, tenant=args.tenant)
    except ServeConnectionError as exc:
        print(str(exc), file=sys.stderr)
        return 3
    with client:
        keys = client.keys()
        workload = _make_workload(keys, args.bipartite, args.delta)
        try:
            handle = client.submit(
                workload, priority=args.priority, max_inflight=args.max_inflight
            )
            print(f"job {handle.job_id}: {workload.describe()} (tenant {args.tenant})")
            results = handle.result()
        except ServeConnectionError as exc:
            print(f"connection lost: {exc}", file=sys.stderr)
            return 3
        except RemoteJobFailed as exc:
            print(f"job failed on the daemon: {exc}", file=sys.stderr)
            return 1
        status = handle.status()
        print(f"  {status['pairs_done']}/{status['pairs_total']} pairs")
        for a, b, v in list(results.items())[:5]:
            print(f"  {a} vs {b}: {v:+.4f}")
        if args.save:
            save_results(results, args.save)
            print(f"results written to {args.save}")
        handle.ack()
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    """Inspect or garbage-collect a persistent store directory."""
    from repro.store import RocketStore

    store = RocketStore(args.store_dir)
    try:
        if args.store_command == "gc":
            try:
                report = store.gc(args.max_bytes)
            except ValueError as exc:
                raise SystemExit(str(exc)) from None
            if args.json:
                print(json.dumps(report, sort_keys=True))
            else:
                print(
                    f"deleted {report['deleted_items']} item payloads and "
                    f"{report['deleted_segments']} memo segments "
                    f"({report['freed_bytes']} bytes freed)"
                )
            return 0
        stats = store.stats()
        if args.json:
            print(json.dumps(stats, sort_keys=True))
        else:
            items, memo = stats["items"], stats["memo"]
            print(f"store {args.store_dir}")
            print(f"  items:  {items['count']} payloads, {items['bytes']} bytes")
            print(
                f"  memo:   {memo['records']} records in "
                f"{memo['segments']} segments, {memo['bytes']} bytes"
            )
            print(f"  hashes: {stats['hashes']['cached']} cached")
            print(f"  total:  {stats['total_bytes']} bytes")
        return 0
    finally:
        store.close()


def _cmd_simulate(args: argparse.Namespace) -> int:
    profile = scaled_profile(PROFILES[args.profile], args.items)
    spec = ClusterSpec.homogeneous(
        args.nodes, gpu=args.gpu, gpus_per_node=args.gpus_per_node
    )
    config = RocketSimConfig(
        seed=args.seed,
        device_cache_slots=args.device_slots,
        host_cache_slots=args.host_slots,
        distributed_cache=not args.no_distributed_cache,
        max_hops=args.hops,
        profiling=bool(args.trace),
    )
    report = run_simulation(spec, profile, config, seed=args.seed)
    print(report.summary())
    if args.trace:
        assert report.trace is not None
        with open(args.trace, "w", encoding="utf-8") as fh:
            json.dump({"traceEvents": to_chrome_trace(report.trace)}, fh)
        print(f"Chrome trace written to {args.trace}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "profiles":
        return _cmd_profiles()
    if args.command in ("run", "demo"):
        return _cmd_run(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "store":
        return _cmd_store(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
