"""Execution-backend abstraction for :class:`~repro.core.rocket.Rocket`.

Rocket can execute the same all-pairs application on different
substrates — the threaded single-process runtime, or the multi-process
cluster runtime — behind one interface (the ``AbstractRunner`` /
concrete-runner split familiar from pipeline frameworks):

- :class:`RocketBackend` — the interface: ``open_session()`` returning
  a live :class:`BackendSession` that accepts
  :class:`~repro.core.workload.Workload` submissions, plus the
  one-shot ``run(keys, pair_filter)`` compatibility wrapper (open a
  session, submit, wait, close) and a ``last_stats`` attribute holding
  backend-specific statistics of the most recent job;
- :class:`BackendSession` — one live execution context: worker
  processes / threads, transport fabric and every cache level stay up
  across ``submit()`` calls, so consecutive jobs over overlapping keys
  reuse warm state;
- a registry mapping backend names to factories, so
  ``Rocket(app, store, backend="cluster", n_nodes=4)`` needs no imports
  from the caller.

Factories import their runtime modules on first use rather than at
module level: the runtime modules themselves import this registry, so
eager imports here would be circular.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Hashable, Optional, Sequence, Tuple

from repro.core.api import Application
from repro.core.result import ResultMatrix
from repro.core.session import RunHandle
from repro.core.workload import Workload, as_workload
from repro.data.filestore import FileStore

__all__ = [
    "BackendSession",
    "RocketBackend",
    "available_backends",
    "create_backend",
    "register_backend",
]


class BackendSession(ABC):
    """One live execution context of a backend.

    The session is a *multi-job* contract: :meth:`submit` is
    non-blocking and jobs are ordered and overlapped by the session's
    :class:`~repro.core.scheduler.SchedulingPolicy` — serially under
    the default FIFO policy, concurrently (weighted fair sharing, with
    per-job ``priority`` and ``max_inflight``) under FAIR.  Backends
    therefore execute *tagged* work: the local engine runs one pipeline
    per active job against shared caches and pools, the cluster
    protocol tags every steal/grant/result/stats message with its job
    id, and completion/abort are per job — cancelling one job never
    disturbs a co-running one.  :meth:`close` tears the shared state
    down (cancelling any queued or running job).  Sessions are what
    :class:`~repro.core.session.RocketSession` wraps.
    """

    @abstractmethod
    def submit(
        self,
        workload: Workload,
        *,
        priority: float = 1.0,
        max_inflight: Optional[int] = None,
    ) -> RunHandle:
        """Queue ``workload``; returns the job's handle immediately.

        ``priority`` is the job's fair-share weight (FAIR policy);
        ``max_inflight`` caps its concurrently in-flight pair
        comparisons (None — the scheduler's default window).
        """

    @abstractmethod
    def close(self) -> None:
        """Shut the session down.

        Exactly one caller wins: the session is torn down once, and any
        further ``close()`` — concurrent or sequential — raises
        :class:`~repro.core.session.SessionClosed` instead of racing
        the teardown.  Context-manager exit suppresses that error, so
        ``with`` blocks that close early remain valid.
        """

    @property
    @abstractmethod
    def closed(self) -> bool:
        """True once :meth:`close` ran (or the session died)."""

    def add_node(self) -> int:
        """Grow the session's worker set by one node (elastic backends).

        Only the cluster backend with ``ClusterConfig(elastic=True)``
        supports membership changes; everything else raises.
        """
        raise RuntimeError(
            f"{type(self).__name__} does not support elastic membership"
        )

    def retire_node(self, node: Optional[int] = None, *, drain: bool = True) -> int:
        """Drain and remove one worker node (elastic backends only)."""
        raise RuntimeError(
            f"{type(self).__name__} does not support elastic membership"
        )

    def metrics(self) -> Dict[str, Any]:
        """Snapshot of the session's metrics registry (nested dict).

        Backends without a registry report an empty snapshot; the real
        backends return the JSON-dumpable tree described in
        :mod:`repro.obs.metrics`.
        """
        return {}

    def profile(self):
        """The session's merged multi-process profile trace.

        ``None`` when the backend does not trace; the real backends
        return a :class:`~repro.util.trace.ProfileTrace` (empty unless
        the session ran with ``RocketConfig(profiling=True)``).
        """
        return None

    def __enter__(self) -> "BackendSession":
        return self

    def __exit__(self, *exc) -> None:
        from repro.core.session import SessionClosed

        try:
            self.close()
        except SessionClosed:
            pass  # closed early inside the with block


class RocketBackend(ABC):
    """One way of executing an all-pairs application.

    Concrete backends implement :meth:`open_session`; the blocking
    :meth:`run` wrapper is derived.  They expose ``last_stats``
    (``None`` before any run; the stats type is backend-specific —
    ``RunStats`` for the local backend, ``ClusterRunStats`` for the
    cluster backend) and must leave the result matrix identical across
    backends: the pipeline callbacks are pure, so only timing may
    differ.
    """

    #: Registry key of the backend (set by subclasses).
    name: str = "?"

    last_stats: Optional[Any] = None

    def open_session(self, *, policy="fifo", max_active: Optional[int] = None) -> BackendSession:
        """Spin up a live session against this backend's configuration.

        ``policy`` selects the job scheduling policy (``"fifo"`` —
        serial, submission order; ``"fair"`` — concurrent weighted fair
        sharing) and ``max_active`` bounds how many jobs run
        concurrently under FAIR.
        """
        raise NotImplementedError(f"backend {self.name!r} does not support sessions")

    def _one_shot_session(self, workload: Workload) -> BackendSession:
        """The session :meth:`run` executes its single workload on.

        Backends that can size resources to one known workload (e.g.
        the local engine's cache-slot bound) override this; the default
        is a plain :meth:`open_session`.
        """
        return self.open_session()

    def run(
        self, keys: Sequence[Hashable], pair_filter=None, profile: Optional[str] = None
    ) -> ResultMatrix:
        """Execute one workload to completion (one-shot session).

        ``keys`` may be a plain key sequence — optionally restricted by
        the legacy ``pair_filter`` predicate — or any
        :class:`~repro.core.workload.Workload`.  Statistics land in
        ``last_stats``.  With ``profile=`` the session's merged
        Chrome/Perfetto trace is written to that path before the
        session closes (meaningful when the backend's config has
        ``profiling=True`` — :meth:`Rocket.run <repro.core.rocket.Rocket.run>`
        arranges that automatically).

        .. deprecated:: 1.2
           ``pair_filter=`` — pass
           :class:`~repro.core.workload.FilteredPairs` instead.
        """
        if pair_filter is not None:
            import warnings

            warnings.warn(
                "run(pair_filter=...) is deprecated; submit a "
                "FilteredPairs(keys, predicate) workload instead",
                DeprecationWarning,
                stacklevel=3,
            )
        workload = as_workload(keys, pair_filter)
        from repro.store.integration import maybe_wrap_store  # lazy: avoids cycle

        session = maybe_wrap_store(self._one_shot_session(workload), self)
        try:
            handle = session.submit(workload)
            result = handle.result()
            if profile is not None:
                trace = session.profile()
                if trace is None:
                    raise RuntimeError(
                        f"backend {self.name!r} does not support profiling"
                    )
                trace.save(profile)
        finally:
            session.close()
        return result


_FACTORIES: Dict[str, Callable[..., RocketBackend]] = {}


def register_backend(
    name: str, factory: Callable[..., RocketBackend], overwrite: bool = False
) -> None:
    """Register a backend factory under ``name``.

    Registering a name twice is an error unless ``overwrite=True`` —
    silently shadowing a backend is almost always a bug in plugin code.
    """
    if name in _FACTORIES and not overwrite:
        raise ValueError(
            f"backend {name!r} is already registered; pass overwrite=True to replace it"
        )
    _FACTORIES[name] = factory


def available_backends() -> Tuple[str, ...]:
    """Names of the registered execution backends, sorted."""
    return tuple(sorted(_FACTORIES))


def create_backend(
    name: str, app: Application, store: FileStore, config=None, **options
) -> RocketBackend:
    """Instantiate backend ``name`` for an application and store.

    ``options`` are forwarded to the backend factory (e.g. ``n_nodes``
    or ``cluster`` for the cluster backend); unknown options raise
    ``TypeError`` from the factory itself.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        ) from None
    return factory(app, store, config, **options)


def _coerce_steal_policy(value):
    """Accept a StealPolicy or its string name ("uniform" / "speed")."""
    from repro.scheduling.workstealing import StealPolicy

    if isinstance(value, StealPolicy):
        return value
    try:
        return StealPolicy(value)
    except ValueError:
        raise ValueError(
            f"unknown steal policy {value!r}; "
            f"available: {', '.join(p.value for p in StealPolicy)}"
        ) from None


def _apply_scheduling_options(config, device_speeds, steal_policy, store_dir=None):
    """Fold the Rocket-level scheduling shorthands into a RocketConfig."""
    import dataclasses

    overrides = {}
    if device_speeds is not None:
        overrides["device_speed_factors"] = tuple(float(s) for s in device_speeds)
    if steal_policy is not None:
        overrides["steal_policy"] = _coerce_steal_policy(steal_policy)
    if store_dir is not None:
        overrides["store_dir"] = str(store_dir)
    return dataclasses.replace(config, **overrides) if overrides else config


def _local_factory(app, store, config=None, **options) -> RocketBackend:
    from repro.runtime.localrocket import LocalRocketRuntime, RocketConfig

    device_speeds = options.pop("device_speeds", None)
    steal_policy = options.pop("steal_policy", None)
    store_dir = options.pop("store_dir", None)
    if options:
        raise TypeError(f"unknown local backend options {sorted(options)}")
    config = _apply_scheduling_options(
        config if config is not None else RocketConfig(),
        device_speeds, steal_policy, store_dir,
    )
    return LocalRocketRuntime(app, store, config)


def _cluster_factory(app, store, config=None, **options) -> RocketBackend:
    import dataclasses

    from repro.runtime.cluster import ClusterConfig, ClusterRocketRuntime
    from repro.runtime.localrocket import RocketConfig

    cluster = options.pop("cluster", None)
    n_nodes = options.pop("n_nodes", None)
    transport = options.pop("transport", None)
    result_batch = options.pop("result_batch", None)
    device_speeds = options.pop("device_speeds", None)
    node_speeds = options.pop("node_speeds", None)
    steal_policy = options.pop("steal_policy", None)
    elastic = options.pop("elastic", None)
    max_nodes = options.pop("max_nodes", None)
    store_dir = options.pop("store_dir", None)
    if options:
        raise TypeError(f"unknown cluster backend options {sorted(options)}")
    if cluster is None:
        cluster = ClusterConfig(n_nodes=n_nodes if n_nodes is not None else 2)
    elif n_nodes is not None and n_nodes != cluster.n_nodes:
        raise ValueError(
            f"conflicting node counts: n_nodes={n_nodes} vs cluster.n_nodes={cluster.n_nodes}"
        )
    config = _apply_scheduling_options(
        config if config is not None else RocketConfig(),
        device_speeds, steal_policy, store_dir,
    )
    # Data-plane / heterogeneity shorthands: ``Rocket(..., transport="shm",
    # node_speeds=((1.0,), (0.25,)))`` overrides the (or a default)
    # ClusterConfig.
    overrides = {}
    if transport is not None:
        overrides["transport"] = transport
    if result_batch is not None:
        overrides["result_batch"] = result_batch
    if node_speeds is not None:
        overrides["node_speed_factors"] = tuple(
            tuple(float(s) for s in speeds) for speeds in node_speeds
        )
    if elastic is not None:
        overrides["elastic"] = bool(elastic)
    if max_nodes is not None:
        overrides["max_nodes"] = int(max_nodes)
    if overrides:
        cluster = dataclasses.replace(cluster, **overrides)
    return ClusterRocketRuntime(app, store, config, cluster=cluster)


register_backend("local", _local_factory, overwrite=True)
register_backend("cluster", _cluster_factory, overwrite=True)
