"""Multi-process cluster runtime: the paper's mechanisms over real IPC.

:class:`ClusterRocketRuntime` spawns one worker **process** per
simulated cluster node (``multiprocessing``), each running the same
threaded per-node pipeline as the local runtime
(:class:`~repro.runtime.pernode.NodePipeline`), and wires the three
cross-node mechanisms of the paper for real:

1. **Distributed cache** (Section 4.1.3) — on a host-cache miss a node
   sends a request to the item's mediator (:func:`~repro.cache.distributed.mediator_of`);
   the mediator consults its :class:`~repro.cache.distributed.CandidateDirectory`
   and forwards the request along the candidate chain; the first holder
   ships the pre-processed NumPy payload straight back to the requester
   over the transport — the paper's ``h + 2`` messages per request.
   Outcomes land in :class:`~repro.cache.distributed.HopStats`.

2. **Global work stealing** (Section 4.2) — the whole workload starts
   as one root :class:`~repro.scheduling.quadtree.PairBlock` on node 0;
   idle nodes steal blocks from remote deques through the coordinator,
   which probes victims in the order produced by the existing
   :class:`~repro.scheduling.workstealing.VictimSelector` global tier.

3. **Result gathering** — completed pairs stream back to the
   coordinator in batched result blocks
   (:class:`~repro.runtime.transport.ResultBatcher`); the coordinator
   assembles the final :class:`~repro.core.result.ResultMatrix` and a
   :class:`ClusterRunStats` (per-node stats, aggregated hop histogram,
   bytes and messages over the wire, per-kind message counts).

*How* bytes move between the processes is delegated to a pluggable
:class:`~repro.runtime.transport.Transport`
(``ClusterConfig(transport=...)``): the ``"queue"`` transport pickles
payloads inline through per-node ``multiprocessing`` queues, the
``"shm"`` transport keeps payloads in coordinator-owned shared-memory
segments and ships only small descriptors.  The default ``fork`` start
method shares the application/store objects with the children at no
cost; with ``spawn`` they must be picklable.

The runtime is **session-oriented and multi-job**: worker processes
are spawned once per :class:`ClusterSession` and then serve *many
concurrently active jobs*.  Each job is dispatched over the transport
as a ``("job", job_id, packed_spec, max_inflight)`` message, where the
spec ``(keys, pair_filter, blocks)`` rides inline on the queue
transport and as a shared-segment descriptor on shm; the node runs it
on its own
:class:`~repro.runtime.pernode.NodePipeline` borrowed from the
persistent :class:`~repro.runtime.pernode.NodeEngine`, so several
jobs' pair streams interleave on the shared devices and caches while
the processes, kernel threads and transport fabric survive between
jobs.  Every protocol message — cache requests and replies, steal
probes and grants, result batches, stats reports — is tagged with its
job id, so one job's stragglers can never leak into another job's
accounting, and aborting one job (``("stop", job_id, abort)``) leaves
co-running jobs untouched.  How many jobs run at once and in which
order is decided coordinator-side by the
:class:`~repro.core.scheduler.JobScheduler` (FIFO: serial, the
historical behaviour; FAIR: priority-ordered concurrent admission).
``ClusterRocketRuntime.run()`` is the one-shot compatibility path:
open a session, submit one workload, close.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import pickle
import queue
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cache.distributed import (
    CandidateDirectory,
    HopStats,
    mediator_of,
    mediator_of_live,
)
from repro.core.api import Application
from repro.core.scheduler import JobScheduler, coerce_policy
from repro.core.session import RunHandle, RunState, SessionClosed
from repro.core.workload import Workload
from repro.data.filestore import FileStore
from repro.model.perfmodel import StageCalibration
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.runtime.backend import BackendSession, RocketBackend
from repro.runtime.localrocket import RocketConfig
from repro.runtime.pernode import NodeEngine, NodePipeline, NodeStats
from repro.runtime.transport import (
    QueueTransport,
    ResultBatcher,
    Transport,
    TransportFabric,
    available_transports,
    create_fabric,
)
from repro.scheduling.quadtree import PairBlock, partition_blocks
from repro.scheduling.workstealing import StealPolicy, VictimSelector, WorkerTopology
from repro.util.rng import RngFactory
from repro.util.trace import ProfileTrace, TraceRecorder

__all__ = [
    "ClusterConfig",
    "ClusterRunStats",
    "ClusterRocketRuntime",
    "ClusterSession",
    "NodeCommServer",
    "NodeJobState",
    "QueueTransport",
    "NodeReport",
    "MESSAGE_KINDS",
]


@dataclass(frozen=True)
class ClusterConfig:
    """Tunables of the multi-process runtime."""

    n_nodes: int = 2
    #: Enable the third (distributed) cache level.
    distributed_cache: bool = True
    #: ``h`` — candidate-chain length a request may be forwarded along.
    max_hops: int = 2
    #: How long a worker waits for a distributed-cache reply before
    #: falling through to a local load.
    fetch_timeout: float = 30.0
    #: How long a worker waits for a global-steal grant before retrying.
    steal_timeout: float = 10.0
    #: Coordinator/comm-thread queue polling granularity.
    poll_interval: float = 0.05
    #: ``multiprocessing`` start method; ``fork`` shares the app/store
    #: objects with the children, ``spawn`` requires them picklable.
    start_method: str = "fork"
    #: Data-plane implementation (see :mod:`repro.runtime.transport`):
    #: ``"queue"`` pickles payloads inline, ``"shm"`` ships shared-memory
    #: descriptors.
    transport: str = "queue"
    #: Pair results per ``("results", ...)`` coordinator message;
    #: 1 reproduces the old one-message-per-pair behaviour.
    result_batch: int = 64
    #: Per-node shared-segment size for the ``"shm"`` transport.  The
    #: segment is sparse until written, so generous defaults cost
    #: nothing on Linux.
    shm_segment_bytes: int = 32 * 1024 * 1024
    #: Heterogeneous node mixes: per-node device speed-factor tuples
    #: (outer length ``n_nodes``, inner length the RocketConfig's
    #: ``n_devices``), overriding the shared RocketConfig's
    #: ``device_speed_factors`` on each node.  ``None`` — every node
    #: runs the RocketConfig as given.
    node_speed_factors: Optional[Tuple[Tuple[float, ...], ...]] = None
    #: Elastic membership: a node death mid-job re-enqueues the dead
    #: node's unfinished blocks instead of killing the session, and
    #: ``ClusterSession.add_node()`` / ``retire_node()`` grow and
    #: shrink the live node set while jobs run.  Off by default: the
    #: historical fail-fast behaviour (any unexpected death is fatal).
    elastic: bool = False
    #: Upper bound on concurrently live nodes (initial + added).  The
    #: transport fabric pre-allocates this many inboxes/segments, since
    #: ``multiprocessing`` queues cannot be created after the workers
    #: fork.  ``None`` — ``n_nodes`` (no headroom) when not elastic,
    #: ``n_nodes + 4`` when elastic.
    max_nodes: Optional[int] = None

    @property
    def capacity(self) -> int:
        """Resolved node-slot capacity of the transport fabric."""
        if self.max_nodes is not None:
            return self.max_nodes
        return self.n_nodes + 4 if self.elastic else self.n_nodes

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.max_nodes is not None and self.max_nodes < self.n_nodes:
            raise ValueError(
                f"max_nodes must be >= n_nodes, got {self.max_nodes} < {self.n_nodes}"
            )
        if self.max_hops < 1:
            raise ValueError(f"max_hops (h) must be >= 1, got {self.max_hops}")
        if self.fetch_timeout <= 0 or self.steal_timeout <= 0 or self.poll_interval <= 0:
            raise ValueError("timeouts must be positive")
        if self.result_batch < 1:
            raise ValueError(f"result_batch must be >= 1, got {self.result_batch}")
        if self.shm_segment_bytes < 65536:
            raise ValueError(
                f"shm_segment_bytes must be >= 65536, got {self.shm_segment_bytes}"
            )
        if self.node_speed_factors is not None:
            if len(self.node_speed_factors) != self.n_nodes:
                raise ValueError(
                    f"{len(self.node_speed_factors)} speed-factor tuples for "
                    f"{self.n_nodes} nodes"
                )
            for node, speeds in enumerate(self.node_speed_factors):
                if not speeds or any(not 0 < s <= 1.0 for s in speeds):
                    raise ValueError(
                        f"node {node} speed factors must be in (0, 1], got {speeds}"
                    )


#: Stats categories of the coordinator/protocol messages.
MESSAGE_KINDS = ("fetch", "grant", "result", "control")

#: Message tag -> stats category.  ``fetch`` covers the distributed
#: cache (including shm slot releases), ``grant`` the global-steal
#: protocol, ``result`` the batched result blocks, ``control`` the
#: stop/error/stats lifecycle traffic.
_KIND_OF = {
    "creq": "fetch",
    "cprobe": "fetch",
    "crep": "fetch",
    "pfree": "fetch",
    "sreq": "grant",
    "sprobe": "grant",
    "srep": "grant",
    "sgrant": "grant",
    "results": "result",
    "result": "result",
    "stats": "control",
    "error": "control",
    "stop": "control",
    "job": "control",
    "shutdown": "control",
    "epoch": "control",
}


@dataclass
class ClusterRunStats:
    """Measured behaviour of one multi-process cluster run."""

    runtime: float
    n_items: int
    n_pairs: int
    n_nodes: int
    loads: int
    reuse_factor: float
    throughput: float
    node_stats: List[NodeStats]
    hop_stats: HopStats
    remote_steals: int
    bytes_over_wire: int
    #: Control-plane messages of the cache + steal protocols.
    messages: int
    #: Messages broken down by category (see :data:`MESSAGE_KINDS`).
    message_kinds: Dict[str, int] = field(
        default_factory=lambda: {k: 0 for k in MESSAGE_KINDS}
    )
    #: Data-plane implementation the run used ("queue", "shm", ...).
    transport: str = "queue"
    #: Sum of device speed factors across all nodes (the model's ``p``).
    aggregate_speed: float = 1.0
    #: Online-calibrated stage costs merged from every node.
    calibration: Optional[StageCalibration] = None
    #: Calibrated-model runtime at the measured reuse factor R.
    predicted_runtime: float = 0.0
    #: Eq. 5 system efficiency against the calibrated lower bound.
    model_efficiency: float = 0.0

    def summary(self) -> str:
        """Short human-readable digest."""
        hs = self.hop_stats
        kinds = "/".join(f"{self.message_kinds.get(k, 0)} {k}" for k in MESSAGE_KINDS)
        return (
            f"{self.n_pairs} pairs / {self.n_items} items on {self.n_nodes} nodes "
            f"in {self.runtime:.2f}s ({self.throughput:.1f} pairs/s); "
            f"loads={self.loads} (R={self.reuse_factor:.2f}); "
            f"distributed cache: {hs.total_hits}/{hs.requests} remote hits, "
            f"{self.bytes_over_wire / 1e6:.2f} MB over wire "
            f"[{self.transport} transport], "
            f"{self.messages} messages ({kinds}); "
            f"remote steals={self.remote_steals}; "
            f"model: predicted {self.predicted_runtime:.2f}s vs measured "
            f"{self.runtime:.2f}s, system efficiency {self.model_efficiency:.1%} "
            f"(aggregate speed {self.aggregate_speed:.2f})"
        )


@dataclass
class NodeReport:
    """Everything one node ships back to the coordinator at shutdown."""

    stats: NodeStats
    hops: HopStats
    bytes_shipped: int
    bytes_received: int
    messages: int
    message_kinds: Dict[str, int] = field(
        default_factory=lambda: {k: 0 for k in MESSAGE_KINDS}
    )


# ----------------------------------------------------------------------
# Per-node protocol endpoint


class _Pending:
    """One in-flight request a worker thread is blocked on."""

    def __init__(self, req_id: int, kind: str, job_id: int) -> None:
        self.req_id = req_id
        self.kind = kind  # "fetch" | "steal"
        self.job_id = job_id
        #: Node the request is waiting on (the mediator for fetches);
        #: an epoch update that declares it dead resolves the wait with
        #: a definitive miss instead of letting it run out the timeout.
        self.target: Optional[int] = None
        self.event = threading.Event()
        self.result: Any = None

    def resolve(self, value: Any) -> None:
        self.result = value
        self.event.set()


class NodeJobState:
    """One active job's protocol state on a node.

    Everything that is scoped to a *job* rather than to the node
    process lives here: the mediator directory and hop statistics of
    the job's index space, byte/message accounting, the job-tagged
    result batcher, and the job's pipeline.  The node holds one of
    these per concurrently active job, so stopping or accounting one
    job can never touch another's state.
    """

    def __init__(
        self,
        job_id: int,
        keys: Sequence[Hashable],
        cluster: ClusterConfig,
        node_id: int,
        send_coordinator,
        max_inflight: Optional[int] = None,
        pack_result_block=None,
    ) -> None:
        self.job_id = job_id
        self.keys = list(keys)
        self.max_inflight = max_inflight
        self.directory = CandidateDirectory(cluster.max_hops)
        self.hops = HopStats(cluster.max_hops)
        self.bytes_shipped = 0
        self.bytes_received = 0
        self.messages = 0
        self.message_kinds: Dict[str, int] = {k: 0 for k in MESSAGE_KINDS}
        self.remote_abort = False
        self.pipeline: Optional[NodePipeline] = None
        #: The job's per-process trace recorder.  Disabled until the
        #: runner thread installs the real (profiling-aware) one —
        #: protocol messages can arrive before the pipeline exists, and
        #: those early spans are simply not recorded.
        self.trace = TraceRecorder(enabled=False)
        self.stopped = threading.Event()
        self.batcher = ResultBatcher(
            send_coordinator,
            node_id,
            cluster.result_batch,
            max_delay=cluster.poll_interval,
            job_id=job_id,
            pack=pack_result_block,
        )


class NodeCommServer:
    """One node's endpoint of the distributed-cache and steal protocols.

    The message handlers (:meth:`handle`) route every job-tagged
    message to its :class:`NodeJobState` — the per-job mediator
    directory, accounting and pipeline — and serve remote requests
    against that job's host-cache view; :meth:`remote_fetch` /
    :meth:`global_steal` are the blocking client calls the pipelines'
    worker threads invoke (bound to their job's state).  Payload
    packing/unpacking is delegated to the
    :class:`~repro.runtime.transport.Transport`, so the same protocol
    code runs over inline queues or shared-memory descriptors — and is
    unit-testable over a synchronous in-process transport.

    The server outlives every job and serves many at once:
    :meth:`begin_job` / :meth:`end_job` frame one workload's execution
    while other jobs keep running; ``("stop", job_id, abort)`` ends
    exactly one job; ``("shutdown",)`` ends the process.  Messages for
    unknown or already-ended jobs are answered with a miss (cache and
    steal probes) or dropped after releasing any out-of-band payload
    slot they carry — one job's stragglers can neither stall a peer
    nor leak into another job's accounting.
    """

    def __init__(
        self,
        node_id: int,
        cluster: ClusterConfig,
        transport: Transport,
        epoch: int = 0,
        live: Optional[Sequence[int]] = None,
    ) -> None:
        self.node_id = node_id
        self.cluster = cluster
        self.transport = transport
        #: Monotonic membership epoch (coordinator-owned; bumped on
        #: every join/death/retire and broadcast as ``("epoch", e,
        #: live)``).  Cache messages carry the sender's epoch so a
        #: receiver that already moved on answers a definitive miss
        #: instead of serving stale membership.
        self.epoch = int(epoch)
        #: Sorted tuple of currently live node ids; drives the mediator
        #: mapping and candidate filtering.
        self.live: Tuple[int, ...] = (
            tuple(sorted(live)) if live is not None else tuple(range(cluster.n_nodes))
        )
        self._stats_lock = threading.Lock()
        self._jobs_lock = threading.Lock()
        self._jobs_state: Dict[int, NodeJobState] = {}
        #: Recently ended jobs — a stop for one of these is stale.
        #: Bounded: stale stops only trail a job by the coordinator's
        #: report window (seconds), so remembering the last few hundred
        #: ids is ample and a high-churn session cannot grow it forever.
        #: (Job ids are not monotonic in dispatch order under FAIR
        #: priority admission, so the old greater-id guard cannot be
        #: used here.)
        self._ended_jobs: Set[int] = set()
        self._ended_order: Deque[int] = deque()
        self._ended_cap = 1024
        self._pending: Dict[int, _Pending] = {}
        self._pending_lock = threading.Lock()
        self._next_id = 0
        #: Stop notices that arrived before their job was begun (the
        #: coordinator may abort a job while a node is still picking it
        #: up); ``begin_job`` consults this map.  job_id -> abort flag.
        #: Bounded like ``_ended_jobs``: a stop whose job hand-out never
        #: arrives (partial dispatch failure) must not leak an entry per
        #: failure for the session's lifetime.
        self._early_stops: Dict[int, bool] = {}
        self._early_stop_order: Deque[int] = deque()
        #: Recovery grants (req_id ``-1``) that arrived before their job
        #: was begun on this node — a late joiner's first grant can race
        #: its own job hand-out.  Drained by the job runner after the
        #: pipeline attaches; bounded like the other straggler maps.
        self._early_grants: Dict[int, List[PairBlock]] = {}
        self._jobs: "queue.Queue[Optional[Tuple]]" = queue.Queue()
        self._shutdown = threading.Event()

    # -- wiring ----------------------------------------------------------

    def _job_state(self, job_id: int) -> Optional[NodeJobState]:
        with self._jobs_lock:
            return self._jobs_state.get(job_id)

    def active_jobs(self) -> List[NodeJobState]:
        with self._jobs_lock:
            return list(self._jobs_state.values())

    def next_job(self) -> Optional[Tuple]:
        """Block for the next job spec; None once shutdown was received."""
        return self._jobs.get()

    def begin_job(
        self,
        job_id: int,
        keys: Sequence[Hashable],
        max_inflight: Optional[int] = None,
    ) -> NodeJobState:
        """Create the protocol state for ``job_id`` and register it.

        Called on the job's runner thread before its pipeline is
        attached.  If the coordinator already stopped this job (an
        abort raced the job hand-out), the stop state is applied
        immediately so the caller can skip straight to the shutdown
        handshake.
        """
        state = NodeJobState(
            job_id,
            keys,
            self.cluster,
            self.node_id,
            functools.partial(self._send_coordinator_for, job_id),
            max_inflight=max_inflight,
            # Result blocks leave through the transport's packer, so a
            # zero-copy transport ships descriptors instead of pickled
            # triple tuples.
            pack_result_block=self.transport.pack_result_block,
        )
        with self._jobs_lock:
            self._jobs_state[job_id] = state
            early = self._early_stops.pop(job_id, None)
        if early is not None:
            self._apply_stop(state, bool(early))
        return state

    def attach(self, state: NodeJobState, pipeline: NodePipeline) -> None:
        """Bind the pipeline whose host cache and deques serve this job.

        Grants that arrived before the pipeline existed (a recovery
        re-injection racing the job hand-out) are drained into it here.
        """
        with self._jobs_lock:
            state.pipeline = pipeline
            early = self._early_grants.pop(state.job_id, [])
        for block in early:
            pipeline.inject_block(block)

    def end_job(self, state: NodeJobState) -> None:
        """Retire the finished job's state (the engine stays warm)."""
        state.stopped.set()
        with self._jobs_lock:
            self._jobs_state.pop(state.job_id, None)
            self._early_grants.pop(state.job_id, None)
            if state.job_id not in self._ended_jobs:
                self._ended_jobs.add(state.job_id)
                self._ended_order.append(state.job_id)
                while len(self._ended_order) > self._ended_cap:
                    self._ended_jobs.discard(self._ended_order.popleft())
        state.pipeline = None

    def serve(self) -> None:
        """Inbox loop (comm thread body); runs until :meth:`finish`.

        Each tick also pushes out the active jobs' aged partial result
        batches, so the coordinator's completion counts trail the
        pipelines by at most one poll interval.
        """
        while not self._shutdown.is_set():
            msg = self.transport.recv(self.cluster.poll_interval)
            for state in self.active_jobs():
                if not state.stopped.is_set():
                    state.batcher.maybe_flush()
            if msg is None:
                continue
            try:
                self.handle(msg)
            except BaseException:  # noqa: BLE001 - must not kill the comm thread
                self.transport.send_coordinator(
                    ("error", self.node_id, None, traceback.format_exc())
                )

    def finish(self) -> None:
        """Exit the serve loop (call just before the process exits)."""
        self._shutdown.set()

    # -- client side (called from worker threads) ------------------------

    def _register(self, kind: str, job_id: int) -> _Pending:
        with self._pending_lock:
            self._next_id += 1
            pend = _Pending(self._next_id, kind, job_id)
            self._pending[pend.req_id] = pend
        return pend

    def _pop_pending(self, req_id: int) -> Optional[_Pending]:
        with self._pending_lock:
            return self._pending.pop(req_id, None)

    def _count_send(self, state: Optional[NodeJobState], msg: Tuple) -> None:
        if state is None:
            return
        kind = _KIND_OF.get(msg[0], "control")
        with self._stats_lock:
            state.messages += 1
            state.message_kinds[kind] += 1
        if state.trace.enabled:
            # Sends are instants on the comm lane (zero-duration spans).
            t = state.trace.now()
            state.trace.record("NET", f"send:{kind}", t, t, state.job_id)

    def _send_node(self, state: Optional[NodeJobState], node: int, msg: Tuple) -> None:
        self._count_send(state, msg)
        self.transport.send_node(node, msg)

    def _send_coordinator(self, state: Optional[NodeJobState], msg: Tuple) -> None:
        self._count_send(state, msg)
        self.transport.send_coordinator(msg)

    def _send_coordinator_for(self, job_id: int, msg: Tuple) -> None:
        """Job-id-bound coordinator send (the result batcher's hook)."""
        self._send_coordinator(self._job_state(job_id), msg)

    def send_job_error(self, state: NodeJobState, text: str) -> None:
        """Report a job-scoped failure to the coordinator."""
        self._send_coordinator(state, ("error", self.node_id, state.job_id, text))

    def remote_fetch(self, state: NodeJobState, idx: int) -> Optional[np.ndarray]:
        """Third-cache-level request for item ``idx`` (blocking).

        Returns the pre-processed payload served by some peer's host
        cache, or ``None`` (recorded as a miss) — the caller then falls
        through to a local load.
        """
        if state.stopped.is_set():
            return None
        live = self.live
        if len(live) < 2:
            return None  # nobody left to fetch from
        tracing = state.trace.enabled
        t0 = state.trace.now() if tracing else 0.0
        mediator = mediator_of_live(idx, live)
        pend = self._register("fetch", state.job_id)
        pend.target = mediator
        self._send_node(
            state,
            mediator,
            ("creq", state.job_id, self.node_id, idx, pend.req_id, self.epoch),
        )
        if not pend.event.wait(self.cluster.fetch_timeout):
            self._pop_pending(pend.req_id)
            with self._stats_lock:
                state.hops.record_miss(had_candidates=True)
            if tracing:
                state.trace.record("NET", "fetch:timeout", t0, state.trace.now(), state.job_id)
            return None
        if pend.result is None:  # woken by stop
            return None
        payload, hop, _provider, wire = pend.result
        with self._stats_lock:
            if payload is None:
                state.hops.record_miss(had_candidates=(hop != 0))
            else:
                state.hops.record_hit(hop)
                state.bytes_received += wire
        if tracing:
            label = "fetch:hit" if payload is not None else "fetch:miss"
            state.trace.record("NET", label, t0, state.trace.now(), state.job_id)
        return payload

    def global_steal(self, state: NodeJobState) -> Optional[PairBlock]:
        """Request one of this job's blocks from a remote node."""
        if state.stopped.is_set():
            return None
        tracing = state.trace.enabled
        t0 = state.trace.now() if tracing else 0.0
        pend = self._register("steal", state.job_id)
        self._send_coordinator(
            state, ("sreq", state.job_id, self.node_id, pend.req_id)
        )
        if not pend.event.wait(self.cluster.steal_timeout):
            self._pop_pending(pend.req_id)
            if tracing:
                state.trace.record("NET", "steal:timeout", t0, state.trace.now(), state.job_id)
            return None
        if tracing:
            label = "steal:grant" if pend.result is not None else "steal:miss"
            state.trace.record("NET", label, t0, state.trace.now(), state.job_id)
        return pend.result

    # -- server side -----------------------------------------------------

    def handle(self, msg: Tuple) -> None:
        """Process one protocol message (mediator / candidate / reply)."""
        kind = msg[0]
        if kind == "job":
            if len(msg) == 4:
                # Packed hand-out: the spec travels out-of-band (or
                # inline, per the fabric) and unpacks on this side.
                _, job_id, packed, max_inflight = msg
                keys, pair_filter, blocks = self.transport.unpack_job_payload(packed)
            else:  # legacy inline 6-tuple (tests, older coordinators)
                _, job_id, keys, pair_filter, blocks, max_inflight = msg
            self._jobs.put((job_id, keys, pair_filter, blocks, max_inflight))
            return
        if kind == "shutdown":
            self._jobs.put(None)
            return
        if kind == "pfree":
            # A receiver finished copying a shared-memory payload;
            # slot bookkeeping is transport-level, not job-level.
            self.transport.handle_free(msg)
            return
        if kind == "epoch":
            # Membership update from the coordinator.  Monotonic: a
            # stale broadcast (reordered behind a newer one) is ignored.
            _, epoch, live = msg
            if epoch <= self.epoch:
                return
            gone = set(self.live) - set(live)
            self.epoch = int(epoch)
            self.live = tuple(sorted(live))
            if gone:
                # Dead nodes can no longer serve: drop them from every
                # active job's candidate directory so mediator answers
                # stop pointing requesters at them, and resolve fetches
                # currently waiting on one of them with a definitive
                # miss instead of running out the fetch timeout.
                for state in self.active_jobs():
                    for node in gone:
                        state.directory.evict_node(node)
                with self._pending_lock:
                    doomed = [
                        p
                        for p in self._pending.values()
                        if p.kind == "fetch" and p.target in gone
                    ]
                    for pend in doomed:
                        del self._pending[pend.req_id]
                for pend in doomed:
                    pend.resolve(None)
            return
        if kind == "stop":
            _, job_id, abort = msg
            state = self._job_state(job_id)
            if state is not None:
                self._apply_stop(state, bool(abort))
                return
            with self._jobs_lock:
                if job_id not in self._ended_jobs:
                    # The stop raced the job hand-out: remember it for
                    # begin_job.
                    if job_id not in self._early_stops:
                        self._early_stop_order.append(job_id)
                        while len(self._early_stop_order) > self._ended_cap:
                            self._early_stops.pop(
                                self._early_stop_order.popleft(), None
                            )
                    self._early_stops[job_id] = bool(abort)
            return

        job_id = msg[1]
        state = self._job_state(job_id)
        if kind == "creq":
            # Mediator step: return current candidates, record requester.
            # Legacy 5-tuples (tests, older senders) carry no epoch and
            # are treated as current.
            _, _, requester, idx, req_id = msg[:5]
            epoch = msg[5] if len(msg) > 5 else self.epoch
            if state is None or not 0 <= idx < len(state.keys) or epoch < self.epoch:
                # Unknown/ended job, an index from a different job's
                # space, or a request sent under stale membership:
                # answer with a definitive miss so the requester falls
                # through to a local load instead of blocking out its
                # fetch timeout.
                self._send_node(state, requester, ("crep", job_id, req_id, None, -1, -1))
                return
            live = self.live
            candidates = [
                c for c in state.directory.lookup_and_record(idx, requester)
                if c != requester and c in live
            ]
            if not candidates:
                self._send_node(state, requester, ("crep", job_id, req_id, None, 0, -1))
            else:
                self._send_node(
                    state,
                    candidates[0],
                    ("cprobe", job_id, requester, idx, req_id,
                     tuple(candidates[1:]), 1, self.epoch),
                )
        elif kind == "cprobe":
            # Candidate step: serve from the host cache or forward.
            _, _, requester, idx, req_id, rest, hop = msg[:7]
            epoch = msg[7] if len(msg) > 7 else self.epoch
            if epoch < self.epoch:
                # Probe from a previous membership epoch: droppable by
                # contract — answer the requester with a definitive miss.
                self._send_node(state, requester, ("crep", job_id, req_id, None, -1, -1))
                return
            payload = (
                state.pipeline.host_payload_view(state.keys[idx])
                if state is not None
                and state.pipeline is not None
                and 0 <= idx < len(state.keys)
                else None
            )
            if payload is not None:
                packed = self.transport.pack_payload(payload)
                with self._stats_lock:
                    state.bytes_shipped += self.transport.wire_bytes(packed)
                self._send_node(
                    state, requester, ("crep", job_id, req_id, packed, hop, self.node_id)
                )
            elif rest:
                live = self.live
                chain = [c for c in rest if c in live]
                if chain:
                    self._send_node(
                        state,
                        chain[0],
                        ("cprobe", job_id, requester, idx, req_id,
                         tuple(chain[1:]), hop + 1, self.epoch),
                    )
                else:
                    self._send_node(
                        state, requester, ("crep", job_id, req_id, None, -1, -1)
                    )
            else:
                # Chain exhausted: the requester must load locally.
                self._send_node(state, requester, ("crep", job_id, req_id, None, -1, -1))
        elif kind == "crep":
            _, _, req_id, packed, hop, provider = msg
            pend = self._pop_pending(req_id)
            if pend is None:
                # The requester timed out (or its job stopped) and
                # already fell back to a local load: release any
                # out-of-band slot without paying for the payload copy.
                if packed is not None:
                    self.transport.release_payload(
                        packed, functools.partial(self._send_node, state)
                    )
                return
            wire = self.transport.wire_bytes(packed) if packed is not None else 0
            payload = (
                self.transport.unpack_payload(
                    packed, functools.partial(self._send_node, state)
                )
                if packed is not None
                else None
            )
            pend.resolve((payload, hop, provider, wire))
        elif kind == "sprobe":
            _, _, thief, req_id = msg
            block = (
                state.pipeline.steal_for_remote()
                if state is not None and state.pipeline is not None
                else None
            )
            self._send_coordinator(
                state, ("srep", job_id, self.node_id, thief, req_id, block)
            )
        elif kind == "sgrant":
            _, _, req_id, block = msg
            pend = self._pop_pending(req_id)
            if pend is not None:
                pend.resolve(block)
            elif block is not None:
                # The thief timed out waiting (or this is a recovery
                # re-injection, req_id -1); never lose a granted block.
                # The job tag guarantees the block belongs to this
                # job's index space — a grant for an ended job is
                # dropped instead, and a grant racing the job hand-out
                # is parked for :meth:`attach` to drain (checked and
                # buffered under the jobs lock so the runner's drain
                # cannot miss it).
                pipeline = None
                with self._jobs_lock:
                    st = self._jobs_state.get(job_id)
                    if st is not None and st.stopped.is_set():
                        pass  # job ended here: drop
                    elif st is not None and st.pipeline is not None:
                        pipeline = st.pipeline
                    elif job_id not in self._ended_jobs:
                        parked = self._early_grants.setdefault(job_id, [])
                        if len(parked) < self._ended_cap:
                            parked.append(block)
                if pipeline is not None:
                    pipeline.inject_block(block)
        else:
            raise ValueError(f"unknown cluster message {kind!r}")

    def _apply_stop(self, state: NodeJobState, abort: bool) -> None:
        """End one job: wake its blocked clients, stop its pipeline."""
        state.remote_abort = abort
        state.stopped.set()
        with self._pending_lock:
            mine = [p for p in self._pending.values() if p.job_id == state.job_id]
            for pend in mine:
                del self._pending[pend.req_id]
        for pend in mine:
            pend.resolve(None)
        if state.pipeline is not None:
            state.pipeline.request_stop(abort=abort)

    def report(self, state: NodeJobState, stats: NodeStats) -> NodeReport:
        """Bundle one job's pipeline and protocol stats for shipping."""
        with self._stats_lock:
            return NodeReport(
                stats=stats,
                hops=state.hops,
                bytes_shipped=state.bytes_shipped,
                bytes_received=state.bytes_received,
                messages=state.messages,
                message_kinds=dict(state.message_kinds),
            )

    def ship_stats(self, state: NodeJobState, stats: NodeStats) -> None:
        """Send one job's final stats report (counting the message)."""
        self._count_send(state, ("stats",))
        self.transport.send_coordinator(
            ("stats", self.node_id, state.job_id, self.report(state, stats))
        )


# ----------------------------------------------------------------------
# Node process


def _format_error(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _run_node_job(
    comm: NodeCommServer,
    engine: NodeEngine,
    app: Application,
    store: FileStore,
    config: RocketConfig,
    cluster: ClusterConfig,
    job: Tuple,
) -> None:
    """Run one job to completion on this node (job-thread body).

    Several of these run concurrently against the shared engine; each
    owns its job's :class:`NodeJobState` and pipeline, so stopping or
    failing one job never disturbs a co-running one.
    """
    node_id = comm.node_id
    job_id, keys, pair_filter, initial_blocks, max_inflight = job
    # Elastic single-node sessions keep the remote planes enabled: a
    # node joining later must be fetchable/stealable-from immediately.
    multi = cluster.n_nodes > 1 or cluster.elastic
    state = comm.begin_job(job_id, keys, max_inflight=max_inflight)
    try:
        # Under profiling the job records into a node-local recorder
        # (pipeline stages and, via ``state.trace``, protocol spans);
        # its buffer ships to the coordinator with the final stats.
        state.trace = TraceRecorder(enabled=config.profiling)
        pipeline = NodePipeline(
            app,
            store,
            config,
            keys,
            pair_filter=pair_filter,
            emit_result=state.batcher.emit,
            node_id=node_id,
            rngs=RngFactory(config.seed + 7919 * (node_id + 1) + 104729 * job_id),
            trace=state.trace,
            job_id=job_id,
            expected_pairs=None,  # the coordinator decides when the run ends
            remote_fetch=(
                functools.partial(comm.remote_fetch, state)
                if (multi and cluster.distributed_cache)
                else None
            ),
            global_steal=functools.partial(comm.global_steal, state) if multi else None,
            initial_blocks=initial_blocks,
            engine=engine,
            max_inflight=max_inflight,
        )
        comm.attach(state, pipeline)
        if state.stopped.is_set():
            # The job was aborted while the hand-out was in flight.
            pipeline.request_stop(abort=state.remote_abort)
        pipeline.start()
        # Slightly above the coordinator's watchdog so the coordinator
        # reports the timeout first with full progress information.
        finished = pipeline.wait(config.watchdog_seconds + 30.0)
        state.batcher.flush()
        if pipeline.errors and not state.remote_abort:
            comm.send_job_error(state, _format_error(pipeline.errors[0]))
        elif not finished:
            comm.send_job_error(state, "node watchdog expired")
        pipeline.join(timeout=5.0)
        pipeline.close()  # engine-owned resources stay up
        comm.ship_stats(state, pipeline.stats())
    except BaseException:  # noqa: BLE001 - job-scoped last-resort report
        try:
            comm.send_job_error(state, traceback.format_exc())
        except Exception:
            pass
    finally:
        comm.end_job(state)


def _node_main(
    node_id: int,
    app: Application,
    store: FileStore,
    config: RocketConfig,
    cluster: ClusterConfig,
    fabric: TransportFabric,
    epoch: int = 0,
    live: Optional[Tuple[int, ...]] = None,
) -> None:
    """Entry point of one worker process (one simulated cluster node).

    Serves *concurrently active* jobs against one persistent
    :class:`~repro.runtime.pernode.NodeEngine`: each ``("job", ...)``
    message spawns a job thread running its own pipeline borrowed from
    the engine's devices and caches, so co-running and later jobs see
    the payloads earlier jobs loaded.  The process exits on
    ``("shutdown",)`` after the in-flight job threads drain.
    """
    transport = fabric.endpoint(node_id)
    try:
        comm = NodeCommServer(node_id, cluster, transport, epoch=epoch, live=live)
        engine = NodeEngine(
            config,
            node_id=node_id,
            device_prefix=f"n{node_id}.gpu",
            rngs=RngFactory(config.seed + 7919 * (node_id + 1)),
        )
        comm_thread = threading.Thread(target=comm.serve, name=f"comm{node_id}", daemon=True)
        comm_thread.start()
        job_threads: List[threading.Thread] = []
        while True:
            job = comm.next_job()
            if job is None:
                break
            thread = threading.Thread(
                target=_run_node_job,
                args=(comm, engine, app, store, config, cluster, job),
                name=f"n{node_id}.job{job[0]}",
                daemon=True,
            )
            thread.start()
            job_threads.append(thread)
            job_threads = [t for t in job_threads if t.is_alive()]
        for thread in job_threads:
            thread.join(timeout=config.watchdog_seconds + 60.0)
        engine.close()
        comm.finish()
        comm_thread.join(timeout=2.0)
        transport.close()
    except BaseException:  # noqa: BLE001 - last-resort report to the coordinator
        try:
            transport.send_coordinator(("error", node_id, None, traceback.format_exc()))
        except Exception:
            pass


# ----------------------------------------------------------------------
# Coordinator


class ClusterRocketRuntime(RocketBackend):
    """Run an all-pairs application across real OS processes.

    ``run(keys, pair_filter=None)`` (inherited) executes one workload
    through a one-shot session — spawn, run, tear down, exactly the
    pre-session behaviour; :meth:`open_session` returns a
    :class:`ClusterSession` whose worker processes, transport fabric
    and cache levels persist across many submitted workloads.
    """

    name = "cluster"

    def __init__(
        self,
        app: Application,
        store: FileStore,
        config: RocketConfig = RocketConfig(),
        cluster: ClusterConfig = ClusterConfig(),
    ) -> None:
        self.app = app
        self.store = store
        self.config = config
        self.cluster = cluster
        self.last_stats: Optional[ClusterRunStats] = None
        if cluster.transport not in available_transports():
            raise ValueError(
                f"unknown transport {cluster.transport!r}; "
                f"available: {', '.join(available_transports())}"
            )
        if cluster.node_speed_factors is not None:
            for node, speeds in enumerate(cluster.node_speed_factors):
                if len(speeds) != config.n_devices:
                    raise ValueError(
                        f"node {node}: {len(speeds)} speed factors for "
                        f"{config.n_devices} devices"
                    )

    def _node_configs(self) -> List[RocketConfig]:
        """Per-node RocketConfigs (heterogeneous speed overrides applied)."""
        import dataclasses

        if self.cluster.node_speed_factors is None:
            return [self.config] * self.cluster.n_nodes
        return [
            dataclasses.replace(self.config, device_speed_factors=tuple(speeds))
            for speeds in self.cluster.node_speed_factors
        ]

    def open_session(
        self, *, policy="fifo", max_active: Optional[int] = None
    ) -> "ClusterSession":
        """Spawn the worker processes and return the live session."""
        return ClusterSession(self, policy=policy, max_active=max_active)


class _ClusterJob:
    """One active job's coordinator-side state.

    Owns everything the coordinator tracks per job — initial shares,
    steal bookkeeping, completion counts, per-node reports — so the
    single serve loop can interleave any number of jobs by routing each
    job-tagged message here.
    """

    def __init__(self, session: "ClusterSession", handle: RunHandle) -> None:
        runtime = session._runtime
        cfg, cl = runtime.config, runtime.cluster
        self.session = session
        self.handle = handle
        self.job_id: int = handle.accounting.job_id
        workload = handle.workload
        self.keys = workload.keys
        self.pair_filter = workload.pair_filter
        self.total_pairs = workload.n_pairs
        self.n_items = workload.n_items

        self.node_speeds = session._node_speeds
        self.speed_aware = cfg.steal_policy is StealPolicy.SPEED
        #: Nodes this job is dispatched to: the live set at admission,
        #: grown by mid-job joins.  Dead/retired nodes stay members and
        #: move into ``forgiven_nodes`` so report accounting stays
        #: exact.
        self.participants: Set[int] = set(session._live)
        nodes = sorted(self.participants)
        blocks = workload.blocks()
        if self.speed_aware and len(nodes) > 1:
            # Speed-proportional initial partitioning: every node starts
            # with a share of the workload's block set matching its
            # aggregate speed instead of the first node holding
            # everything.
            node_shares = partition_blocks(
                blocks, [self.node_speeds[n] for n in nodes]
            )
        else:
            node_shares: List[List[PairBlock]] = [[] for _ in nodes]
            node_shares[0] = blocks
        self.shares: Dict[int, List[PairBlock]] = dict(zip(nodes, node_shares))

        # Accepted-pair counts per block, computed once and memoized by
        # block region: the workload seeds the map for its own blocks,
        # steal-time sub-blocks are swept at most once each.
        self._accepted_counts: Dict[Tuple[int, int, int, int], int] = {
            (b.row_lo, b.row_hi, b.col_lo, b.col_hi): c
            for b, c in zip(blocks, workload.block_counts())
        }
        self.selector = VictimSelector(
            session._topology, RngFactory(cfg.seed).get(f"cluster:steal:{self.job_id}")
        )
        self.pending_steals: Dict[Tuple[int, int], List[int]] = {}
        #: The victim each in-flight steal request is currently probing;
        #: a victim death advances the probe immediately instead of
        #: letting the thief wait out its steal timeout.
        self.probing: Dict[Tuple[int, int], int] = {}
        self.reports: Dict[int, NodeReport] = {}
        capacity = session._capacity
        # Estimated accepted pairs still owned by each node: the initial
        # share, plus/minus granted steals, minus streamed results.
        # Drives remaining-work victim ranking under the SPEED policy.
        self.assigned = [0] * capacity
        for n, share in self.shares.items():
            self.assigned[n] = sum(self.accepted_count(b) for b in share)
        self.completed_by = [0] * capacity
        #: Blocks each node is estimated to hold right now (initial
        #: share, moved by steal grants) — the recovery source when a
        #: node dies or retires mid-job.  Over-inclusion is safe (the
        #: dedupe filter drops re-executed pairs); under-inclusion
        #: would lose pairs, so blocks only leave a node's list when a
        #: grant provably moved them.
        self.owned: Dict[int, List[PairBlock]] = {
            n: list(share) for n, share in self.shares.items()
        }
        #: Coordinator-side exactly-once filter (elastic sessions only):
        #: recovery re-executes whole blocks, so duplicated results must
        #: not double-stream to the handle or double-count completion.
        self.done_pairs: Optional[Set[Tuple[int, int]]] = (
            set() if session._elastic else None
        )
        self.completed = 0
        self.remote_steals = 0
        self.error: Optional[str] = None
        self.cancelled = False
        self.stopped = False
        self.started = time.perf_counter()
        self.deadline = self.started + cfg.watchdog_seconds
        #: Set when the stop broadcast goes out: the job must collect
        #: its remaining stats reports before this wall-clock moment or
        #: the session is marked dead (a node that neither reports nor
        #: dies leaves the protocol state unknowable).
        self.report_deadline: Optional[float] = None
        #: Nodes that died after this job completed cleanly: their
        #: stats report is forgiven instead of failing the session.
        self.forgiven_nodes: Set[int] = set()

    # -- bookkeeping helpers ---------------------------------------------

    def accepted_count(self, block: PairBlock) -> int:
        """Pairs of ``block`` that survive the filter (all, if none).

        The filter sweep only pays off for the SPEED policy's
        remaining-work estimate; UNIFORM runs never read it, so they
        get the O(1) raw count.
        """
        if self.pair_filter is None or not self.speed_aware:
            return block.count
        region = (block.row_lo, block.row_hi, block.col_lo, block.col_hi)
        count = self._accepted_counts.get(region)
        if count is None:
            keys = self.keys
            count = sum(
                1 for i, j in block.pairs() if self.pair_filter(keys[i], keys[j])
            )
            self._accepted_counts[region] = count
        return count

    def reports_complete(self) -> bool:
        return all(
            i in self.reports or i in self.forgiven_nodes for i in self.participants
        )

    # -- protocol actions ------------------------------------------------

    def broadcast_stop(self, abort: bool) -> None:
        self.stopped = True
        if self.report_deadline is None:
            self.report_deadline = time.perf_counter() + 15.0
        for node in self.participants:
            try:
                self.session._fabric.send_node(node, ("stop", self.job_id, abort))
            except Exception:
                pass  # a crashed node's queue may already be broken

    def victim_order(self, thief: int) -> List[int]:
        """Remote-node probe order for a steal request.

        UNIFORM: the global VictimSelector tier (randomized,
        locality-aware).  SPEED: the same candidate set re-ranked by
        estimated remaining work, so the most-backlogged node is
        probed first instead of a uniformly random one.  Dead,
        retired and non-participating nodes are excluded at the
        selector so a thief's probe can never park on a victim that
        will not answer.
        """
        cfg = self.session._runtime.config
        topology = self.session._topology
        live = self.session._live
        excluded = frozenset(
            w
            for w, node in enumerate(topology.node_of)
            if node not in live
            or node not in self.participants
            or node in self.forgiven_nodes
        )
        order: List[int] = []
        for w in self.selector.candidates(thief * cfg.n_devices, exclude=excluded):
            node = topology.node_of[w]
            if node != thief and node not in order:
                order.append(node)
        if self.speed_aware:
            # Remaining *time*, not pairs: a slow node with half the
            # backlog of a fast one may still be the bigger straggler.
            order.sort(
                key=lambda v: (
                    max(0, self.assigned[v] - self.completed_by[v])
                    / self.node_speeds[v]
                ),
                reverse=True,
            )
        return order

    def grant(
        self, thief: int, req_id: int, block: Optional[PairBlock], count: int = 0
    ) -> None:
        if block is not None and thief not in self.session._live:
            # The thief died between its request and this grant: the
            # block would be stranded in a dead inbox.  Hand it to a
            # surviving node instead (the thief's own death handling
            # reclaims whatever it already held).
            self.reinject_block(block)
            return
        try:
            self.session._fabric.send_node(
                thief, ("sgrant", self.job_id, req_id, block)
            )
        except Exception:
            if block is not None:
                raise  # a lost granted block would strand its pairs
            return
        if block is not None:
            self.remote_steals += 1
            self.assigned[thief] += count
            self.owned.setdefault(thief, []).append(block)

    def advance_steal(self, key: Tuple[int, int]) -> None:
        thief, req_id = key
        victims = self.pending_steals[key]
        live = self.session._live
        while victims:
            victim = victims.pop(0)
            if victim not in live:
                continue  # died since the order was computed
            self.probing[key] = victim
            self.session._fabric.send_node(
                victim, ("sprobe", self.job_id, thief, req_id)
            )
            return
        del self.pending_steals[key]
        self.probing.pop(key, None)
        self.grant(thief, req_id, None)

    def record_result(self, i: int, j: int, value: Any) -> None:
        if self.done_pairs is not None:
            # Exactly-once: recovery re-executes whole blocks, so a
            # pair may be computed twice — only the first result
            # streams to the handle and counts toward completion.
            if (i, j) in self.done_pairs:
                return
            self.done_pairs.add((i, j))
        self.handle._record(i, j, value)
        self.completed += 1
        if self.handle.accounting is not None:
            self.handle.accounting.pairs_completed += 1
        if self.completed == self.total_pairs and not self.stopped:
            self.broadcast_stop(False)

    def fail(self, text: str) -> None:
        if self.error is None:
            self.error = text
        if not self.stopped:
            self.broadcast_stop(True)

    # -- elastic recovery ------------------------------------------------

    def _subtract_owned(self, node: int, block: PairBlock) -> None:
        """Remove ``block`` from ``node``'s ownership estimate.

        A steal grant ships an exact block the victim reported, which
        is either one of the blocks we track for it or a descendant
        produced by the victim's local quadtree splits.  Exact match
        pops the entry; otherwise we descend: split the containing
        tracked block the same way the quadtree does, drop the child
        matching the grant, keep the siblings.  If the region cannot
        be aligned we leave the tracked block alone — over-inclusion
        only costs duplicated (deduped) work on recovery, while
        removing too much would lose pairs.
        """
        owned = self.owned.get(node)
        if not owned:
            return
        region = (block.row_lo, block.row_hi, block.col_lo, block.col_hi)
        for k, b in enumerate(owned):
            if (b.row_lo, b.row_hi, b.col_lo, b.col_hi) == region:
                owned.pop(k)
                return
        # Quadtree descent from the containing tracked block.
        for k, b in enumerate(owned):
            if (
                b.row_lo <= block.row_lo
                and b.row_hi >= block.row_hi
                and b.col_lo <= block.col_lo
                and b.col_hi >= block.col_hi
            ):
                container = owned.pop(k)
                for _ in range(64):  # bound descent on misaligned regions
                    if (
                        container.row_lo,
                        container.row_hi,
                        container.col_lo,
                        container.col_hi,
                    ) == region:
                        return  # exact child found and dropped
                    if container.is_leaf():
                        owned.append(container)  # misaligned: keep whole
                        return
                    next_container = None
                    for child in container.split():
                        if (
                            child.row_lo <= block.row_lo
                            and child.row_hi >= block.row_hi
                            and child.col_lo <= block.col_lo
                            and child.col_hi >= block.col_hi
                        ):
                            next_container = child
                        else:
                            owned.append(child)
                    if next_container is None:
                        return  # grant straddles children: siblings kept
                    container = next_container
                owned.append(container)
                return

    def reinject_block(self, block: PairBlock, exclude: Set[int] = frozenset()) -> int:
        """Queue ``block`` onto a live participant via the late-grant path.

        Returns the target node, or -1 if no live participant is left
        (the caller fails the job).  Targets the least-loaded live
        node by the remaining-work estimate so recovery does not pile
        onto one survivor.
        """
        targets = [
            n
            for n in self.participants
            if n in self.session._live
            and n not in self.forgiven_nodes
            and n not in exclude
        ]
        if not targets:
            return -1
        target = min(targets, key=lambda n: self.assigned[n] - self.completed_by[n])
        count = self.accepted_count(block)
        # req_id -1: no pending on the node side — routes through the
        # same inject path as a late steal grant.
        self.session._fabric.send_node(target, ("sgrant", self.job_id, -1, block))
        self.assigned[target] += count
        self.owned.setdefault(target, []).append(block)
        return target

    def _block_remaining(self, block: PairBlock) -> bool:
        """True if any accepted pair of ``block`` lacks a recorded result."""
        done = self.done_pairs
        if done is None:
            return True
        keys, flt = self.keys, self.pair_filter
        for i, j in block.pairs():
            if flt is not None and not flt(keys[i], keys[j]):
                continue
            if (i, j) not in done:
                return True
        return False

    def recover_node(self, node: int, *, voluntary: bool = False) -> int:
        """Reclaim a dead/retiring node's unfinished blocks and re-enqueue.

        Returns the number of pairs re-injected.  The node is marked
        forgiven (its stats report is no longer awaited) and all steal
        probes parked on it are advanced immediately.
        """
        self.forgiven_nodes.add(node)
        blocks = self.owned.pop(node, [])
        reinjected_pairs = 0
        lost = False
        for block in blocks:
            if not self._block_remaining(block):
                continue  # every accepted pair already streamed back
            if self.reinject_block(block, exclude={node}) < 0:
                lost = True
                break
            reinjected_pairs += self.accepted_count(block)
        # Steal requests probing the dead victim would otherwise wait
        # out the watchdog; advance them to the next candidate now.
        for key, victim in list(self.probing.items()):
            if victim == node and key in self.pending_steals:
                self.advance_steal(key)
        if self.handle.accounting is not None:
            if not voluntary:
                self.handle.accounting.nodes_lost += 1
            self.handle.accounting.pairs_recovered += reinjected_pairs
        if lost:
            self.fail(f"node {node} died and no live node remains to take over")
        return reinjected_pairs


class ClusterSession(BackendSession):
    """A live multi-process execution context.

    Spawns one worker process per node plus the transport fabric
    *once*; submitted workloads are then dispatched as job-tagged
    protocol exchanges and multiplexed by a single coordinator thread.
    The :class:`~repro.core.scheduler.JobScheduler` orders admission —
    serially under the default FIFO policy, concurrently (priority
    first) under FAIR — and the nodes interleave the active jobs' pair
    streams on their shared engines, so a small high-priority query
    no longer waits for a large job to finish.  Between and during
    jobs the nodes keep their device/host caches (and the processes
    and kernel threads themselves) warm.  :meth:`close` ends the node
    processes and unlinks every shared resource; a node crash marks
    the whole session dead (submissions then fail fast) but never
    leaks processes or ``/dev/shm`` segments.
    """

    def __init__(
        self,
        runtime: ClusterRocketRuntime,
        policy="fifo",
        max_active: Optional[int] = None,
    ) -> None:
        self._runtime = runtime
        cfg, cl = runtime.config, runtime.cluster
        try:
            ctx = multiprocessing.get_context(cl.start_method)
        except ValueError as exc:
            raise RuntimeError(
                f"multiprocessing start method {cl.start_method!r} unavailable "
                f"on this platform"
            ) from exc
        self._ctx = ctx
        self._node_cfgs = runtime._node_configs()
        capacity = cl.capacity
        self._capacity = capacity
        self._elastic = cl.elastic
        # Slots beyond the initial node set (joinable under elastic
        # membership) run the base config at the base speed.
        self._node_speeds = [c.aggregate_speed for c in self._node_cfgs] + [
            cfg.aggregate_speed
        ] * (capacity - cl.n_nodes)
        self._topology = WorkerTopology.from_gpus_per_node(
            [cfg.n_devices] * capacity
        )
        #: Membership: monotonically-versioned epoch, the live node set,
        #: and the disjoint dead/retired sets.  Only the coordinator
        #: thread mutates these; nodes learn of changes via the
        #: ``("epoch", epoch, live)`` broadcast.
        self._epoch = 0
        self._live: Set[int] = set(range(cl.n_nodes))
        self._dead: Set[int] = set()
        self._retired: Set[int] = set()
        self._next_slot = cl.n_nodes
        #: Membership commands (add/retire) enqueued by user threads and
        #: executed on the coordinator thread, where all job state lives.
        self._control: "queue.Queue[Tuple]" = queue.Queue()
        self._fabric = create_fabric(cl.transport, ctx, cl)
        self._procs: List = [
            ctx.Process(
                target=_node_main,
                args=(
                    i, runtime.app, runtime.store, self._node_cfgs[i], cl,
                    self._fabric, 0, tuple(range(cl.n_nodes)),
                ),
                name=f"rocket-node{i}",
                daemon=True,
            )
            for i in range(cl.n_nodes)
        ]
        self.policy = coerce_policy(policy)
        self._scheduler = JobScheduler(self.policy, max_active=max_active)
        self._active: Dict[int, _ClusterJob] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._fatal: Optional[str] = None
        #: Session-lifetime observability.  The coordinator's own trace
        #: holds scheduler-lane spans; node trace buffers (shipped in
        #: the job-tagged stats reports) are kept as
        #: ``(name, pid, origin, events)`` until profile() merges them.
        self._trace = TraceRecorder(enabled=cfg.profiling)
        self._metrics = MetricsRegistry()
        self._job_records: Deque[Dict[str, object]] = deque(maxlen=64)
        self._node_traces: Deque[Tuple[str, int, float, List]] = deque(maxlen=256)
        self._log = get_logger("cluster.coordinator")
        self._log.info(
            "session open: %d node processes, transport=%s", cl.n_nodes, cl.transport
        )
        try:
            for p in self._procs:
                p.start()
            self._thread = threading.Thread(
                target=self._serve, name="rocket-cluster-session", daemon=True
            )
            self._thread.start()
        except BaseException:
            # Startup failed (e.g. an unpicklable app under the "spawn"
            # start method): the session object never reaches the
            # caller, so close() is unreachable — tear down the already
            # started processes and the fabric's shared segments here.
            for p in self._procs:
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=2.0)
            self._fabric.shutdown()
            raise

    # ------------------------------------------------------------------

    def submit(
        self,
        workload: Workload,
        *,
        priority: float = 1.0,
        max_inflight: Optional[int] = None,
    ) -> RunHandle:
        """Queue a workload; returns its handle immediately (QUEUED).

        Validates up front — before anything is dispatched — that the
        workload's keys and pair filter can be pickled onto the job
        message: a lambda or closure predicate would otherwise only
        crash inside a worker process, far from the caller.
        """
        with self._lock:
            if self._closed:
                raise SessionClosed("session is closed")
            if self._fatal is not None:
                raise RuntimeError(f"session is dead: {self._fatal}")
        # Heavy per-workload work — pickling, the handle's accepted-pair
        # sweep — runs outside the session lock, so the coordinator loop
        # (which takes it every iteration) keeps pumping co-running
        # jobs' messages while a large submission prepares.
        self._runtime.app.validate_keys(workload.keys)
        try:
            pickle.dumps((workload.keys, workload.pair_filter))
        except Exception as exc:
            raise ValueError(
                f"workload cannot be shipped to the cluster workers "
                f"({exc}); keys and pair filters must be picklable — "
                f"define filter predicates at module level, not as "
                f"lambdas or closures"
            ) from None
        handle = RunHandle(workload, priority=priority, max_inflight=max_inflight)
        self._scheduler.submit(handle)
        with self._lock:
            if self._closed or self._fatal is not None:
                # close()/fatal raced the preparation and their drain
                # missed this handle: resolve it here (the queued-cancel
                # hook is synchronous) and report the session state.
                handle.cancel()
                if self._closed:
                    raise SessionClosed("session is closed")
                raise RuntimeError(f"session is dead: {self._fatal}")
        return handle

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop the workers, join the processes, unlink shared state.

        The first caller performs the teardown; any other ``close()``
        — a double close, or a second thread racing this one — raises
        :class:`~repro.core.session.SessionClosed` instead of running
        the worker shutdown and fabric unlink twice.
        """
        with self._lock:
            if self._closed:
                raise SessionClosed("session is already closed")
            self._closed = True
            handles = self._scheduler.queued_handles() + self._scheduler.active_handles()
        for handle in handles:
            # Queued handles resolve synchronously through their cancel
            # hook; active ones abort through the coordinator poll.
            handle.cancel()
        self._thread.join(timeout=60.0)
        for handle in handles:
            # Belt and braces: whatever the coordinator loop missed (a
            # wedged or dead serve thread, a handle admitted between the
            # drain and the join) must still resolve — wait() may never
            # hang on a closed session.
            if not handle.done():
                handle._finish(RunState.CANCELLED)
        for node in range(self._next_slot):
            try:
                self._fabric.send_node(node, ("shutdown",))
            except Exception:
                pass  # a crashed node's queue may already be broken
        for p in self._procs:
            p.join(timeout=5.0)
        for p in self._procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=2.0)
        # Tears down queues and unlinks shared segments — runs on every
        # exit path, so a crashed node cannot leak /dev/shm entries.
        self._fabric.shutdown()

    # -- elastic membership ----------------------------------------------

    def _require_elastic(self) -> None:
        if not self._elastic:
            raise RuntimeError(
                "membership changes need ClusterConfig(elastic=True)"
            )
        with self._lock:
            if self._closed:
                raise SessionClosed("session is closed")
            if self._fatal is not None:
                raise RuntimeError(f"session is dead: {self._fatal}")

    def add_node(self) -> int:
        """Spawn a new worker and enroll it in the live session.

        The node joins active jobs with an empty initial share — the
        steal plane pulls work onto it — and registers in every job's
        candidate directories as cache state builds.  Returns the new
        node id.  Runs on the coordinator thread (all job state lives
        there); this call blocks until the join is effective.
        """
        self._require_elastic()
        box: Dict[str, Any] = {}
        event = threading.Event()
        self._control.put(("add", None, True, box, event))
        if not event.wait(timeout=60.0):
            raise RuntimeError("add_node timed out waiting for the coordinator")
        if "error" in box:
            raise box["error"]
        return box["result"]

    def retire_node(self, node: Optional[int] = None, *, drain: bool = True) -> int:
        """Remove a worker from the live session without losing pairs.

        The node's unfinished blocks are re-injected onto the surviving
        nodes (results it already streamed are kept; any overlap is
        deduplicated), membership is re-announced under a new epoch,
        and the worker process is shut down and joined.  ``node=None``
        retires the highest-numbered live node.  ``drain=False`` skips
        waiting for the worker process to exit.
        """
        self._require_elastic()
        box: Dict[str, Any] = {}
        event = threading.Event()
        self._control.put(("retire", node, drain, box, event))
        if not event.wait(timeout=60.0):
            raise RuntimeError("retire_node timed out waiting for the coordinator")
        if "error" in box:
            raise box["error"]
        node = box["result"]
        proc = self._procs[node]
        proc.join(timeout=15.0 if drain else 0.1)
        if proc.is_alive() and drain:
            proc.terminate()
            proc.join(timeout=2.0)
        self._fabric.release_node_segment(node)
        return node

    def _bump_epoch(self) -> None:
        """Advance membership and announce it to every live node."""
        self._epoch += 1
        live = tuple(sorted(self._live))
        for node in live:
            try:
                self._fabric.send_node(node, ("epoch", self._epoch, live))
            except Exception:
                pass  # a dying node's queue may already be broken

    def _do_control(self, cmd: Tuple) -> None:
        """Execute one membership command on the coordinator thread."""
        kind, node, drain, box, event = cmd
        try:
            if kind == "add":
                box["result"] = self._do_add_node()
            else:
                box["result"] = self._do_retire_node(node, drain)
        except BaseException as exc:  # noqa: BLE001 - delivered to caller
            box["error"] = exc
        finally:
            event.set()

    def _do_add_node(self) -> int:
        runtime = self._runtime
        cl = runtime.cluster
        if self._next_slot >= self._capacity:
            raise RuntimeError(
                f"cluster is at capacity ({self._capacity} node slots); "
                f"raise ClusterConfig(max_nodes=...)"
            )
        node = self._next_slot
        self._next_slot += 1
        live = tuple(sorted(self._live | {node}))
        proc = self._ctx.Process(
            target=_node_main,
            args=(
                node, runtime.app, runtime.store, runtime.config, cl,
                self._fabric, self._epoch + 1, live,
            ),
            name=f"rocket-node{node}",
            daemon=True,
        )
        proc.start()
        self._procs.append(proc)  # index == node id, always
        self._live.add(node)
        self._bump_epoch()
        # Enroll into jobs already in flight: an empty share makes the
        # node a steal target/thief and a cache peer immediately.
        for job in self._active.values():
            if job.stopped:
                continue
            job.participants.add(node)
            packed = self._fabric.pack_job_payload(
                (job.keys, job.pair_filter, [])
            )
            self._fabric.send_node(
                node, ("job", job.job_id, packed, job.handle.max_inflight)
            )
        self._log.info("node joined", node=node, epoch=self._epoch)
        return node

    def _do_retire_node(self, node: Optional[int], drain: bool) -> int:
        if node is None:
            node = max(self._live)
        if node not in self._live:
            raise RuntimeError(f"node {node} is not a live cluster member")
        if len(self._live) == 1:
            raise RuntimeError("cannot retire the last live node")
        self._live.discard(node)
        self._retired.add(node)
        for job in list(self._active.values()):
            if node not in job.participants or node in job.forgiven_nodes:
                continue
            if node in job.reports:
                continue  # already finished its part
            job.recover_node(node, voluntary=True)
            try:
                self._fabric.send_node(node, ("stop", job.job_id, True))
            except Exception:
                pass
        self._bump_epoch()
        try:
            self._fabric.send_node(node, ("shutdown",))
        except Exception:
            pass
        self._log.info("node retired", node=node, epoch=self._epoch)
        return node

    # ------------------------------------------------------------------

    def _serve(self) -> None:
        """The coordinator loop: admission, routing, per-job lifecycle."""
        cl = self._runtime.cluster
        fabric = self._fabric
        while True:
            # 0. Membership commands from user threads run here, on the
            #    coordinator thread, where all job state lives.
            while True:
                try:
                    cmd = self._control.get_nowait()
                except queue.Empty:
                    break
                self._do_control(cmd)
            # 1. Admit queued jobs (policy order) into the active set.
            if self._fatal is None:
                for handle in self._scheduler.admit():
                    try:
                        self._start_job(handle)
                    except BaseException as exc:  # noqa: BLE001
                        self._scheduler.finish(handle)
                        if not handle.done():
                            handle._finish(RunState.FAILED, error=exc)
            # 2. Pump the message queue (bounded burst per tick).
            msg = fabric.recv_coordinator(cl.poll_interval)
            saw_message = msg is not None
            drained = 0
            while msg is not None:
                try:
                    self._dispatch(msg)
                except BaseException as exc:  # noqa: BLE001 - must survive
                    self._mark_fatal(f"coordinator dispatch failed: {exc!r}")
                    break
                drained += 1
                if drained >= 256:
                    break
                msg = fabric.recv_coordinator(0.001)
            # 3. Per-job upkeep: cancellation, watchdog, finalization.
            now = time.perf_counter()
            for job in list(self._active.values()):
                self._poll_job(job, now)
            # 4. Process-death detection (only on idle ticks, mirroring
            #    the message-priority rule: in-flight error/stats
            #    messages beat the generic crash report).
            if not saw_message and self._fatal is None:
                self._check_dead_nodes()
            if self._fatal is not None and self._active:
                self._fail_active(f"cluster session is dead: {self._fatal}")
            with self._lock:
                if self._closed and not self._active and self._scheduler.idle:
                    return
                if self._fatal is not None and not self._active:
                    self._scheduler.fail_all(
                        lambda: RuntimeError(f"cluster session is dead: {self._fatal}")
                    )
                    return

    def _start_job(self, handle: RunHandle) -> None:
        """Dispatch one admitted job's shares to every node."""
        job = _ClusterJob(self, handle)
        self._active[job.job_id] = job
        self._scheduler.mark_fully_granted(handle)
        handle._mark_running(cancel_cb=None)  # cancellation is polled
        acct = handle.accounting
        if self._trace.enabled and acct is not None:
            now = self._trace.now()
            self._trace.record(
                "scheduler", "queued",
                max(0.0, now - acct.queued_seconds), now, job.job_id,
            )
        self._log.info("job dispatched", job_id=job.job_id)
        try:
            for node in sorted(job.participants):
                # Each node's spec goes through the fabric's dispatch
                # plane: inline on the queue transport, a shared-segment
                # descriptor on shm — the message stays tiny either way.
                packed = self._fabric.pack_job_payload(
                    (job.keys, job.pair_filter, job.shares.get(node, []))
                )
                self._fabric.send_node(
                    node, ("job", job.job_id, packed, handle.max_inflight)
                )
        except BaseException:
            # Partial dispatch: abort whatever did go out, then surface
            # the submission failure to the caller.
            job.broadcast_stop(True)
            del self._active[job.job_id]
            raise

    def _dispatch(self, msg: Tuple) -> None:
        """Route one job-tagged coordinator message."""
        kind = msg[0]
        if kind == "results":
            _, node, job_id, block = msg
            block = self._fabric.decode_result_block(block)
            job = self._active.get(job_id)
            if job is None:
                return  # stragglers of a finalized job
            job.completed_by[node] += len(block)
            for i, j, value in block:
                job.record_result(i, j, value)
        elif kind == "sreq":
            _, job_id, thief, req_id = msg
            job = self._active.get(job_id)
            if job is None or job.stopped:
                try:
                    self._fabric.send_node(thief, ("sgrant", job_id, req_id, None))
                except Exception:
                    pass
            else:
                job.pending_steals[(thief, req_id)] = job.victim_order(thief)
                job.advance_steal((thief, req_id))
        elif kind == "srep":
            _, job_id, victim, thief, req_id, block = msg
            job = self._active.get(job_id)
            if job is None:
                return  # the job is gone; its nodes were stopped already
            key = (thief, req_id)
            if job.stopped and key not in job.pending_steals:
                return  # the job ended while this probe was in flight
            if block is not None:
                moved = job.accepted_count(block)
                job.assigned[victim] = max(0, job.assigned[victim] - moved)
                job.pending_steals.pop(key, None)
                job.probing.pop(key, None)
                # The grant provably moved this region off the victim:
                # keep the recovery ownership map exact.
                job._subtract_owned(victim, block)
                job.grant(thief, req_id, block, moved)
            elif key in job.pending_steals:
                job.advance_steal(key)
        elif kind == "error":
            _, node, job_id, text = msg
            if job_id is None:
                # Process-level failure: no job framing survives it.
                self._mark_fatal(f"node {node}: {text}")
                return
            job = self._active.get(job_id)
            if job is not None:
                job.fail(f"node {node}: {text}")
        elif kind == "stats":
            _, node, job_id, report = msg
            job = self._active.get(job_id)
            if job is not None:
                job.reports[node] = report
        elif kind == "pfree":
            # A node finished reading a job dispatch payload; return the
            # coordinator-segment slot to the fabric's pool.
            self._fabric.handle_free(msg)
        else:
            raise AssertionError(f"unknown coordinator message {kind!r}")

    def _poll_job(self, job: _ClusterJob, now: float) -> None:
        """One job's lifecycle tick: cancel, watchdog, finalize."""
        if job.handle.cancel_requested and not job.stopped:
            job.cancelled = True
            job.broadcast_stop(True)
        if not job.stopped and now > job.deadline:
            cfg = self._runtime.config
            job.fail(
                f"cluster run did not finish within "
                f"watchdog_seconds={cfg.watchdog_seconds}; "
                f"completed {job.completed}/{job.total_pairs} pairs"
            )
        if job.stopped or job.error is not None:
            if job.reports_complete():
                del self._active[job.job_id]
                self._scheduler.finish(job.handle)
                try:
                    self._finalize(job)
                except BaseException as exc:  # noqa: BLE001
                    if not job.handle.done():
                        job.handle._finish(RunState.FAILED, error=exc)
            elif job.report_deadline is not None and now > job.report_deadline:
                missing = sorted(
                    i
                    for i in job.participants
                    if i not in job.reports and i not in job.forgiven_nodes
                )
                self._mark_fatal(
                    f"nodes {missing} never reported after job {job.job_id} ended"
                )

    def _check_dead_nodes(self) -> None:
        """Handle worker-process death: forgive clean jobs, else fatal.

        Elastic sessions instead evict the dead node from membership
        and re-enqueue its unfinished blocks (:meth:`_recover_dead_node`)
        — only losing the *last* node is fatal.
        """
        if self._elastic:
            self._check_dead_nodes_elastic()
            return
        dead = [
            (i, p) for i, p in enumerate(self._procs) if not p.is_alive()
        ]
        if not dead:
            return
        # Give any in-flight error/stats messages priority over the
        # generic crash report.
        self._drain_late_messages()
        for i, p in dead:
            for job in list(self._active.values()):
                if i in job.reports or i in job.forgiven_nodes:
                    continue
                if job.stopped and job.error is None and job.completed == job.total_pairs:
                    # All pairs are in: a node that died after the stop
                    # broadcast only costs its stats report.
                    job.forgiven_nodes.add(i)
                else:
                    self._mark_fatal(
                        f"node {i} died unexpectedly (exit code {p.exitcode}) "
                        f"with {job.completed}/{job.total_pairs} pairs of "
                        f"job {job.job_id} completed"
                    )
                    return
            # Forgiven on every job: reclaim the dead node's payload
            # segments now instead of holding them until session close.
            self._fabric.release_node_segment(i)
        if not self._active and self._fatal is None:
            # No job was running: the session still cannot execute
            # future jobs with a node missing.
            i, p = dead[0]
            self._mark_fatal(
                f"node {i} died unexpectedly (exit code {p.exitcode})"
            )

    def _drain_late_messages(self) -> None:
        """Pump straggler messages before acting on a process death."""
        for _ in range(256):
            late = self._fabric.recv_coordinator(0.001)
            if late is None:
                break
            try:
                self._dispatch(late)
            except BaseException:
                break

    def _check_dead_nodes_elastic(self) -> None:
        """Elastic death handling: evict, recover blocks, re-announce."""
        dead = [
            (i, self._procs[i])
            for i in sorted(self._live)
            if not self._procs[i].is_alive()
        ]
        if not dead:
            return
        # In-flight results beat the crash report: anything the dead
        # node streamed before dying shrinks the recovery set.
        self._drain_late_messages()
        for i, p in dead:
            self._log.warning(
                "node %d died (exit code %s): recovering", i, p.exitcode
            )
            self._live.discard(i)
            self._dead.add(i)
            for job in list(self._active.values()):
                if (
                    i not in job.participants
                    or i in job.reports
                    or i in job.forgiven_nodes
                ):
                    continue
                if (
                    (job.stopped and job.error is None and job.completed == job.total_pairs)
                    or job.cancelled
                    or job.error is not None
                ):
                    # Nothing left to recover — only its report is owed.
                    job.forgiven_nodes.add(i)
                    continue
                recovered = job.recover_node(i)
                self._log.info(
                    "job %d: re-injected %d pairs owned by dead node %d",
                    job.job_id, recovered, i,
                )
            self._fabric.release_node_segment(i)
        if not self._live:
            self._mark_fatal("all cluster nodes died")
            return
        self._bump_epoch()
        for job in list(self._active.values()):
            if job.stopped or job.error is not None:
                continue
            if not any(
                n in self._live and n not in job.forgiven_nodes
                for n in job.participants
            ):
                job.fail("every node running this job died")

    def _mark_fatal(self, text: str) -> None:
        if self._fatal is None:
            self._fatal = text
            self._log.error("session fatal: %s", text)

    def _fail_active(self, text: str) -> None:
        """Resolve every active job after the session died."""
        for job in list(self._active.values()):
            if not job.stopped:
                # Best-effort abort so surviving nodes stop burning CPU
                # on a job whose consumer is gone, instead of running
                # until their own watchdogs expire.
                job.broadcast_stop(True)
            del self._active[job.job_id]
            self._scheduler.finish(job.handle)
            if not job.handle.done():
                job.handle._finish(
                    RunState.FAILED, error=RuntimeError(text)
                )

    def _finalize(self, job: _ClusterJob) -> None:
        """Resolve a job whose nodes all reported (or were forgiven)."""
        cl = self._runtime.cluster
        cfg = self._runtime.config
        handle = job.handle
        runtime_s = time.perf_counter() - job.started

        if self._trace.enabled:
            self._trace.record(
                "scheduler", "run",
                max(0.0, job.started - self._trace.origin),
                self._trace.now(), job.job_id,
            )
            # Stash the node buffers (whatever arrived — failed jobs
            # keep their partial reports) for profile() to merge.
            for i in sorted(job.reports):
                ns = job.reports[i].stats
                if ns.trace_events:
                    self._node_traces.append(
                        (f"node{i}", ns.pid, ns.trace_origin, ns.trace_events)
                    )
        acct = handle.accounting
        if acct is not None:
            self._job_records.append(acct.to_dict())
            self._metrics.observe("scheduler.grant_latency_seconds", acct.queued_seconds)
        if job.cancelled:
            self._metrics.inc("jobs.cancelled")
            self._log.info("job cancelled", job_id=job.job_id)
            handle._finish(RunState.CANCELLED)
            return
        if job.error is not None:
            self._metrics.inc("jobs.failed")
            self._log.warning("job failed: %s", job.error, job_id=job.job_id)
            handle._finish(
                RunState.FAILED,
                error=RuntimeError(f"cluster run failed: {job.error}"),
            )
            return
        if job.completed != job.total_pairs:
            self._metrics.inc("jobs.failed")
            handle._finish(
                RunState.FAILED,
                error=RuntimeError(
                    f"cluster run ended with {job.completed}/{job.total_pairs} "
                    f"results — scheduler bug"
                ),
            )
            return

        hop_stats = HopStats(cl.max_hops)
        node_stats: List[NodeStats] = []
        message_kinds = {k: 0 for k in MESSAGE_KINDS}
        calibration = StageCalibration()
        loads = bytes_over_wire = messages = 0
        for i in sorted(job.reports):
            rep = job.reports[i]
            node_stats.append(rep.stats)
            loads += rep.stats.loads
            calibration.merge(rep.stats.calibration)
            for k in range(cl.max_hops):
                hop_stats.hits_at_hop[k] += rep.hops.hits_at_hop[k]
            hop_stats.misses += rep.hops.misses
            hop_stats.no_candidates += rep.hops.no_candidates
            bytes_over_wire += rep.bytes_shipped
            messages += rep.messages
            for kind, count in rep.message_kinds.items():
                message_kinds[kind] = message_kinds.get(kind, 0) + count

        participants = sorted(job.participants)
        aggregate_speed = float(sum(self._node_speeds[n] for n in participants))
        reuse = loads / job.n_items
        model = calibration.model(
            n_items=job.n_items,
            aggregate_speed=aggregate_speed,
            cpu_cores=cfg.cpu_workers * len(participants),
        )
        stats = ClusterRunStats(
            runtime=runtime_s,
            n_items=job.n_items,
            n_pairs=job.total_pairs,
            n_nodes=len(participants),
            loads=loads,
            reuse_factor=reuse,
            throughput=job.total_pairs / runtime_s if runtime_s > 0 else 0.0,
            node_stats=node_stats,
            hop_stats=hop_stats,
            remote_steals=job.remote_steals,
            bytes_over_wire=bytes_over_wire,
            messages=messages,
            message_kinds=message_kinds,
            transport=cl.transport,
            aggregate_speed=aggregate_speed,
            calibration=calibration,
            predicted_runtime=model.predicted_runtime(max(1.0, reuse)),
            model_efficiency=model.efficiency(runtime_s) if runtime_s > 0 else 0.0,
        )
        self._absorb_stats(stats)
        self._log.info("job done", job_id=job.job_id)
        self._runtime.last_stats = stats
        handle._finish(RunState.DONE, stats=stats)

    def _absorb_stats(self, stats: ClusterRunStats) -> None:
        """Fold one finished job's counters into the session registry."""
        m = self._metrics
        m.inc("jobs.completed")
        m.observe("jobs.runtime_seconds", stats.runtime)
        m.inc("pairs.completed", stats.n_pairs)
        m.inc("pipeline.loads", stats.loads)
        local_steals = 0
        for ns in stats.node_stats:
            m.inc("pipeline.io_bytes", ns.io_bytes)
            m.inc("pipeline.h2d_bytes", ns.h2d_bytes)
            m.inc("pipeline.d2h_bytes", ns.d2h_bytes)
            for level, counters in (
                ("device", ns.device_counters),
                ("host", ns.host_counters),
            ):
                m.inc(f"cache.{level}.hits", counters.hits + counters.hits_while_writing)
                m.inc(f"cache.{level}.misses", counters.misses)
                m.inc(f"cache.{level}.evictions", counters.evictions)
            m.inc("cache.persistent.hits", ns.persist_hits)
            m.inc("cache.persistent.misses", ns.persist_misses)
            m.inc("cache.persistent.stores", ns.persist_stores)
            m.inc("cache.persistent.bytes_read", ns.persist_bytes_read)
            m.inc("cache.persistent.bytes_written", ns.persist_bytes_written)
            local_steals += ns.local_steals
        m.inc("steal.local", local_steals)
        m.inc("steal.remote_grants", stats.remote_steals)
        m.inc("cache.distributed.hits", stats.hop_stats.total_hits)
        m.inc(
            "cache.distributed.misses",
            stats.hop_stats.misses + stats.hop_stats.no_candidates,
        )
        m.inc("transport.bytes", stats.bytes_over_wire)
        m.inc("transport.messages", stats.messages)
        for kind, count in stats.message_kinds.items():
            m.inc(f"transport.kind.{kind}", count)

    # -- observability ---------------------------------------------------

    def metrics(self) -> Dict[str, object]:
        """Session-lifetime metrics snapshot (see :mod:`repro.obs.metrics`)."""
        self._metrics.set_gauge("scheduler.queue_depth", self._scheduler.queued_count)
        self._metrics.set_gauge("scheduler.active_jobs", self._scheduler.active_count)
        snapshot = self._metrics.snapshot()
        snapshot.setdefault("jobs", {})["recent"] = list(self._job_records)
        return snapshot

    def profile(self) -> ProfileTrace:
        """Merged multi-process profile: coordinator + node buffers.

        Node event times are rebased onto the coordinator recorder's
        clock via the shipped origins (``perf_counter`` is a shared
        monotonic clock across local processes), so one Perfetto
        timeline shows the coordinator's scheduler lanes above every
        node process's IO/CPU/device/NET lanes.
        """
        trace = ProfileTrace()
        trace.add_process("coordinator", self._trace.events, pid=os.getpid())
        session_origin = self._trace.origin
        for name, pid, origin, events in list(self._node_traces):
            trace.add_process(name, events, pid=pid, offset=origin - session_origin)
        return trace
