"""Multi-process cluster runtime: the paper's mechanisms over real IPC.

:class:`ClusterRocketRuntime` spawns one worker **process** per
simulated cluster node (``multiprocessing``), each running the same
threaded per-node pipeline as the local runtime
(:class:`~repro.runtime.pernode.NodePipeline`), and wires the three
cross-node mechanisms of the paper for real:

1. **Distributed cache** (Section 4.1.3) — on a host-cache miss a node
   sends a request to the item's mediator (:func:`~repro.cache.distributed.mediator_of`);
   the mediator consults its :class:`~repro.cache.distributed.CandidateDirectory`
   and forwards the request along the candidate chain; the first holder
   ships the pre-processed NumPy payload straight back to the requester
   over the transport — the paper's ``h + 2`` messages per request.
   Outcomes land in :class:`~repro.cache.distributed.HopStats`.

2. **Global work stealing** (Section 4.2) — the whole workload starts
   as one root :class:`~repro.scheduling.quadtree.PairBlock` on node 0;
   idle nodes steal blocks from remote deques through the coordinator,
   which probes victims in the order produced by the existing
   :class:`~repro.scheduling.workstealing.VictimSelector` global tier.

3. **Result gathering** — completed pairs stream back to the
   coordinator in batched result blocks
   (:class:`~repro.runtime.transport.ResultBatcher`); the coordinator
   assembles the final :class:`~repro.core.result.ResultMatrix` and a
   :class:`ClusterRunStats` (per-node stats, aggregated hop histogram,
   bytes and messages over the wire, per-kind message counts).

*How* bytes move between the processes is delegated to a pluggable
:class:`~repro.runtime.transport.Transport`
(``ClusterConfig(transport=...)``): the ``"queue"`` transport pickles
payloads inline through per-node ``multiprocessing`` queues, the
``"shm"`` transport keeps payloads in coordinator-owned shared-memory
segments and ships only small descriptors.  The default ``fork`` start
method shares the application/store objects with the children at no
cost; with ``spawn`` they must be picklable.

The runtime is **session-oriented**: worker processes are spawned once
per :class:`ClusterSession` and then serve a *sequence of jobs*.  Each
job is dispatched over the transport as a ``("job", job_id, keys,
pair_filter, blocks)`` message; the node runs it on a fresh
:class:`~repro.runtime.pernode.NodePipeline` borrowed from its
persistent :class:`~repro.runtime.pernode.NodeEngine`, so device and
host cache contents — and the processes, kernel threads and transport
fabric themselves — survive between jobs.  A second job over
overlapping keys therefore starts against warm caches instead of
re-spawning the world.  ``ClusterRocketRuntime.run()`` is the one-shot
compatibility path: open a session, submit one workload, close.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.distributed import CandidateDirectory, HopStats, mediator_of
from repro.core.api import Application
from repro.core.session import RunHandle, RunState
from repro.core.workload import Workload
from repro.data.filestore import FileStore
from repro.model.perfmodel import StageCalibration
from repro.runtime.backend import BackendSession, RocketBackend
from repro.runtime.localrocket import RocketConfig
from repro.runtime.pernode import NodeEngine, NodePipeline, NodeStats
from repro.runtime.transport import (
    QueueTransport,
    ResultBatcher,
    Transport,
    TransportFabric,
    available_transports,
    create_fabric,
)
from repro.scheduling.quadtree import PairBlock, partition_blocks
from repro.scheduling.workstealing import StealPolicy, VictimSelector, WorkerTopology
from repro.util.rng import RngFactory
from repro.util.trace import TraceRecorder

__all__ = [
    "ClusterConfig",
    "ClusterRunStats",
    "ClusterRocketRuntime",
    "ClusterSession",
    "NodeCommServer",
    "QueueTransport",
    "NodeReport",
    "MESSAGE_KINDS",
]


@dataclass(frozen=True)
class ClusterConfig:
    """Tunables of the multi-process runtime."""

    n_nodes: int = 2
    #: Enable the third (distributed) cache level.
    distributed_cache: bool = True
    #: ``h`` — candidate-chain length a request may be forwarded along.
    max_hops: int = 2
    #: How long a worker waits for a distributed-cache reply before
    #: falling through to a local load.
    fetch_timeout: float = 30.0
    #: How long a worker waits for a global-steal grant before retrying.
    steal_timeout: float = 10.0
    #: Coordinator/comm-thread queue polling granularity.
    poll_interval: float = 0.05
    #: ``multiprocessing`` start method; ``fork`` shares the app/store
    #: objects with the children, ``spawn`` requires them picklable.
    start_method: str = "fork"
    #: Data-plane implementation (see :mod:`repro.runtime.transport`):
    #: ``"queue"`` pickles payloads inline, ``"shm"`` ships shared-memory
    #: descriptors.
    transport: str = "queue"
    #: Pair results per ``("results", ...)`` coordinator message;
    #: 1 reproduces the old one-message-per-pair behaviour.
    result_batch: int = 64
    #: Per-node shared-segment size for the ``"shm"`` transport.  The
    #: segment is sparse until written, so generous defaults cost
    #: nothing on Linux.
    shm_segment_bytes: int = 32 * 1024 * 1024
    #: Heterogeneous node mixes: per-node device speed-factor tuples
    #: (outer length ``n_nodes``, inner length the RocketConfig's
    #: ``n_devices``), overriding the shared RocketConfig's
    #: ``device_speed_factors`` on each node.  ``None`` — every node
    #: runs the RocketConfig as given.
    node_speed_factors: Optional[Tuple[Tuple[float, ...], ...]] = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.max_hops < 1:
            raise ValueError(f"max_hops (h) must be >= 1, got {self.max_hops}")
        if self.fetch_timeout <= 0 or self.steal_timeout <= 0 or self.poll_interval <= 0:
            raise ValueError("timeouts must be positive")
        if self.result_batch < 1:
            raise ValueError(f"result_batch must be >= 1, got {self.result_batch}")
        if self.shm_segment_bytes < 65536:
            raise ValueError(
                f"shm_segment_bytes must be >= 65536, got {self.shm_segment_bytes}"
            )
        if self.node_speed_factors is not None:
            if len(self.node_speed_factors) != self.n_nodes:
                raise ValueError(
                    f"{len(self.node_speed_factors)} speed-factor tuples for "
                    f"{self.n_nodes} nodes"
                )
            for node, speeds in enumerate(self.node_speed_factors):
                if not speeds or any(not 0 < s <= 1.0 for s in speeds):
                    raise ValueError(
                        f"node {node} speed factors must be in (0, 1], got {speeds}"
                    )


#: Stats categories of the coordinator/protocol messages.
MESSAGE_KINDS = ("fetch", "grant", "result", "control")

#: Message tag -> stats category.  ``fetch`` covers the distributed
#: cache (including shm slot releases), ``grant`` the global-steal
#: protocol, ``result`` the batched result blocks, ``control`` the
#: stop/error/stats lifecycle traffic.
_KIND_OF = {
    "creq": "fetch",
    "cprobe": "fetch",
    "crep": "fetch",
    "pfree": "fetch",
    "sreq": "grant",
    "sprobe": "grant",
    "srep": "grant",
    "sgrant": "grant",
    "results": "result",
    "result": "result",
    "stats": "control",
    "error": "control",
    "stop": "control",
    "job": "control",
    "shutdown": "control",
}


@dataclass
class ClusterRunStats:
    """Measured behaviour of one multi-process cluster run."""

    runtime: float
    n_items: int
    n_pairs: int
    n_nodes: int
    loads: int
    reuse_factor: float
    throughput: float
    node_stats: List[NodeStats]
    hop_stats: HopStats
    remote_steals: int
    bytes_over_wire: int
    #: Control-plane messages of the cache + steal protocols.
    messages: int
    #: Messages broken down by category (see :data:`MESSAGE_KINDS`).
    message_kinds: Dict[str, int] = field(
        default_factory=lambda: {k: 0 for k in MESSAGE_KINDS}
    )
    #: Data-plane implementation the run used ("queue", "shm", ...).
    transport: str = "queue"
    #: Sum of device speed factors across all nodes (the model's ``p``).
    aggregate_speed: float = 1.0
    #: Online-calibrated stage costs merged from every node.
    calibration: Optional[StageCalibration] = None
    #: Calibrated-model runtime at the measured reuse factor R.
    predicted_runtime: float = 0.0
    #: Eq. 5 system efficiency against the calibrated lower bound.
    model_efficiency: float = 0.0

    def summary(self) -> str:
        """Short human-readable digest."""
        hs = self.hop_stats
        kinds = "/".join(f"{self.message_kinds.get(k, 0)} {k}" for k in MESSAGE_KINDS)
        return (
            f"{self.n_pairs} pairs / {self.n_items} items on {self.n_nodes} nodes "
            f"in {self.runtime:.2f}s ({self.throughput:.1f} pairs/s); "
            f"loads={self.loads} (R={self.reuse_factor:.2f}); "
            f"distributed cache: {hs.total_hits}/{hs.requests} remote hits, "
            f"{self.bytes_over_wire / 1e6:.2f} MB over wire "
            f"[{self.transport} transport], "
            f"{self.messages} messages ({kinds}); "
            f"remote steals={self.remote_steals}; "
            f"model: predicted {self.predicted_runtime:.2f}s vs measured "
            f"{self.runtime:.2f}s, system efficiency {self.model_efficiency:.1%} "
            f"(aggregate speed {self.aggregate_speed:.2f})"
        )


@dataclass
class NodeReport:
    """Everything one node ships back to the coordinator at shutdown."""

    stats: NodeStats
    hops: HopStats
    bytes_shipped: int
    bytes_received: int
    messages: int
    message_kinds: Dict[str, int] = field(
        default_factory=lambda: {k: 0 for k in MESSAGE_KINDS}
    )


# ----------------------------------------------------------------------
# Per-node protocol endpoint


class _Pending:
    """One in-flight request a worker thread is blocked on."""

    def __init__(self, req_id: int, kind: str) -> None:
        self.req_id = req_id
        self.kind = kind  # "fetch" | "steal"
        self.event = threading.Event()
        self.result: Any = None

    def resolve(self, value: Any) -> None:
        self.result = value
        self.event.set()


class NodeCommServer:
    """One node's endpoint of the distributed-cache and steal protocols.

    The message handlers (:meth:`handle`) hold the node's mediator
    state (:class:`~repro.cache.distributed.CandidateDirectory`) and
    serve remote requests against the attached pipeline's host cache;
    :meth:`remote_fetch` / :meth:`global_steal` are the blocking
    client calls the pipeline's worker threads invoke, and
    :meth:`emit_result` is the pipeline's result hook (batched through
    a :class:`~repro.runtime.transport.ResultBatcher`).  Payload
    packing/unpacking is delegated to the
    :class:`~repro.runtime.transport.Transport`, so the same protocol
    code runs over inline queues or shared-memory descriptors — and is
    unit-testable over a synchronous in-process transport.

    The server outlives any single job: :meth:`begin_job` /
    :meth:`end_job` frame one workload's execution, resetting the
    job-scoped protocol state (mediator directory, hop/byte/message
    accounting, result batcher) while the process, transport endpoint
    and the engine's caches persist.  ``("stop", job_id, abort)`` ends
    one job; ``("shutdown",)`` ends the process.
    """

    def __init__(
        self,
        node_id: int,
        keys: Sequence[Hashable],
        cluster: ClusterConfig,
        transport: Transport,
    ) -> None:
        self.node_id = node_id
        self.keys = list(keys)
        self.cluster = cluster
        self.transport = transport
        self.pipeline: Optional[NodePipeline] = None
        self.directory = CandidateDirectory(cluster.max_hops)
        self.hops = HopStats(cluster.max_hops)
        self.bytes_shipped = 0
        self.bytes_received = 0
        self.messages = 0
        self.message_kinds: Dict[str, int] = {k: 0 for k in MESSAGE_KINDS}
        self.remote_abort = False
        self._stats_lock = threading.Lock()
        self._pending: Dict[int, _Pending] = {}
        self._pending_lock = threading.Lock()
        self._next_id = 0
        #: Requests registered before this id belong to earlier jobs; a
        #: late steal grant below the floor is dropped, not injected.
        self._req_floor = 0
        #: Current job id; -1 = "no job framing" (protocol unit tests),
        #: in which case stop messages apply unconditionally.
        self.job_id = -1
        #: Stop notices that arrived before their job was begun (the
        #: coordinator may abort a job while a node is still picking it
        #: up); ``begin_job`` consults this map.  job_id -> abort flag.
        self._early_stops: Dict[int, bool] = {}
        self._jobs: "queue.Queue[Optional[Tuple]]" = queue.Queue()
        self._stop_received = threading.Event()
        self._shutdown = threading.Event()
        self.batcher = ResultBatcher(
            self._send_coordinator,
            node_id,
            cluster.result_batch,
            max_delay=cluster.poll_interval,
        )

    # -- wiring ----------------------------------------------------------

    def attach(self, pipeline: NodePipeline) -> None:
        """Bind the pipeline whose host cache and deques this node serves."""
        self.pipeline = pipeline

    @property
    def stopped(self) -> bool:
        """True once a coordinator stop message was processed."""
        return self._stop_received.is_set()

    def next_job(self) -> Optional[Tuple]:
        """Block for the next job spec; None once shutdown was received."""
        return self._jobs.get()

    def begin_job(self, job_id: int, keys: Sequence[Hashable]) -> None:
        """Reset the job-scoped protocol state for ``job_id``.

        Called on the node main thread before the job's pipeline is
        attached.  If the coordinator already stopped this job (an
        abort raced the job hand-out), the stop state is re-applied so
        the caller can skip straight to the shutdown handshake.
        """
        with self._stats_lock:
            self.keys = list(keys)
            self.directory = CandidateDirectory(self.cluster.max_hops)
            self.hops = HopStats(self.cluster.max_hops)
            self.bytes_shipped = self.bytes_received = 0
            self.messages = 0
            self.message_kinds = {k: 0 for k in MESSAGE_KINDS}
        self.remote_abort = False
        self.batcher = ResultBatcher(
            self._send_coordinator,
            self.node_id,
            self.cluster.result_batch,
            max_delay=self.cluster.poll_interval,
        )
        with self._pending_lock:
            self._req_floor = self._next_id
            self.job_id = job_id
            early = self._early_stops.pop(job_id, None)
        self._stop_received.clear()
        if early is not None:
            self._apply_stop(bool(early))

    def end_job(self) -> None:
        """Detach the finished job's pipeline (the engine stays warm)."""
        self.pipeline = None
        self._stop_received.set()

    def serve(self) -> None:
        """Inbox loop (comm thread body); runs until :meth:`finish`.

        Each tick also pushes out aged partial result batches, so the
        coordinator's completion count trails the pipeline by at most
        one poll interval.  After a job's stop message the loop keeps
        *draining* the inbox — discarding late probes and replies, but
        still releasing shared-memory slots — so that peer processes
        never block on a full pipe or leak pool space while a job winds
        down.  Job hand-outs and the session shutdown are processed in
        every state.
        """
        while not self._shutdown.is_set():
            msg = self.transport.recv(self.cluster.poll_interval)
            if not self._stop_received.is_set():
                self.batcher.maybe_flush()
            if msg is None:
                continue
            if self._stop_received.is_set() and msg[0] not in ("job", "shutdown", "stop"):
                if msg[0] in ("crep", "pfree"):
                    try:
                        self._reclaim_late(msg)
                    except Exception:
                        pass
                continue
            try:
                self.handle(msg)
            except BaseException:  # noqa: BLE001 - must not kill the comm thread
                self.transport.send_coordinator(
                    ("error", self.node_id, traceback.format_exc())
                )

    def finish(self) -> None:
        """Exit the serve loop (call just before the process exits)."""
        self._shutdown.set()

    def _reclaim_late(self, msg: Tuple) -> None:
        """Free payload slots carried by messages drained after a stop."""
        if msg[0] == "pfree":
            self.transport.handle_free(msg)
        elif msg[2] is not None:  # late crep: release without copying
            self.transport.release_payload(msg[2], self.transport.send_node)

    # -- client side (called from worker threads) ------------------------

    def _register(self, kind: str) -> _Pending:
        with self._pending_lock:
            self._next_id += 1
            pend = _Pending(self._next_id, kind)
            self._pending[pend.req_id] = pend
        return pend

    def _pop_pending(self, req_id: int) -> Optional[_Pending]:
        with self._pending_lock:
            return self._pending.pop(req_id, None)

    def _count_send(self, msg: Tuple) -> None:
        kind = _KIND_OF.get(msg[0], "control")
        with self._stats_lock:
            self.messages += 1
            self.message_kinds[kind] += 1

    def _send_node(self, node: int, msg: Tuple) -> None:
        self._count_send(msg)
        self.transport.send_node(node, msg)

    def _send_coordinator(self, msg: Tuple) -> None:
        self._count_send(msg)
        self.transport.send_coordinator(msg)

    def emit_result(self, i: int, j: int, value: Any) -> None:
        """Pipeline result hook: batch the pair for the coordinator."""
        self.batcher.emit(i, j, value)

    def flush_results(self) -> None:
        """Push out any buffered results (node shutdown)."""
        self.batcher.flush()

    def remote_fetch(self, idx: int) -> Optional[np.ndarray]:
        """Third-cache-level request for item ``idx`` (blocking).

        Returns the pre-processed payload served by some peer's host
        cache, or ``None`` (recorded as a miss) — the caller then falls
        through to a local load.
        """
        if self._stop_received.is_set():
            return None
        mediator = mediator_of(idx, self.cluster.n_nodes)
        pend = self._register("fetch")
        self._send_node(mediator, ("creq", self.node_id, idx, pend.req_id))
        if not pend.event.wait(self.cluster.fetch_timeout):
            self._pop_pending(pend.req_id)
            with self._stats_lock:
                self.hops.record_miss(had_candidates=True)
            return None
        if pend.result is None:  # woken by stop
            return None
        payload, hop, _provider, wire = pend.result
        with self._stats_lock:
            if payload is None:
                self.hops.record_miss(had_candidates=(hop != 0))
            else:
                self.hops.record_hit(hop)
                self.bytes_received += wire
        return payload

    def global_steal(self) -> Optional[PairBlock]:
        """Request one block from a remote node through the coordinator."""
        if self._stop_received.is_set():
            return None
        pend = self._register("steal")
        self._send_coordinator(("sreq", self.node_id, pend.req_id, self.job_id))
        if not pend.event.wait(self.cluster.steal_timeout):
            self._pop_pending(pend.req_id)
            return None
        return pend.result

    # -- server side -----------------------------------------------------

    def handle(self, msg: Tuple) -> None:
        """Process one protocol message (mediator / candidate / reply)."""
        kind = msg[0]
        if kind == "creq":
            # Mediator step: return current candidates, record requester.
            _, requester, idx, req_id = msg
            if not 0 <= idx < len(self.keys):
                # A request that limped across a job boundary: the index
                # space changed, so it can only be answered with a miss.
                self._send_node(requester, ("crep", req_id, None, -1, -1))
                return
            candidates = [
                c for c in self.directory.lookup_and_record(idx, requester) if c != requester
            ]
            if not candidates:
                self._send_node(requester, ("crep", req_id, None, 0, -1))
            else:
                self._send_node(
                    candidates[0],
                    ("cprobe", requester, idx, req_id, tuple(candidates[1:]), 1),
                )
        elif kind == "cprobe":
            # Candidate step: serve from the host cache or forward.
            _, requester, idx, req_id, rest, hop = msg
            payload = (
                self.pipeline.host_payload_view(self.keys[idx])
                if self.pipeline is not None and 0 <= idx < len(self.keys)
                else None
            )
            if payload is not None:
                packed = self.transport.pack_payload(payload)
                with self._stats_lock:
                    self.bytes_shipped += self.transport.wire_bytes(packed)
                self._send_node(requester, ("crep", req_id, packed, hop, self.node_id))
            elif rest:
                self._send_node(
                    rest[0], ("cprobe", requester, idx, req_id, tuple(rest[1:]), hop + 1)
                )
            else:
                # Chain exhausted: the requester must load locally.
                self._send_node(requester, ("crep", req_id, None, -1, -1))
        elif kind == "crep":
            _, req_id, packed, hop, provider = msg
            pend = self._pop_pending(req_id)
            if pend is None:
                # The requester timed out and already fell back to a
                # local load: release any out-of-band slot without
                # paying for the payload copy.
                if packed is not None:
                    self.transport.release_payload(packed, self._send_node)
                return
            wire = self.transport.wire_bytes(packed) if packed is not None else 0
            payload = (
                self.transport.unpack_payload(packed, self._send_node)
                if packed is not None
                else None
            )
            pend.resolve((payload, hop, provider, wire))
        elif kind == "pfree":
            # A receiver finished copying a shared-memory payload.
            self.transport.handle_free(msg)
        elif kind == "sprobe":
            _, thief, req_id = msg
            block = self.pipeline.steal_for_remote() if self.pipeline is not None else None
            self._send_coordinator(("srep", self.node_id, thief, req_id, block))
        elif kind == "sgrant":
            _, req_id, block = msg
            pend = self._pop_pending(req_id)
            if pend is not None:
                pend.resolve(block)
            elif (
                block is not None
                and self.pipeline is not None
                and req_id > self._req_floor
            ):
                # The thief timed out waiting; never lose a stolen block.
                # (A grant from *before* the request floor belongs to an
                # earlier job's index space and must not be injected.)
                self.pipeline.inject_block(block)
        elif kind == "stop":
            _, job_id, abort = msg
            if job_id == self.job_id:
                self._apply_stop(bool(abort))
            elif job_id > self.job_id:
                # The job this stop targets has not been begun yet (the
                # coordinator aborted it while the hand-out was still in
                # flight); remember it for begin_job.  Job ids only
                # grow, so a *smaller* id is a stale stop — dropped.
                self._early_stops[job_id] = bool(abort)
        elif kind == "job":
            _, job_id, keys, pair_filter, blocks = msg
            self._jobs.put((job_id, keys, pair_filter, blocks))
        elif kind == "shutdown":
            self._jobs.put(None)
        else:
            raise ValueError(f"unknown cluster message {kind!r}")

    def _apply_stop(self, abort: bool) -> None:
        """End the current job: wake blocked clients, stop the pipeline."""
        self.remote_abort = abort
        self._stop_received.set()
        with self._pending_lock:
            pending, self._pending = list(self._pending.values()), {}
        for pend in pending:
            pend.resolve(None)
        if self.pipeline is not None:
            self.pipeline.request_stop(abort=abort)

    def report(self, stats: NodeStats) -> NodeReport:
        """Bundle the node's pipeline and protocol stats for shipping."""
        with self._stats_lock:
            return NodeReport(
                stats=stats,
                hops=self.hops,
                bytes_shipped=self.bytes_shipped,
                bytes_received=self.bytes_received,
                messages=self.messages,
                message_kinds=dict(self.message_kinds),
            )

    def ship_stats(self, stats: NodeStats) -> None:
        """Send the final stats report (counting the message itself)."""
        self._count_send(("stats",))
        self.transport.send_coordinator(("stats", self.node_id, self.report(stats)))


# ----------------------------------------------------------------------
# Node process


def _format_error(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _node_main(
    node_id: int,
    app: Application,
    store: FileStore,
    config: RocketConfig,
    cluster: ClusterConfig,
    fabric: TransportFabric,
) -> None:
    """Entry point of one worker process (one simulated cluster node).

    Serves a *sequence* of jobs against one persistent
    :class:`~repro.runtime.pernode.NodeEngine`: each ``("job", ...)``
    message runs on a fresh pipeline borrowing the engine's devices and
    caches, so later jobs see the payloads earlier jobs loaded.  The
    process exits on ``("shutdown",)``.
    """
    transport = fabric.endpoint(node_id)
    try:
        comm = NodeCommServer(node_id, [], cluster, transport)
        engine = NodeEngine(
            config,
            node_id=node_id,
            device_prefix=f"n{node_id}.gpu",
            rngs=RngFactory(config.seed + 7919 * (node_id + 1)),
        )
        multi = cluster.n_nodes > 1
        comm_thread = threading.Thread(target=comm.serve, name=f"comm{node_id}", daemon=True)
        comm_thread.start()
        while True:
            job = comm.next_job()
            if job is None:
                break
            job_id, keys, pair_filter, initial_blocks = job
            comm.begin_job(job_id, keys)
            pipeline = NodePipeline(
                app,
                store,
                config,
                keys,
                pair_filter=pair_filter,
                emit_result=comm.emit_result,
                node_id=node_id,
                rngs=RngFactory(config.seed + 7919 * (node_id + 1)),
                trace=TraceRecorder(enabled=False),
                expected_pairs=None,  # the coordinator decides when the run ends
                remote_fetch=comm.remote_fetch if (multi and cluster.distributed_cache) else None,
                global_steal=comm.global_steal if multi else None,
                initial_blocks=initial_blocks,
                engine=engine,
            )
            comm.attach(pipeline)
            if comm.stopped:
                # The job was aborted while the hand-out was in flight.
                pipeline.request_stop(abort=comm.remote_abort)
            pipeline.start()
            # Slightly above the coordinator's watchdog so the coordinator
            # reports the timeout first with full progress information.
            finished = pipeline.wait(config.watchdog_seconds + 30.0)
            comm.flush_results()
            if pipeline.errors and not comm.remote_abort:
                comm._send_coordinator(
                    ("error", node_id, _format_error(pipeline.errors[0]))
                )
            elif not finished:
                comm._send_coordinator(("error", node_id, "node watchdog expired"))
            pipeline.join(timeout=5.0)
            pipeline.close()  # engine-owned resources stay up
            comm.ship_stats(pipeline.stats())
            comm.end_job()
        engine.close()
        comm.finish()
        comm_thread.join(timeout=2.0)
        transport.close()
    except BaseException:  # noqa: BLE001 - last-resort report to the coordinator
        try:
            transport.send_coordinator(("error", node_id, traceback.format_exc()))
        except Exception:
            pass


# ----------------------------------------------------------------------
# Coordinator


class ClusterRocketRuntime(RocketBackend):
    """Run an all-pairs application across real OS processes.

    ``run(keys, pair_filter=None)`` (inherited) executes one workload
    through a one-shot session — spawn, run, tear down, exactly the
    pre-session behaviour; :meth:`open_session` returns a
    :class:`ClusterSession` whose worker processes, transport fabric
    and cache levels persist across many submitted workloads.
    """

    name = "cluster"

    def __init__(
        self,
        app: Application,
        store: FileStore,
        config: RocketConfig = RocketConfig(),
        cluster: ClusterConfig = ClusterConfig(),
    ) -> None:
        self.app = app
        self.store = store
        self.config = config
        self.cluster = cluster
        self.last_stats: Optional[ClusterRunStats] = None
        if cluster.transport not in available_transports():
            raise ValueError(
                f"unknown transport {cluster.transport!r}; "
                f"available: {', '.join(available_transports())}"
            )
        if cluster.node_speed_factors is not None:
            for node, speeds in enumerate(cluster.node_speed_factors):
                if len(speeds) != config.n_devices:
                    raise ValueError(
                        f"node {node}: {len(speeds)} speed factors for "
                        f"{config.n_devices} devices"
                    )

    def _node_configs(self) -> List[RocketConfig]:
        """Per-node RocketConfigs (heterogeneous speed overrides applied)."""
        import dataclasses

        if self.cluster.node_speed_factors is None:
            return [self.config] * self.cluster.n_nodes
        return [
            dataclasses.replace(self.config, device_speed_factors=tuple(speeds))
            for speeds in self.cluster.node_speed_factors
        ]

    def open_session(self) -> "ClusterSession":
        """Spawn the worker processes and return the live session."""
        return ClusterSession(self)


class ClusterSession(BackendSession):
    """A live multi-process execution context.

    Spawns one worker process per node plus the transport fabric
    *once*; submitted workloads are then dispatched as jobs over the
    transport and executed serially by a coordinator thread.  Between
    jobs the nodes keep their device/host caches (and the processes
    and kernel threads themselves) warm, so a later job over
    overlapping keys skips the load pipeline wherever a cache still
    holds the item.  :meth:`close` ends the node processes and unlinks
    every shared resource; a node crash marks the whole session dead
    (submissions then fail fast) but never leaks processes or
    ``/dev/shm`` segments.
    """

    def __init__(self, runtime: ClusterRocketRuntime) -> None:
        self._runtime = runtime
        cfg, cl = runtime.config, runtime.cluster
        try:
            ctx = multiprocessing.get_context(cl.start_method)
        except ValueError as exc:
            raise RuntimeError(
                f"multiprocessing start method {cl.start_method!r} unavailable "
                f"on this platform"
            ) from exc
        self._node_cfgs = runtime._node_configs()
        self._node_speeds = [c.aggregate_speed for c in self._node_cfgs]
        self._fabric = create_fabric(cl.transport, ctx, cl)
        self._procs = [
            ctx.Process(
                target=_node_main,
                args=(i, runtime.app, runtime.store, self._node_cfgs[i], cl, self._fabric),
                name=f"rocket-node{i}",
                daemon=True,
            )
            for i in range(cl.n_nodes)
        ]
        self._pending: "queue.Queue[Optional[RunHandle]]" = queue.Queue()
        self._handles: List[RunHandle] = []
        self._lock = threading.Lock()
        self._closed = False
        self._fatal: Optional[str] = None
        self._next_job_id = 0
        try:
            for p in self._procs:
                p.start()
            self._thread = threading.Thread(
                target=self._serve, name="rocket-cluster-session", daemon=True
            )
            self._thread.start()
        except BaseException:
            # Startup failed (e.g. an unpicklable app under the "spawn"
            # start method): the session object never reaches the
            # caller, so close() is unreachable — tear down the already
            # started processes and the fabric's shared segments here.
            for p in self._procs:
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=2.0)
            self._fabric.shutdown()
            raise

    # ------------------------------------------------------------------

    def submit(self, workload: Workload) -> RunHandle:
        """Queue a workload; returns its handle immediately.

        Validates up front — before anything is dispatched — that the
        workload's keys and pair filter can be pickled onto the job
        message: a lambda or closure predicate would otherwise only
        crash inside a worker process, far from the caller.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("session is closed")
            if self._fatal is not None:
                raise RuntimeError(f"session is dead: {self._fatal}")
            self._runtime.app.validate_keys(workload.keys)
            try:
                pickle.dumps((workload.keys, workload.pair_filter))
            except Exception as exc:
                raise ValueError(
                    f"workload cannot be shipped to the cluster workers "
                    f"({exc}); keys and pair filters must be picklable — "
                    f"define filter predicates at module level, not as "
                    f"lambdas or closures"
                ) from None
            handle = RunHandle(workload)
            self._handles.append(handle)
            self._pending.put(handle)
        return handle

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop the workers, join the processes, unlink shared state."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles)
        for handle in handles:
            handle.cancel()
        self._pending.put(None)
        self._thread.join(timeout=60.0)
        cl = self._runtime.cluster
        for node in range(cl.n_nodes):
            try:
                self._fabric.send_node(node, ("shutdown",))
            except Exception:
                pass  # a crashed node's queue may already be broken
        for p in self._procs:
            p.join(timeout=5.0)
        for p in self._procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=2.0)
        # Tears down queues and unlinks shared segments — runs on every
        # exit path, so a crashed node cannot leak /dev/shm entries.
        self._fabric.shutdown()

    # ------------------------------------------------------------------

    def _serve(self) -> None:
        while True:
            handle = self._pending.get()
            if handle is None:
                return
            if self._fatal is not None:
                handle._finish(
                    RunState.FAILED,
                    error=RuntimeError(f"cluster session is dead: {self._fatal}"),
                )
                continue
            if handle.cancel_requested:
                handle._finish(RunState.CANCELLED)
                continue
            try:
                self._run_job(handle)
            except BaseException as exc:  # noqa: BLE001 - session must survive
                if not handle.done():
                    handle._finish(RunState.FAILED, error=exc)

    def _drain_between_jobs(self) -> None:
        """Discard coordinator-queue stragglers of the finished job.

        After every node shipped its stats nothing else of that job is
        in flight (per-node sends are FIFO and stats are each node's
        last message), but messages the coordinator chose not to read —
        e.g. a steal request that raced the stop broadcast — may still
        sit in the queue.  They must not leak into the next job's
        accounting.
        """
        while True:
            msg = self._fabric.recv_coordinator(0.001)
            if msg is None:
                return

    def _resync_after_failure(self, reports: Dict[int, "NodeReport"]) -> None:
        """Re-establish queue silence after a job failed abruptly.

        Result and stats messages carry no job id; the only safe point
        to start the next job is after every surviving node's final
        stats report for the failed job has been *observed* (it is each
        node's last message, so everything before it can be discarded).
        A node that neither reports nor dies within the resync window
        leaves the queue state unknowable — the session is marked dead
        rather than risk feeding one job's results into the next.
        """
        cl = self._runtime.cluster
        deadline = time.perf_counter() + 15.0
        while len(reports) < cl.n_nodes:
            missing = {
                i for i, p in enumerate(self._procs)
                if i not in reports and p.is_alive()
            }
            if not missing:
                if self._fatal is None:
                    self._fatal = "a worker process died during a failed job"
                return
            if time.perf_counter() > deadline:
                if self._fatal is None:
                    self._fatal = (
                        f"nodes {sorted(missing)} never reported after a failed job"
                    )
                return
            msg = self._fabric.recv_coordinator(cl.poll_interval)
            if msg is not None and msg[0] == "stats":
                reports[msg[1]] = msg[2]
            # Everything else belongs to the dying job: discarded.

    def _run_job(self, handle: RunHandle) -> None:
        runtime = self._runtime
        cfg, cl = runtime.config, runtime.cluster
        fabric = self._fabric
        workload = handle.workload
        keys = workload.keys
        n = len(keys)
        pair_filter = workload.pair_filter
        total_pairs = workload.n_pairs
        job_id = self._next_job_id
        self._next_job_id += 1

        node_speeds = self._node_speeds
        speed_aware = cfg.steal_policy is StealPolicy.SPEED
        blocks = workload.blocks()
        if speed_aware and cl.n_nodes > 1:
            # Speed-proportional initial partitioning: every node starts
            # with a share of the workload's block set matching its
            # aggregate speed instead of node 0 holding everything.
            shares = partition_blocks(blocks, node_speeds)
        else:
            shares = [[] for _ in range(cl.n_nodes)]
            shares[0] = blocks

        # Accepted-pair counts per block, computed once and memoized by
        # block region: the workload seeds the map for its own blocks,
        # steal-time sub-blocks are swept at most once each.
        accepted_counts: Dict[Tuple[int, int, int, int], int] = {
            (b.row_lo, b.row_hi, b.col_lo, b.col_hi): c
            for b, c in zip(blocks, workload.block_counts())
        }

        def accepted_count(block: PairBlock) -> int:
            """Pairs of ``block`` that survive the filter (all, if none).

            The filter sweep only pays off for the SPEED policy's
            remaining-work estimate; UNIFORM runs never read it, so
            they get the O(1) raw count.
            """
            if pair_filter is None or not speed_aware:
                return block.count
            region = (block.row_lo, block.row_hi, block.col_lo, block.col_hi)
            count = accepted_counts.get(region)
            if count is None:
                count = sum(1 for i, j in block.pairs() if pair_filter(keys[i], keys[j]))
                accepted_counts[region] = count
            return count

        topology = WorkerTopology.from_gpus_per_node([cfg.n_devices] * cl.n_nodes)
        selector = VictimSelector(topology, RngFactory(cfg.seed).get("cluster:steal"))
        pending_steals: Dict[Tuple[int, int], List[int]] = {}
        reports: Dict[int, NodeReport] = {}
        # Estimated accepted pairs still owned by each node: the initial
        # share, plus/minus granted steals, minus streamed results.
        # Filter-rejected pairs are excluded up front so the estimate
        # actually drains.  Drives remaining-work victim ranking under
        # the SPEED policy.
        assigned = [sum(accepted_count(b) for b in share) for share in shares]
        completed_by = [0] * cl.n_nodes
        completed = 0
        remote_steals = 0
        error: Optional[str] = None
        cancelled = False
        stopped = False

        def broadcast_stop(abort: bool) -> None:
            for node in range(cl.n_nodes):
                try:
                    fabric.send_node(node, ("stop", job_id, abort))
                except Exception:
                    pass  # a crashed node's queue may already be broken

        def victim_order(thief: int) -> List[int]:
            """Remote-node probe order for a steal request.

            UNIFORM: the global VictimSelector tier (randomized,
            locality-aware).  SPEED: the same candidate set re-ranked
            by estimated remaining work, so the most-backlogged node
            is probed first instead of a uniformly random one.
            """
            order: List[int] = []
            for w in selector.candidates(thief * cfg.n_devices):
                node = topology.node_of[w]
                if node != thief and node not in order:
                    order.append(node)
            if speed_aware:
                # Remaining *time*, not pairs: a slow node with half the
                # backlog of a fast one may still be the bigger straggler.
                order.sort(
                    key=lambda v: max(0, assigned[v] - completed_by[v]) / node_speeds[v],
                    reverse=True,
                )
            return order

        def grant(
            thief: int, req_id: int, block: Optional[PairBlock], count: int = 0
        ) -> None:
            nonlocal remote_steals
            fabric.send_node(thief, ("sgrant", req_id, block))
            if block is not None:
                remote_steals += 1
                assigned[thief] += count

        def advance_steal(key: Tuple[int, int]) -> None:
            thief, req_id = key
            victims = pending_steals[key]
            if victims:
                fabric.send_node(victims.pop(0), ("sprobe", thief, req_id))
            else:
                del pending_steals[key]
                grant(thief, req_id, None)

        def record_result(i: int, j: int, value: Any) -> None:
            nonlocal completed, stopped
            handle._record(i, j, value)
            completed += 1
            if completed == total_pairs and not stopped:
                stopped = True
                broadcast_stop(False)

        def dispatch(msg: Tuple) -> None:
            nonlocal error, stopped
            kind = msg[0]
            if kind == "results":
                _, node, block = msg
                completed_by[node] += len(block)
                for i, j, value in block:
                    record_result(i, j, value)
            elif kind == "result":
                _, node, i, j, value = msg
                completed_by[node] += 1
                record_result(i, j, value)
            elif kind == "sreq":
                _, thief, req_id, req_job = msg
                if stopped or req_job != job_id:
                    grant(thief, req_id, None)
                else:
                    pending_steals[(thief, req_id)] = victim_order(thief)
                    advance_steal((thief, req_id))
            elif kind == "srep":
                _, victim, thief, req_id, block = msg
                key = (thief, req_id)
                if stopped and key not in pending_steals:
                    return  # the job ended while this probe was in flight
                if block is not None:
                    moved = accepted_count(block)
                    assigned[victim] = max(0, assigned[victim] - moved)
                    pending_steals.pop(key, None)
                    grant(thief, req_id, block, moved)
                elif key in pending_steals:
                    advance_steal(key)
            elif kind == "error":
                _, node, text = msg
                if error is None:
                    error = f"node {node}: {text}"
                if not stopped:
                    stopped = True
                    broadcast_stop(True)
            elif kind == "stats":
                _, node, report = msg
                reports[node] = report
            else:
                raise AssertionError(f"unknown coordinator message {kind!r}")

        start = time.perf_counter()
        deadline = start + cfg.watchdog_seconds
        handle._mark_running(cancel_cb=None)  # cancellation is polled
        for node in range(cl.n_nodes):
            fabric.send_node(
                node, ("job", job_id, keys, pair_filter, shares[node])
            )
        try:
            while True:
                if stopped and len(reports) == cl.n_nodes:
                    break
                if error is not None and len(reports) == cl.n_nodes:
                    break
                if handle.cancel_requested and not stopped:
                    cancelled = True
                    stopped = True
                    broadcast_stop(True)
                if time.perf_counter() > deadline:
                    if error is None:
                        error = (
                            f"cluster run did not finish within "
                            f"watchdog_seconds={cfg.watchdog_seconds}; "
                            f"completed {completed}/{total_pairs} pairs"
                        )
                    raise RuntimeError(f"cluster run failed: {error}")
                msg = fabric.recv_coordinator(cl.poll_interval)
                if msg is None:
                    dead = [
                        (i, p)
                        for i, p in enumerate(self._procs)
                        if not p.is_alive() and i not in reports
                    ]
                    if dead:
                        # Give any in-flight error/stats message priority
                        # over the generic crash report.
                        while error is None:
                            late = fabric.recv_coordinator(0.001)
                            if late is None:
                                break
                            dispatch(late)
                        dead = [
                            (i, p)
                            for i, p in enumerate(self._procs)
                            if not p.is_alive() and i not in reports
                        ]
                        if not dead:
                            continue
                        if stopped and error is None:
                            # All pairs are in: a node that died after the
                            # stop broadcast only costs its stats report.
                            break
                        i, p = dead[0]
                        self._fatal = (
                            f"node {i} died unexpectedly (exit code {p.exitcode}) "
                            f"with {completed}/{total_pairs} pairs completed"
                        )
                        if error is None:
                            error = self._fatal
                        raise RuntimeError(f"cluster run failed: {error}")
                    continue
                dispatch(msg)
        except BaseException as exc:
            if not stopped:
                broadcast_stop(True)
            self._resync_after_failure(reports)
            handle._finish(RunState.FAILED, error=exc)
            return
        finally:
            self._drain_between_jobs()
        runtime_s = time.perf_counter() - start

        if cancelled:
            handle._finish(RunState.CANCELLED)
            return
        if error is not None:
            handle._finish(
                RunState.FAILED, error=RuntimeError(f"cluster run failed: {error}")
            )
            return
        if completed != total_pairs:
            handle._finish(
                RunState.FAILED,
                error=RuntimeError(
                    f"cluster run ended with {completed}/{total_pairs} results — "
                    f"scheduler bug"
                ),
            )
            return

        hop_stats = HopStats(cl.max_hops)
        node_stats: List[NodeStats] = []
        message_kinds = {k: 0 for k in MESSAGE_KINDS}
        calibration = StageCalibration()
        loads = bytes_over_wire = messages = 0
        for i in sorted(reports):
            rep = reports[i]
            node_stats.append(rep.stats)
            loads += rep.stats.loads
            calibration.merge(rep.stats.calibration)
            for k in range(cl.max_hops):
                hop_stats.hits_at_hop[k] += rep.hops.hits_at_hop[k]
            hop_stats.misses += rep.hops.misses
            hop_stats.no_candidates += rep.hops.no_candidates
            bytes_over_wire += rep.bytes_shipped
            messages += rep.messages
            for kind, count in rep.message_kinds.items():
                message_kinds[kind] = message_kinds.get(kind, 0) + count

        aggregate_speed = float(sum(node_speeds))
        reuse = loads / n
        model = calibration.model(
            n_items=n, aggregate_speed=aggregate_speed, cpu_cores=cfg.cpu_workers * cl.n_nodes
        )
        stats = ClusterRunStats(
            runtime=runtime_s,
            n_items=n,
            n_pairs=total_pairs,
            n_nodes=cl.n_nodes,
            loads=loads,
            reuse_factor=reuse,
            throughput=total_pairs / runtime_s if runtime_s > 0 else 0.0,
            node_stats=node_stats,
            hop_stats=hop_stats,
            remote_steals=remote_steals,
            bytes_over_wire=bytes_over_wire,
            messages=messages,
            message_kinds=message_kinds,
            transport=cl.transport,
            aggregate_speed=aggregate_speed,
            calibration=calibration,
            predicted_runtime=model.predicted_runtime(max(1.0, reuse)),
            model_efficiency=model.efficiency(runtime_s) if runtime_s > 0 else 0.0,
        )
        self._runtime.last_stats = stats
        handle._finish(RunState.DONE, stats=stats)
