"""Virtual GPUs executing NumPy kernels on dedicated threads.

A :class:`VirtualDevice` mirrors how Rocket drives one CUDA device:

- kernels are *serialised* per device — one executor thread plays the
  role of the GPU's in-order stream fed by Rocket's launch thread;
- data must be explicitly transferred: :meth:`h2d` copies a host array
  into a :class:`~repro.core.buffers.DeviceBuffer` owned by this
  device, :meth:`d2h` copies it back; kernels reject buffers owned by
  other devices (catching missing-transfer bugs);
- an optional ``speed_factor`` < 1 stretches kernel wall time, letting
  a single machine emulate the heterogeneous device mixes of the
  paper's Section 6.5.

NumPy releases the GIL inside its compute kernels, so several virtual
devices genuinely overlap on a multi-core host.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Optional

import numpy as np

from repro.core.buffers import DeviceBuffer

__all__ = ["VirtualDevice"]


class VirtualDevice:
    """One virtual GPU: serial kernel queue plus explicit transfers."""

    def __init__(self, name: str, speed_factor: float = 1.0) -> None:
        if speed_factor <= 0:
            raise ValueError(f"speed_factor must be positive, got {speed_factor}")
        self.name = name
        self.speed_factor = float(speed_factor)
        self._executor = ThreadPoolExecutor(max_workers=1, thread_name_prefix=f"dev-{name}")
        self._closed = False
        self._lock = threading.Lock()
        # Counters for the run report.
        self.kernel_seconds = 0.0
        self.kernel_count = 0
        self.batched_kernel_count = 0
        self.batched_pairs = 0
        self.h2d_bytes = 0
        self.d2h_bytes = 0

    # -- transfers -------------------------------------------------------

    def h2d(self, array: np.ndarray) -> DeviceBuffer:
        """Copy a host array onto this device."""
        if not isinstance(array, np.ndarray):
            raise TypeError(f"h2d expects an ndarray, got {type(array).__name__}")
        buf = DeviceBuffer(np.array(array, copy=True), self.name)
        with self._lock:
            self.h2d_bytes += buf.nbytes
        return buf

    def d2h(self, buffer: DeviceBuffer) -> np.ndarray:
        """Copy a device buffer back to host memory."""
        buffer.check_device(self.name)
        with self._lock:
            self.d2h_bytes += buffer.nbytes
        return np.array(buffer.data, copy=True)

    # -- kernels ---------------------------------------------------------

    def run_kernel(self, fn: Callable[..., np.ndarray], *buffers_and_args: Any) -> DeviceBuffer:
        """Execute ``fn`` on this device's kernel thread (blocking).

        :class:`DeviceBuffer` arguments are ownership-checked and
        unwrapped to plain arrays before the call; the result array is
        wrapped as a buffer on this device.  With ``speed_factor`` < 1
        the call is padded so the kernel appears proportionally slower.
        """
        return self.run_kernel_timed(fn, *buffers_and_args)[0]

    def run_kernel_timed(
        self, fn: Callable[..., np.ndarray], *buffers_and_args: Any
    ) -> "tuple[DeviceBuffer, float]":
        """:meth:`run_kernel` plus the kernel's *on-device* seconds.

        The returned elapsed time covers only the kernel execution (and
        speed-factor padding) on the device thread — not the caller's
        wait in the kernel queue — which is what online calibration of
        ``t_pre`` / ``t_cmp`` must record.
        """
        if self._closed:
            raise RuntimeError(f"device {self.name!r} is shut down")
        return self._executor.submit(self._invoke, fn, buffers_and_args, 0).result()

    def run_kernel_batched(
        self, fn: Callable[..., np.ndarray], n_pairs: int, *buffers_and_args: Any
    ) -> DeviceBuffer:
        """Execute one *batched* kernel computing ``n_pairs`` pairs."""
        return self.run_kernel_batched_timed(fn, n_pairs, *buffers_and_args)[0]

    def run_kernel_batched_timed(
        self, fn: Callable[..., np.ndarray], n_pairs: int, *buffers_and_args: Any
    ) -> "tuple[DeviceBuffer, float]":
        """:meth:`run_kernel_timed` for a batched-pair kernel.

        Differences from the per-pair entry point: :class:`DeviceBuffer`
        elements *inside* list/tuple arguments are ownership-checked and
        unwrapped too (a batch argument is a sequence of slot views),
        and the launch is counted once in ``batched_kernel_count`` /
        ``n_pairs`` times in ``batched_pairs`` — the elapsed time is the
        whole batch's, so callers amortise it per pair for calibration.
        """
        if n_pairs < 1:
            raise ValueError(f"n_pairs must be >= 1, got {n_pairs}")
        if self._closed:
            raise RuntimeError(f"device {self.name!r} is shut down")
        return self._executor.submit(self._invoke, fn, buffers_and_args, n_pairs).result()

    def _unwrap(self, arg: Any) -> Any:
        if isinstance(arg, DeviceBuffer):
            arg.check_device(self.name)
            return arg.data
        if isinstance(arg, (list, tuple)) and any(
            isinstance(item, DeviceBuffer) for item in arg
        ):
            return [self._unwrap(item) for item in arg]
        return arg

    def _invoke(
        self, fn: Callable[..., np.ndarray], buffers_and_args: tuple, n_pairs: int
    ) -> "tuple[DeviceBuffer, float]":
        """Kernel-thread body shared by the per-pair and batched paths."""
        args = [self._unwrap(arg) for arg in buffers_and_args]
        t0 = time.perf_counter()
        result = fn(*args)
        elapsed = time.perf_counter() - t0
        if self.speed_factor < 1.0:
            pad = elapsed * (1.0 / self.speed_factor - 1.0)
            time.sleep(pad)
            elapsed += pad
        with self._lock:
            self.kernel_seconds += elapsed
            self.kernel_count += 1
            if n_pairs:
                self.batched_kernel_count += 1
                self.batched_pairs += n_pairs
        if not isinstance(result, np.ndarray):
            result = np.asarray(result)
        return DeviceBuffer(result, self.name), elapsed

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self) -> None:
        """Stop the kernel thread (idempotent)."""
        if not self._closed:
            self._closed = True
            self._executor.shutdown(wait=True)

    def __enter__(self) -> "VirtualDevice":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"VirtualDevice({self.name!r}, speed={self.speed_factor})"
