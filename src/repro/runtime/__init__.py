"""The real (threaded) Rocket runtime for a single machine.

While :mod:`repro.sim` reproduces the paper's *cluster-scale timing
behaviour* on simulated time, this package executes *real application
pipelines* — NumPy kernels standing in for the CUDA kernels — with the
same architecture on actual OS threads:

- :mod:`repro.runtime.devices` — virtual GPUs: a serial kernel queue
  per device (one executor thread each, like Rocket's per-GPU launch
  thread), explicit H2D/D2H transfers producing
  :class:`~repro.core.buffers.DeviceBuffer` handles, and optional
  speed factors for emulating heterogeneous devices;
- :mod:`repro.runtime.localrocket` — the runtime proper: device and
  host slot caches (the same :class:`~repro.cache.slots.SlotCache`
  policy code the simulator uses) guarded by condition variables,
  per-device worker threads running divide-and-conquer with
  work-stealing, a CPU parse pool, a single I/O lane, and
  concurrent-job admission control.

This is what the examples and application-correctness tests run on.
"""

from repro.runtime.devices import VirtualDevice
from repro.runtime.localrocket import LocalRocketRuntime, RunStats

__all__ = ["VirtualDevice", "LocalRocketRuntime", "RunStats"]
