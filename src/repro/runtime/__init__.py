"""The real Rocket runtimes executing actual application pipelines.

While :mod:`repro.sim` reproduces the paper's *cluster-scale timing
behaviour* on simulated time, this package executes *real application
pipelines* — NumPy kernels standing in for the CUDA kernels — with the
same architecture on actual OS threads and processes:

- :mod:`repro.runtime.devices` — virtual GPUs: a serial kernel queue
  per device (one executor thread each, like Rocket's per-GPU launch
  thread), explicit H2D/D2H transfers producing
  :class:`~repro.core.buffers.DeviceBuffer` handles, and optional
  speed factors for emulating heterogeneous devices;
- :mod:`repro.runtime.pernode` — the per-node pipeline both runtimes
  share: device and host slot caches (the same
  :class:`~repro.cache.slots.SlotCache` policy code the simulator uses)
  guarded by condition variables, per-device worker threads running
  divide-and-conquer with work-stealing, a CPU parse pool, a single I/O
  lane, and concurrent-job admission control;
- :mod:`repro.runtime.localrocket` — the single-process configuration
  (no third cache level; what the examples and application-correctness
  tests run on);
- :mod:`repro.runtime.cluster` — the multi-process configuration: one
  worker process per node, a live distributed cache level (mediator
  protocol over real IPC), global work stealing through the
  coordinator, and batched result streaming;
- :mod:`repro.runtime.transport` — the pluggable data plane of the
  cluster runtime: inline queue shipping (``"queue"``) or zero-copy
  shared-memory descriptors (``"shm"``);
- :mod:`repro.runtime.backend` — the backend registry behind
  ``Rocket(..., backend=...)``.
"""

from repro.runtime.backend import (
    BackendSession,
    RocketBackend,
    available_backends,
    create_backend,
)
from repro.runtime.cluster import (
    ClusterConfig,
    ClusterRocketRuntime,
    ClusterRunStats,
    ClusterSession,
)
from repro.runtime.devices import VirtualDevice
from repro.runtime.localrocket import LocalRocketRuntime, LocalSession, RunStats
from repro.runtime.pernode import NodeEngine, NodePipeline, NodeStats
from repro.runtime.transport import Transport, TransportFabric, available_transports

__all__ = [
    "VirtualDevice",
    "LocalRocketRuntime",
    "LocalSession",
    "RunStats",
    "NodeEngine",
    "NodePipeline",
    "NodeStats",
    "ClusterConfig",
    "ClusterRocketRuntime",
    "ClusterRunStats",
    "ClusterSession",
    "BackendSession",
    "RocketBackend",
    "available_backends",
    "create_backend",
    "Transport",
    "TransportFabric",
    "available_transports",
]
