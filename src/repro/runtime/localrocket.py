"""The threaded single-node Rocket runtime executing real pipelines.

Architecture (paper Section 4.3, scaled to one machine): the actual
per-node machinery — worker threads, two :class:`~repro.cache.slots.SlotCache`
levels, the load pipeline and job admission — lives in
:class:`~repro.runtime.pernode.NodePipeline`, which this runtime and
the multi-process :mod:`repro.runtime.cluster` runtime share.  This
class is the single-node configuration: no third cache level, no
global stealing, results written straight into an in-process
:class:`~repro.core.result.ResultMatrix`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Sequence, Tuple

from repro.cache.policy import EvictionPolicy
from repro.cache.slots import CacheCounters
from repro.core.api import Application
from repro.core.result import ResultMatrix
from repro.data.filestore import FileStore
from repro.model.perfmodel import StageCalibration
from repro.runtime.backend import RocketBackend
from repro.runtime.pernode import NodePipeline
from repro.scheduling.quadtree import PairBlock
from repro.scheduling.workstealing import StealOrder, StealPolicy
from repro.util.rng import RngFactory
from repro.util.trace import TraceRecorder

__all__ = ["RocketConfig", "RunStats", "LocalRocketRuntime", "count_pairs"]


@dataclass(frozen=True)
class RocketConfig:
    """Tunables of the threaded runtime (mirrors the simulator's config)."""

    n_devices: int = 2
    device_cache_slots: int = 64
    host_cache_slots: int = 256
    concurrent_jobs: int = 8
    leaf_size: int = 4
    cpu_workers: int = 4
    #: Per-device kernel speed factors (< 1 emulates a slower GPU);
    #: length must equal ``n_devices`` when given.
    device_speed_factors: Optional[Tuple[float, ...]] = None
    eviction: EvictionPolicy = EvictionPolicy.LRU
    steal_order: StealOrder = StealOrder.LARGEST
    #: ``UNIFORM`` — the paper's randomized stealing; ``SPEED`` — the
    #: heterogeneity-aware policy: speed-proportional initial
    #: partitioning, victims ranked by estimated remaining time, steal
    #: sizes and job admission scaled by device speed.
    steal_policy: StealPolicy = StealPolicy.UNIFORM
    profiling: bool = False
    seed: int = 0
    #: Hard wall-clock limit: a wedged run raises instead of hanging.
    watchdog_seconds: float = 600.0

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ValueError(f"n_devices must be >= 1, got {self.n_devices}")
        if self.cpu_workers < 1:
            raise ValueError(f"cpu_workers must be >= 1, got {self.cpu_workers}")
        if self.leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {self.leaf_size}")
        if self.device_speed_factors is not None:
            if len(self.device_speed_factors) != self.n_devices:
                raise ValueError(
                    f"{len(self.device_speed_factors)} speed factors for "
                    f"{self.n_devices} devices"
                )
            if any(not 0 < s <= 1.0 for s in self.device_speed_factors):
                # A VirtualDevice can only *stretch* kernel time, so the
                # reference device (1.0) must be the fastest; factors > 1
                # would skew partitioning and calibration with no speedup.
                raise ValueError(
                    f"speed factors must be in (0, 1], got {self.device_speed_factors}"
                )
        if self.watchdog_seconds <= 0:
            raise ValueError("watchdog_seconds must be positive")

    @property
    def device_speeds(self) -> Tuple[float, ...]:
        """Per-device speed factors (1.0 for unspecified devices)."""
        return self.device_speed_factors or (1.0,) * self.n_devices

    @property
    def aggregate_speed(self) -> float:
        """Sum of device speed factors — the model's generalised ``p``."""
        return float(sum(self.device_speeds))


def count_pairs(keys: Sequence[Hashable], pair_filter) -> int:
    """Number of accepted pairs for a key list under an optional filter."""
    n = len(keys)
    if pair_filter is None:
        return n * (n - 1) // 2
    total = sum(
        1 for i in range(n) for j in range(i + 1, n) if pair_filter(keys[i], keys[j])
    )
    if total == 0:
        raise ValueError("pair_filter rejected every pair")
    return total


@dataclass
class RunStats:
    """Measured behaviour of one threaded run."""

    runtime: float
    n_items: int
    n_pairs: int
    loads: int
    reuse_factor: float
    device_counters: CacheCounters
    host_counters: CacheCounters
    local_steals: int
    kernel_seconds: Dict[str, float]
    kernel_counts: Dict[str, int]
    pairs_per_device: Dict[str, int]
    h2d_bytes: int
    d2h_bytes: int
    io_bytes: int
    parse_seconds: float
    throughput: float
    #: Sum of device speed factors the run executed on.
    aggregate_speed: float = 1.0
    #: Online-calibrated stage costs measured while the run executed.
    calibration: Optional[StageCalibration] = None
    #: Calibrated-model runtime at the measured reuse factor R.
    predicted_runtime: float = 0.0
    #: Eq. 5 system efficiency against the calibrated lower bound.
    model_efficiency: float = 0.0
    trace: Optional[TraceRecorder] = None

    def summary(self) -> str:
        """Short human-readable digest."""
        return (
            f"{self.n_pairs} pairs / {self.n_items} items in {self.runtime:.2f}s "
            f"({self.throughput:.1f} pairs/s); loads={self.loads} (R={self.reuse_factor:.2f}); "
            f"device hit ratio {self.device_counters.hit_ratio():.1%}, "
            f"host hit ratio {self.host_counters.hit_ratio():.1%}; "
            f"steals={self.local_steals}; "
            f"model: predicted {self.predicted_runtime:.2f}s vs measured "
            f"{self.runtime:.2f}s, system efficiency {self.model_efficiency:.1%} "
            f"(aggregate speed {self.aggregate_speed:.2f})"
        )


class LocalRocketRuntime(RocketBackend):
    """Run an :class:`~repro.core.api.Application` all-pairs on one machine."""

    name = "local"

    def __init__(
        self,
        app: Application,
        store: FileStore,
        config: RocketConfig = RocketConfig(),
    ) -> None:
        self.app = app
        self.store = store
        self.config = config
        self.last_stats: Optional[RunStats] = None

    # ------------------------------------------------------------------

    def run(self, keys: Sequence[Hashable], pair_filter=None) -> ResultMatrix:
        """Execute the all-pairs comparisons; returns the results.

        ``pair_filter`` (optional, a Section 7 extension) is a predicate
        ``(key_a, key_b) -> bool``; pairs it rejects are skipped without
        being loaded or compared — the paper's "user-defined heuristics
        to reduce the number of pairs".  With a filter the result matrix
        holds only the accepted pairs.

        Statistics of the run are available as :attr:`last_stats`
        afterwards.
        """
        cfg = self.config
        keys = list(keys)
        self.app.validate_keys(keys)
        n = len(keys)
        total_pairs = count_pairs(keys, pair_filter)

        results = ResultMatrix(keys)
        pipeline = NodePipeline(
            self.app,
            self.store,
            cfg,
            keys,
            pair_filter=pair_filter,
            emit_result=lambda i, j, v: results.set(keys[i], keys[j], v),
            rngs=RngFactory(cfg.seed),
            expected_pairs=total_pairs,
            initial_blocks=[PairBlock.root(n)],
        )

        start = time.perf_counter()
        pipeline.start()
        try:
            finished = pipeline.wait(cfg.watchdog_seconds)
            if not finished:
                raise RuntimeError(
                    f"run did not finish within watchdog_seconds={cfg.watchdog_seconds}; "
                    f"completed {pipeline.counters['completed']}/{total_pairs} pairs"
                )
            pipeline.join(timeout=10.0)
        finally:
            pipeline.close()
        runtime = time.perf_counter() - start

        if pipeline.errors:
            raise pipeline.errors[0]
        if len(results) != total_pairs:
            raise RuntimeError(
                f"run ended with {len(results)}/{total_pairs} results — scheduler bug"
            )

        ns = pipeline.stats()
        reuse = ns.loads / n
        model = ns.calibration.model(
            n_items=n, aggregate_speed=cfg.aggregate_speed, cpu_cores=cfg.cpu_workers
        )
        self.last_stats = RunStats(
            runtime=runtime,
            n_items=n,
            n_pairs=total_pairs,
            loads=ns.loads,
            reuse_factor=reuse,
            device_counters=ns.device_counters,
            host_counters=ns.host_counters,
            local_steals=ns.local_steals,
            kernel_seconds=ns.kernel_seconds,
            kernel_counts=ns.kernel_counts,
            pairs_per_device=ns.pairs_per_device,
            h2d_bytes=ns.h2d_bytes,
            d2h_bytes=ns.d2h_bytes,
            io_bytes=ns.io_bytes,
            parse_seconds=ns.parse_seconds,
            throughput=total_pairs / runtime if runtime > 0 else 0.0,
            aggregate_speed=cfg.aggregate_speed,
            calibration=ns.calibration,
            predicted_runtime=model.predicted_runtime(max(1.0, reuse)),
            model_efficiency=model.efficiency(runtime) if runtime > 0 else 0.0,
            trace=pipeline.trace if cfg.profiling else None,
        )
        return results
