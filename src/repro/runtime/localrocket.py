"""The threaded single-node Rocket runtime executing real pipelines.

Architecture (paper Section 4.3, scaled to one machine): the actual
per-node machinery — worker threads, two :class:`~repro.cache.slots.SlotCache`
levels, the load pipeline and job admission — lives in
:class:`~repro.runtime.pernode.NodePipeline`, which this runtime and
the multi-process :mod:`repro.runtime.cluster` runtime share.  This
class is the single-node configuration: no third cache level, no
global stealing, results written straight into an in-process
:class:`~repro.core.result.ResultMatrix`.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.cache.policy import EvictionPolicy
from repro.cache.slots import CacheCounters
from repro.core.api import Application
from repro.core.scheduler import JobScheduler, SchedulingPolicy, coerce_policy
from repro.core.session import RunHandle, RunState, SessionClosed
from repro.core.workload import Workload
from repro.data.filestore import FileStore
from repro.model.perfmodel import StageCalibration
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.runtime.backend import BackendSession, RocketBackend
from repro.runtime.pernode import NodeEngine, NodePipeline
from repro.scheduling.workstealing import StealOrder, StealPolicy
from repro.util.rng import RngFactory
from repro.util.trace import ProfileTrace, TraceRecorder

__all__ = [
    "RocketConfig",
    "RunStats",
    "LocalRocketRuntime",
    "LocalSession",
    "count_pairs",
]


@dataclass(frozen=True)
class RocketConfig:
    """Tunables of the threaded runtime (mirrors the simulator's config)."""

    n_devices: int = 2
    device_cache_slots: int = 64
    host_cache_slots: int = 256
    concurrent_jobs: int = 8
    leaf_size: int = 4
    #: Pairs per batched kernel launch for apps with ``compare_block``:
    #: an int fixes it, ``"auto"`` sizes it from the online-calibrated
    #: per-pair compare time (see ``StageCalibration.auto_grain``).
    #: Apps without ``compare_block`` ignore it (per-pair jobs).
    grain: "int | str" = "auto"
    cpu_workers: int = 4
    #: Per-device kernel speed factors (< 1 emulates a slower GPU);
    #: length must equal ``n_devices`` when given.
    device_speed_factors: Optional[Tuple[float, ...]] = None
    eviction: EvictionPolicy = EvictionPolicy.LRU
    steal_order: StealOrder = StealOrder.LARGEST
    #: ``UNIFORM`` — the paper's randomized stealing; ``SPEED`` — the
    #: heterogeneity-aware policy: speed-proportional initial
    #: partitioning, victims ranked by estimated remaining time, steal
    #: sizes and job admission scaled by device speed.
    steal_policy: StealPolicy = StealPolicy.UNIFORM
    profiling: bool = False
    seed: int = 0
    #: Hard wall-clock limit: a wedged run raises instead of hanging.
    watchdog_seconds: float = 600.0
    #: Directory of the persistent cross-session store (``repro.store``):
    #: preprocessed payloads persist behind the host cache and computed
    #: pair results are memoized across sessions.  ``None`` disables
    #: both planes.  Shared by every process of a run (the frozen config
    #: ships to cluster node processes) and safe to share between a
    #: daemon and concurrent one-shot CLIs.
    store_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ValueError(f"n_devices must be >= 1, got {self.n_devices}")
        if self.cpu_workers < 1:
            raise ValueError(f"cpu_workers must be >= 1, got {self.cpu_workers}")
        if self.leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {self.leaf_size}")
        if isinstance(self.grain, str):
            if self.grain != "auto":
                raise ValueError(f'grain must be an int or "auto", got {self.grain!r}')
        elif self.grain < 1:
            raise ValueError(f"grain must be >= 1, got {self.grain}")
        if self.device_speed_factors is not None:
            if len(self.device_speed_factors) != self.n_devices:
                raise ValueError(
                    f"{len(self.device_speed_factors)} speed factors for "
                    f"{self.n_devices} devices"
                )
            if any(not 0 < s <= 1.0 for s in self.device_speed_factors):
                # A VirtualDevice can only *stretch* kernel time, so the
                # reference device (1.0) must be the fastest; factors > 1
                # would skew partitioning and calibration with no speedup.
                raise ValueError(
                    f"speed factors must be in (0, 1], got {self.device_speed_factors}"
                )
        if self.watchdog_seconds <= 0:
            raise ValueError("watchdog_seconds must be positive")

    @property
    def device_speeds(self) -> Tuple[float, ...]:
        """Per-device speed factors (1.0 for unspecified devices)."""
        return self.device_speed_factors or (1.0,) * self.n_devices

    @property
    def aggregate_speed(self) -> float:
        """Sum of device speed factors — the model's generalised ``p``."""
        return float(sum(self.device_speeds))


def count_pairs(keys: Sequence[Hashable], pair_filter) -> int:
    """Number of accepted pairs for a key list under an optional filter."""
    n = len(keys)
    if pair_filter is None:
        return n * (n - 1) // 2
    total = sum(
        1 for i in range(n) for j in range(i + 1, n) if pair_filter(keys[i], keys[j])
    )
    if total == 0:
        raise ValueError("pair_filter rejected every pair")
    return total


@dataclass
class RunStats:
    """Measured behaviour of one threaded run."""

    runtime: float
    n_items: int
    n_pairs: int
    loads: int
    reuse_factor: float
    device_counters: CacheCounters
    host_counters: CacheCounters
    local_steals: int
    kernel_seconds: Dict[str, float]
    kernel_counts: Dict[str, int]
    pairs_per_device: Dict[str, int]
    h2d_bytes: int
    d2h_bytes: int
    io_bytes: int
    parse_seconds: float
    throughput: float
    #: Sum of device speed factors the run executed on.
    aggregate_speed: float = 1.0
    #: Online-calibrated stage costs measured while the run executed.
    calibration: Optional[StageCalibration] = None
    #: Calibrated-model runtime at the measured reuse factor R.
    predicted_runtime: float = 0.0
    #: Eq. 5 system efficiency against the calibrated lower bound.
    model_efficiency: float = 0.0
    trace: Optional[TraceRecorder] = None
    #: Persistent item-cache traffic (zero without a ``store_dir``).
    persist_hits: int = 0
    persist_misses: int = 0
    persist_stores: int = 0
    persist_bytes_read: int = 0
    persist_bytes_written: int = 0

    def summary(self) -> str:
        """Short human-readable digest."""
        return (
            f"{self.n_pairs} pairs / {self.n_items} items in {self.runtime:.2f}s "
            f"({self.throughput:.1f} pairs/s); loads={self.loads} (R={self.reuse_factor:.2f}); "
            f"device hit ratio {self.device_counters.hit_ratio():.1%}, "
            f"host hit ratio {self.host_counters.hit_ratio():.1%}; "
            f"steals={self.local_steals}; "
            f"model: predicted {self.predicted_runtime:.2f}s vs measured "
            f"{self.runtime:.2f}s, system efficiency {self.model_efficiency:.1%} "
            f"(aggregate speed {self.aggregate_speed:.2f})"
        )


class LocalRocketRuntime(RocketBackend):
    """Run an :class:`~repro.core.api.Application` all-pairs on one machine.

    ``run(keys, pair_filter=None)`` (inherited) executes one workload
    through a one-shot session; :meth:`open_session` returns a
    :class:`LocalSession` that keeps devices, caches and pools warm
    across many submitted workloads.
    """

    name = "local"

    def __init__(
        self,
        app: Application,
        store: FileStore,
        config: RocketConfig = RocketConfig(),
    ) -> None:
        self.app = app
        self.store = store
        self.config = config
        self.last_stats: Optional[RunStats] = None

    def open_session(
        self,
        capacity_hint: Optional[int] = None,
        *,
        policy="fifo",
        max_active: Optional[int] = None,
    ) -> "LocalSession":
        """Spin up a live single-node session (engine + scheduler loop)."""
        return LocalSession(
            self, capacity_hint=capacity_hint, policy=policy, max_active=max_active
        )

    def _one_shot_session(self, workload: Workload) -> "LocalSession":
        # One known workload: bound the engine's cache slots by its
        # item count instead of allocating the full configured slots.
        return self.open_session(capacity_hint=workload.n_items)


class _LocalJob:
    """One active job's backend-side state in a LocalSession."""

    __slots__ = ("handle", "pipeline", "started", "deadline", "error")

    def __init__(self, handle: RunHandle, pipeline: NodePipeline, deadline: float) -> None:
        self.handle = handle
        self.pipeline = pipeline
        self.started = time.perf_counter()
        self.deadline = deadline
        self.error: Optional[BaseException] = None


class LocalSession(BackendSession):
    """A live local-backend execution context.

    Owns one persistent :class:`~repro.runtime.pernode.NodeEngine`
    (virtual devices, device + host slot caches, thread pools) and a
    scheduler thread multiplexing the submitted workloads over it.
    Under the default FIFO policy jobs execute serially in submission
    order (the historical behaviour, workload blocks handed to the
    pipeline wholesale); under FAIR up to ``max_active`` jobs run
    concurrently, each on its own :class:`~repro.runtime.pernode.NodePipeline`
    borrowing the shared engine, and the
    :class:`~repro.core.scheduler.JobScheduler` grants grain-sized pair
    blocks by weighted virtual time so device share tracks each job's
    ``priority``.  The caches are key-addressed and shared, so any job
    over overlapping keys hits the payloads earlier (or co-running)
    jobs loaded; cache pins are held by the owning job's pipeline, so
    cancelling one job releases exactly its pins and never disturbs a
    co-running job's pinned slots.
    """

    #: Scheduler wake-up backstop; all interesting transitions set the
    #: wake event explicitly, the timeout only bounds lost wake-ups.
    _TICK = 0.02

    def __init__(
        self,
        runtime: LocalRocketRuntime,
        capacity_hint: Optional[int] = None,
        policy="fifo",
        max_active: Optional[int] = None,
    ) -> None:
        self._runtime = runtime
        cfg = runtime.config
        self._engine = NodeEngine(cfg, rngs=RngFactory(cfg.seed), capacity_hint=capacity_hint)
        self.policy = coerce_policy(policy)
        # Grain: a few leaves per grant keeps hand-out overhead low
        # while letting two jobs interleave within tens of pairs.
        self._scheduler = JobScheduler(
            self.policy,
            max_active=max_active,
            grain_pairs=max(8, 4 * cfg.leaf_size),
            window_pairs=max(24, 12 * cfg.leaf_size),
            # FAIR grants block-level: decompose at submit time, on the
            # caller's thread, so a large filtered workload's predicate
            # sweep never stalls the shared admission loop.
            decompose=self.policy is SchedulingPolicy.FAIR,
        )
        self._closed = False
        self._lock = threading.Lock()
        self._active: List[_LocalJob] = []
        #: Session-lifetime observability: the trace holds scheduler
        #: spans plus every finished job's pipeline events (all on this
        #: process's clock — per-job recorders share its origin), the
        #: registry accumulates counters across jobs.
        self._trace = TraceRecorder(enabled=cfg.profiling)
        self._metrics = MetricsRegistry()
        self._job_records: Deque[Dict[str, object]] = deque(maxlen=64)
        self._log = get_logger("session.local")
        self._log.info("session open", policy=self.policy.value)
        self._wake = threading.Event()
        self._thread = threading.Thread(
            target=self._serve, name="rocket-local-session", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------

    def submit(
        self,
        workload: Workload,
        *,
        priority: float = 1.0,
        max_inflight: Optional[int] = None,
    ) -> RunHandle:
        """Queue a workload; returns its handle immediately (QUEUED)."""
        with self._lock:
            if self._closed:
                raise SessionClosed("session is closed")
        # All per-workload heavy lifting runs on the submitting thread,
        # outside the session lock: the serve loop (which takes the
        # same lock every iteration) keeps granting to co-running jobs
        # while a large submission prepares.  Warming grain_blocks
        # first also seeds the accepted-pair counts, so a filtered
        # workload's predicate sweeps each pair exactly once.
        self._runtime.app.validate_keys(workload.keys)
        if self.policy is SchedulingPolicy.FAIR:
            workload.grain_blocks(self._scheduler.grain_pairs)
        handle = RunHandle(workload, priority=priority, max_inflight=max_inflight)
        self._scheduler.submit(handle)
        with self._lock:
            if self._closed:
                # close() raced the preparation: its cancel sweep missed
                # this handle, so resolve it here (the queued hook makes
                # this synchronous) and report the closure.
                handle.cancel()
                raise SessionClosed("session is closed")
        self._wake.set()
        return handle

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Cancel outstanding jobs and tear the engine down.

        The first caller performs the teardown; any other ``close()``
        — a double close, or a second thread racing this one — raises
        :class:`~repro.core.session.SessionClosed` instead of running
        the shutdown sequence twice against the shared engine.
        """
        with self._lock:
            if self._closed:
                raise SessionClosed("session is already closed")
            self._closed = True
            handles = self._scheduler.queued_handles() + self._scheduler.active_handles()
        for handle in handles:
            # Queued handles resolve synchronously through their cancel
            # hook; active ones abort and are retired by the serve loop.
            handle.cancel()
        self._wake.set()
        self._thread.join(timeout=30.0)
        for handle in handles:
            # Belt and braces: if the serve thread wedged (join timed
            # out) a queued handle may still be unresolved — wait() on
            # a closed session must never hang.
            if not handle.done():
                handle._finish(RunState.CANCELLED)
        self._engine.close()
        self._log.info("session closed")

    # ------------------------------------------------------------------

    def _serve(self) -> None:
        """The session's shared admission loop (scheduler thread body)."""
        while True:
            # Idle sessions park on the event (submit/cancel/close set
            # it); the timed tick only runs while jobs are in flight,
            # where it drives watchdogs and grant refills.
            self._wake.wait(timeout=self._TICK if self._active else None)
            self._wake.clear()
            # 1. Retire finished jobs (frees active slots first).
            for job in [j for j in self._active if j.pipeline.done.is_set()]:
                self._active.remove(job)
                try:
                    self._finalize(job)
                except BaseException as exc:  # noqa: BLE001 - session must survive
                    if not job.handle.done():
                        job.handle._finish(RunState.FAILED, error=exc)
                finally:
                    self._scheduler.finish(job.handle)
            # 2. Watchdogs + cancelled jobs that lost their grants.
            now = time.perf_counter()
            for job in self._active:
                if job.handle.cancel_requested:
                    self._scheduler.drop_remaining(job.handle)
                    # A cancel that landed inside the activation window
                    # (queued hook already a no-op, running hook not yet
                    # installed) reaches the pipeline through this poll
                    # instead of idling until the watchdog.
                    job.pipeline.request_stop(abort=True)
                if now > job.deadline and not job.pipeline.done.is_set():
                    job.error = RuntimeError(
                        f"run did not finish within watchdog_seconds="
                        f"{self._runtime.config.watchdog_seconds}; completed "
                        f"{job.pipeline.counters['completed']}/"
                        f"{job.handle.workload.n_pairs} pairs"
                    )
                    self._scheduler.drop_remaining(job.handle)
                    job.pipeline.request_stop(abort=True)
            # 3. Admit queued jobs into free active slots.
            for handle in self._scheduler.admit():
                try:
                    self._activate(handle)
                except BaseException as exc:  # noqa: BLE001
                    self._scheduler.finish(handle)
                    if not handle.done():
                        handle._finish(RunState.FAILED, error=exc)
            # 4. Fair hand-out: grant blocks while windows are open.
            while True:
                grant = self._scheduler.next_grant()
                if grant is None:
                    break
                handle, block, _count = grant
                job = next((j for j in self._active if j.handle is handle), None)
                if job is not None:
                    job.pipeline.inject_block(block)
            with self._lock:
                if self._closed and not self._active and self._scheduler.idle:
                    return

    def _activate(self, handle: RunHandle) -> None:
        """Start one admitted job's pipeline on the shared engine."""
        cfg = self._runtime.config
        workload = handle.workload
        fifo = self.policy is SchedulingPolicy.FIFO
        scheduler = self._scheduler

        if fifo:
            # Hot path kept as lean as the pre-scheduler dispatcher:
            # no window bookkeeping to maintain, and the serve loop
            # only needs a wake-up for the final pair's finalization.
            total = workload.n_pairs

            def emit_result(i, j, value, _h=handle, _total=total):
                _h._record(i, j, value)
                if _h.progress()[0] >= _total:
                    self._wake.set()

        else:

            def emit_result(i, j, value, _h=handle):
                _h._record(i, j, value)
                scheduler.on_completed(_h)
                self._wake.set()

        acct = handle.accounting
        job_id = acct.job_id if acct is not None else None
        if self._trace.enabled and acct is not None:
            # The job's admission-queue wait, as a scheduler-lane span
            # ending now (adjacent to the spans its pipeline records).
            now = self._trace.now()
            self._trace.record(
                "scheduler", "queued", max(0.0, now - acct.queued_seconds), now, job_id
            )
        pipeline = NodePipeline(
            self._runtime.app,
            self._runtime.store,
            cfg,
            workload.keys,
            pair_filter=workload.pair_filter,
            emit_result=emit_result,
            rngs=RngFactory(cfg.seed),
            # Per-job recorder on the session clock: stats keep a
            # per-job trace while profile() merges without rebasing.
            trace=TraceRecorder(enabled=cfg.profiling, origin=self._trace.origin),
            expected_pairs=workload.n_pairs,
            # FIFO hands the decomposition over wholesale (identical to
            # the pre-scheduler behaviour, including speed-proportional
            # initial partitioning); FAIR feeds blocks through the
            # shared admission loop instead.
            initial_blocks=workload.blocks() if fifo else (),
            engine=self._engine,
            max_inflight=handle.max_inflight,
            job_id=job_id,
        )
        self._log.debug("job admitted", job_id=job_id)
        job = _LocalJob(
            handle, pipeline, time.perf_counter() + cfg.watchdog_seconds
        )
        if fifo:
            scheduler.mark_fully_granted(handle)
        # FAIR: the grain quanta were precomputed at submit time
        # (decompose=True) — nothing heavy runs on this thread.
        self._active.append(job)
        pipeline.start()
        handle._mark_running(
            cancel_cb=lambda: (pipeline.request_stop(abort=True), self._wake.set())
        )

    def _finalize(self, job: _LocalJob) -> None:
        """Join a finished job's pipeline and resolve its handle."""
        cfg = self._runtime.config
        handle = job.handle
        pipeline = job.pipeline
        total_pairs = handle.workload.n_pairs
        n = handle.workload.n_items
        try:
            pipeline.join(timeout=10.0)
        finally:
            pipeline.close()  # engine is session-owned: stays warm
        runtime = time.perf_counter() - job.started

        if handle.accounting is not None:
            # FIFO's lean emit path does not credit per-pair
            # completions; sync the count here so partial progress of
            # failed/cancelled jobs reports correctly on every backend.
            handle.accounting.pairs_completed = max(
                handle.accounting.pairs_completed, handle.progress()[0]
            )
        acct = handle.accounting
        job_id = acct.job_id if acct is not None else None
        if self._trace.enabled:
            # The job's running span on the scheduler lane, then the
            # pipeline's per-stage events (already on the session
            # clock — the per-job recorder shares this origin).
            self._trace.record(
                "scheduler", "run",
                max(0.0, job.started - self._trace.origin), self._trace.now(), job_id,
            )
            self._trace.extend(pipeline.trace.events)
        if acct is not None:
            self._job_records.append(acct.to_dict())
            self._metrics.observe("scheduler.grant_latency_seconds", acct.queued_seconds)
            self._metrics.inc("scheduler.blocks_granted", acct.blocks_granted)
        completed_all = (
            handle.progress()[0] == total_pairs
            and job.error is None
            and not pipeline.errors
        )
        if handle.cancel_requested and not completed_all:
            self._metrics.inc("jobs.cancelled")
            self._log.info("job cancelled", job_id=job_id)
            handle._finish(RunState.CANCELLED)
            return
        error = job.error
        if error is None and pipeline.errors:
            error = pipeline.errors[0]
        if error is None and handle.progress()[0] != total_pairs:
            error = RuntimeError(
                f"run ended with {handle.progress()[0]}/{total_pairs} results — "
                f"scheduler bug"
            )
        if error is not None:
            self._metrics.inc("jobs.failed")
            self._log.warning("job failed: %s", error, job_id=job_id)
            handle._finish(RunState.FAILED, error=error)
            return

        ns = pipeline.stats()
        if isinstance(cfg.grain, str) and self._runtime.app.supports_compare_block:
            # grain="auto": the finished job's calibrated per-pair
            # compare time re-sizes the scheduler's grant quanta, so the
            # next submission's grain_blocks() match the batched kernels.
            auto = ns.calibration.auto_grain(lo=cfg.leaf_size)
            if auto is not None:
                self._scheduler.grain_pairs = auto
                self._scheduler.window_pairs = max(3 * auto, self._scheduler.window_pairs)
        reuse = ns.loads / n
        model = ns.calibration.model(
            n_items=n, aggregate_speed=cfg.aggregate_speed, cpu_cores=cfg.cpu_workers
        )
        stats = RunStats(
            runtime=runtime,
            n_items=n,
            n_pairs=total_pairs,
            loads=ns.loads,
            reuse_factor=reuse,
            device_counters=ns.device_counters,
            host_counters=ns.host_counters,
            local_steals=ns.local_steals,
            kernel_seconds=ns.kernel_seconds,
            kernel_counts=ns.kernel_counts,
            pairs_per_device=ns.pairs_per_device,
            h2d_bytes=ns.h2d_bytes,
            d2h_bytes=ns.d2h_bytes,
            io_bytes=ns.io_bytes,
            parse_seconds=ns.parse_seconds,
            throughput=total_pairs / runtime if runtime > 0 else 0.0,
            aggregate_speed=cfg.aggregate_speed,
            calibration=ns.calibration,
            predicted_runtime=model.predicted_runtime(max(1.0, reuse)),
            model_efficiency=model.efficiency(runtime) if runtime > 0 else 0.0,
            trace=pipeline.trace if cfg.profiling else None,
            persist_hits=ns.persist_hits,
            persist_misses=ns.persist_misses,
            persist_stores=ns.persist_stores,
            persist_bytes_read=ns.persist_bytes_read,
            persist_bytes_written=ns.persist_bytes_written,
        )
        self._absorb_stats(stats)
        self._log.info("job done", job_id=job_id)
        self._runtime.last_stats = stats
        handle._finish(RunState.DONE, stats=stats)

    def _absorb_stats(self, stats: RunStats) -> None:
        """Fold one finished job's counters into the session registry."""
        m = self._metrics
        m.inc("jobs.completed")
        m.observe("jobs.runtime_seconds", stats.runtime)
        m.inc("pairs.completed", stats.n_pairs)
        m.inc("pipeline.loads", stats.loads)
        m.inc("pipeline.io_bytes", stats.io_bytes)
        m.inc("pipeline.h2d_bytes", stats.h2d_bytes)
        m.inc("pipeline.d2h_bytes", stats.d2h_bytes)
        for level, counters in (
            ("device", stats.device_counters),
            ("host", stats.host_counters),
        ):
            m.inc(f"cache.{level}.hits", counters.hits + counters.hits_while_writing)
            m.inc(f"cache.{level}.misses", counters.misses)
            m.inc(f"cache.{level}.evictions", counters.evictions)
        m.inc("cache.persistent.hits", stats.persist_hits)
        m.inc("cache.persistent.misses", stats.persist_misses)
        m.inc("cache.persistent.stores", stats.persist_stores)
        m.inc("cache.persistent.bytes_read", stats.persist_bytes_read)
        m.inc("cache.persistent.bytes_written", stats.persist_bytes_written)
        m.inc("steal.local", stats.local_steals)

    # -- observability ---------------------------------------------------

    def metrics(self) -> Dict[str, object]:
        """Session-lifetime metrics snapshot (see :mod:`repro.obs.metrics`)."""
        self._metrics.set_gauge("scheduler.queue_depth", self._scheduler.queued_count)
        self._metrics.set_gauge("scheduler.active_jobs", self._scheduler.active_count)
        snapshot = self._metrics.snapshot()
        snapshot.setdefault("jobs", {})["recent"] = list(self._job_records)
        return snapshot

    def profile(self) -> ProfileTrace:
        """This session's profile (single process: one pid in the merge)."""
        trace = ProfileTrace()
        trace.add_process("rocket-local", self._trace.events, pid=os.getpid())
        return trace
