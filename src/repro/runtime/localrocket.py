"""The threaded single-node Rocket runtime executing real pipelines.

Architecture (paper Section 4.3, scaled to one machine):

- one *worker thread per device* runs the divide-and-conquer loop over
  the pair matrix with hierarchical random work-stealing;
- admitted pair jobs run on a bounded job pool; each job acquires its
  two items through the device cache (sequentially, smaller key first,
  for the deadlock-freedom argument of
  :func:`repro.cache.policy.safe_job_limit`), executes the comparison
  kernel on the owning device's serial kernel thread, copies the result
  D2H and post-processes on the CPU;
- cache misses run the load pipeline: the single I/O lane reads the
  file from the store, the CPU pool parses it, the data is copied H2D
  and pre-processed on the device, then written back into the host
  cache ("data is always written to both the device and host cache");
- both cache levels are :class:`~repro.cache.slots.SlotCache` instances
  (the same policy code the simulator uses) guarded by condition
  variables.

The distributed (third) cache level does not exist here — this runtime
is the paper's single-node configuration; multi-node behaviour is the
simulator's job.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.policy import EvictionPolicy, safe_job_limit
from repro.cache.slots import CacheCounters, Slot, SlotCache, SlotState
from repro.core.api import Application
from repro.core.result import ResultMatrix
from repro.data.filestore import FileStore
from repro.runtime.devices import VirtualDevice
from repro.scheduling.quadtree import PairBlock
from repro.scheduling.throttle import ThreadAdmission
from repro.scheduling.workstealing import StealOrder, TaskDeque, VictimSelector, WorkerTopology
from repro.util.rng import RngFactory
from repro.util.trace import TraceRecorder

__all__ = ["RocketConfig", "RunStats", "LocalRocketRuntime"]


@dataclass(frozen=True)
class RocketConfig:
    """Tunables of the threaded runtime (mirrors the simulator's config)."""

    n_devices: int = 2
    device_cache_slots: int = 64
    host_cache_slots: int = 256
    concurrent_jobs: int = 8
    leaf_size: int = 4
    cpu_workers: int = 4
    #: Per-device kernel speed factors (< 1 emulates a slower GPU);
    #: length must equal ``n_devices`` when given.
    device_speed_factors: Optional[Tuple[float, ...]] = None
    eviction: EvictionPolicy = EvictionPolicy.LRU
    steal_order: StealOrder = StealOrder.LARGEST
    profiling: bool = False
    seed: int = 0
    #: Hard wall-clock limit: a wedged run raises instead of hanging.
    watchdog_seconds: float = 600.0

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ValueError(f"n_devices must be >= 1, got {self.n_devices}")
        if self.cpu_workers < 1:
            raise ValueError(f"cpu_workers must be >= 1, got {self.cpu_workers}")
        if self.leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {self.leaf_size}")
        if self.device_speed_factors is not None and len(self.device_speed_factors) != self.n_devices:
            raise ValueError(
                f"{len(self.device_speed_factors)} speed factors for {self.n_devices} devices"
            )
        if self.watchdog_seconds <= 0:
            raise ValueError("watchdog_seconds must be positive")


@dataclass
class RunStats:
    """Measured behaviour of one threaded run."""

    runtime: float
    n_items: int
    n_pairs: int
    loads: int
    reuse_factor: float
    device_counters: CacheCounters
    host_counters: CacheCounters
    local_steals: int
    kernel_seconds: Dict[str, float]
    kernel_counts: Dict[str, int]
    pairs_per_device: Dict[str, int]
    h2d_bytes: int
    d2h_bytes: int
    io_bytes: int
    parse_seconds: float
    throughput: float
    trace: Optional[TraceRecorder] = None

    def summary(self) -> str:
        """Short human-readable digest."""
        return (
            f"{self.n_pairs} pairs / {self.n_items} items in {self.runtime:.2f}s "
            f"({self.throughput:.1f} pairs/s); loads={self.loads} (R={self.reuse_factor:.2f}); "
            f"device hit ratio {self.device_counters.hit_ratio():.1%}, "
            f"host hit ratio {self.host_counters.hit_ratio():.1%}; "
            f"steals={self.local_steals}"
        )


class _DeviceState:
    """Cache, lock and admission for one device."""

    def __init__(self, device: VirtualDevice, cache: SlotCache, admission: ThreadAdmission) -> None:
        self.device = device
        self.cache = cache
        self.cond = threading.Condition()
        self.admission = admission
        self.pairs_done = 0


class LocalRocketRuntime:
    """Run an :class:`~repro.core.api.Application` all-pairs on one machine."""

    def __init__(
        self,
        app: Application,
        store: FileStore,
        config: RocketConfig = RocketConfig(),
    ) -> None:
        self.app = app
        self.store = store
        self.config = config
        self.last_stats: Optional[RunStats] = None

    # ------------------------------------------------------------------

    def run(self, keys: Sequence[Hashable], pair_filter=None) -> ResultMatrix:
        """Execute the all-pairs comparisons; returns the results.

        ``pair_filter`` (optional, a Section 7 extension) is a predicate
        ``(key_a, key_b) -> bool``; pairs it rejects are skipped without
        being loaded or compared — the paper's "user-defined heuristics
        to reduce the number of pairs".  With a filter the result matrix
        holds only the accepted pairs.

        Statistics of the run are available as :attr:`last_stats`
        afterwards.
        """
        cfg = self.config
        keys = list(keys)
        self.app.validate_keys(keys)
        n = len(keys)
        if pair_filter is None:
            total_pairs = n * (n - 1) // 2
        else:
            total_pairs = sum(
                1
                for i in range(n)
                for j in range(i + 1, n)
                if pair_filter(keys[i], keys[j])
            )
            if total_pairs == 0:
                raise ValueError("pair_filter rejected every pair")

        rngs = RngFactory(cfg.seed)
        results = ResultMatrix(keys)
        trace = TraceRecorder(enabled=cfg.profiling)
        t_origin = time.perf_counter()

        speeds = cfg.device_speed_factors or (1.0,) * cfg.n_devices
        dev_slots = max(2, min(cfg.device_cache_slots, n))
        host_slots = max(2, min(cfg.host_cache_slots, n))
        limit = safe_job_limit(cfg.concurrent_jobs, dev_slots, host_slots, cfg.n_devices)

        states: List[_DeviceState] = []
        for d in range(cfg.n_devices):
            device = VirtualDevice(f"gpu{d}", speed_factor=speeds[d])
            cache = SlotCache(
                dev_slots, policy=cfg.eviction, name=f"device:{d}", rng=rngs.get(f"evict:d{d}")
            )
            states.append(_DeviceState(device, cache, ThreadAdmission(limit)))

        host_cache = SlotCache(
            host_slots, policy=cfg.eviction, name="host", rng=rngs.get("evict:host")
        )
        host_cond = threading.Condition()

        topology = WorkerTopology.from_gpus_per_node([cfg.n_devices])
        selector = VictimSelector(topology, rngs.get("steal"))
        deques: List[TaskDeque] = [TaskDeque(d) for d in range(cfg.n_devices)]
        deques[0].push(PairBlock.root(n))
        sched_lock = threading.Lock()

        counters = {
            "loads": 0,
            "io_bytes": 0,
            "parse_seconds": 0.0,
            "local_steals": 0,
            "submitted": 0,
            "completed": 0,
        }
        counters_lock = threading.Lock()
        done = threading.Event()
        errors: List[BaseException] = []

        io_pool = ThreadPoolExecutor(max_workers=1, thread_name_prefix="io")
        cpu_pool = ThreadPoolExecutor(max_workers=cfg.cpu_workers, thread_name_prefix="cpu")
        job_pool = ThreadPoolExecutor(
            max_workers=max(2, limit * cfg.n_devices), thread_name_prefix="job"
        )

        def fail(exc: BaseException) -> None:
            with counters_lock:
                errors.append(exc)
            done.set()

        def now() -> float:
            return time.perf_counter() - t_origin

        # -- cache machinery -------------------------------------------

        def acquire_device_item(st: _DeviceState, idx: int) -> Slot:
            """Return the device slot of item ``idx``, pinned once."""
            first = True
            while True:
                with st.cond:
                    slot = st.cache.lookup(keys[idx], count=first)
                    first = False
                    if slot is not None and slot.state is SlotState.READ:
                        st.cache.pin(slot)
                        return slot
                    if slot is None:
                        wslot = st.cache.reserve(keys[idx])
                        if wslot is not None:
                            break
                    st.cond.wait(timeout=1.0)
                    if done.is_set() and errors:
                        raise RuntimeError("run aborted")
            try:
                fill_device(st, idx, wslot)
            except BaseException:
                with st.cond:
                    st.cache.abandon(wslot)
                    st.cond.notify_all()
                raise
            return wslot  # published with one reader pin for us

        def release_device_item(st: _DeviceState, slot: Slot) -> None:
            with st.cond:
                st.cache.unpin(slot)
                st.cond.notify_all()

        def fill_device(st: _DeviceState, idx: int, wslot: Slot) -> None:
            """Fill a reserved device slot from host cache or by loading."""
            key = keys[idx]
            host_payload: Optional[np.ndarray] = None
            host_wslot: Optional[Slot] = None
            first = True
            while True:
                with host_cond:
                    slot = host_cache.lookup(key, count=first)
                    first = False
                    if slot is not None and slot.state is SlotState.READ:
                        host_cache.pin(slot)  # refresh recency
                        host_payload = slot.payload
                        host_cache.unpin(slot)
                        break
                    if slot is None:
                        host_wslot = host_cache.reserve(key)
                        if host_wslot is not None:
                            break
                    host_cond.wait(timeout=1.0)
                    if done.is_set() and errors:
                        raise RuntimeError("run aborted")

            if host_payload is not None:
                # Host hit: H2D copy and publish.
                dev_buf = st.device.h2d(host_payload)
                with st.cond:
                    st.cache.publish(wslot, payload=dev_buf, initial_readers=1)
                    st.cond.notify_all()
                return

            # Host miss: run the load pipeline l(i).
            assert host_wslot is not None
            try:
                t0 = now()
                blob = io_pool.submit(self.store.read, self.app.file_name(key)).result()
                trace.record("IO", "io", t0, now())

                t0 = now()
                parsed = cpu_pool.submit(self.app.parse, key, blob).result()
                parse_duration = now() - t0
                trace.record("CPU", "parse", t0, t0 + parse_duration)

                dev_parsed = st.device.h2d(parsed)
                t0 = now()
                dev_item = st.device.run_kernel(self.app.preprocess, key, dev_parsed)
                trace.record(st.device.name, "preprocess", t0, now())

                with counters_lock:
                    counters["loads"] += 1
                    counters["io_bytes"] += len(blob)
                    counters["parse_seconds"] += parse_duration
            except BaseException:
                with host_cond:
                    host_cache.abandon(host_wslot)
                    host_cond.notify_all()
                raise

            # Item is on the device: publish there first, then write the
            # host copy back (both caches end up holding the item).
            with st.cond:
                st.cache.publish(wslot, payload=dev_item, initial_readers=1)
                st.cond.notify_all()
            host_payload = st.device.d2h(dev_item)
            with host_cond:
                host_cache.publish(host_wslot, payload=host_payload)
                host_cond.notify_all()

        # -- job execution ----------------------------------------------

        def run_job(d: int, i: int, j: int) -> None:
            st = states[d]
            try:
                slot_i = acquire_device_item(st, i)
                slot_j = acquire_device_item(st, j)
                try:
                    t0 = now()
                    raw = st.device.run_kernel(
                        self.app.compare, keys[i], slot_i.payload, keys[j], slot_j.payload
                    )
                    trace.record(st.device.name, "compare", t0, now())
                finally:
                    release_device_item(st, slot_i)
                    release_device_item(st, slot_j)
                raw_host = st.device.d2h(raw)
                value = self.app.postprocess(keys[i], keys[j], raw_host)
                results.set(keys[i], keys[j], value)
                st.pairs_done += 1
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                fail(exc)
            finally:
                st.admission.release()
                with counters_lock:
                    counters["completed"] += 1
                    if counters["completed"] == total_pairs:
                        done.set()

        # -- worker loop --------------------------------------------------

        def worker(d: int) -> None:
            st = states[d]
            while not done.is_set():
                with sched_lock:
                    task = deques[d].pop()
                    if task is None:
                        for victim in selector.candidates(d):
                            task = deques[victim].steal(cfg.steal_order)
                            if task is not None:
                                counters["local_steals"] += 1
                                break
                if task is None:
                    with counters_lock:
                        if counters["submitted"] >= total_pairs:
                            return
                    time.sleep(0.0005)
                    continue
                if task.is_leaf(cfg.leaf_size):
                    for (i, j) in task.pairs():
                        if pair_filter is not None and not pair_filter(keys[i], keys[j]):
                            continue
                        while not st.admission.acquire(timeout=0.5):
                            if done.is_set() and errors:
                                return
                        with counters_lock:
                            counters["submitted"] += 1
                        job_pool.submit(run_job, d, i, j)
                else:
                    with sched_lock:
                        deques[d].push_children(task.split())

        # -- run ------------------------------------------------------------

        workers = [
            threading.Thread(target=worker, args=(d,), name=f"worker{d}", daemon=True)
            for d in range(cfg.n_devices)
        ]
        start = time.perf_counter()
        for w in workers:
            w.start()
        try:
            finished = done.wait(timeout=cfg.watchdog_seconds)
            if not finished:
                raise RuntimeError(
                    f"run did not finish within watchdog_seconds={cfg.watchdog_seconds}; "
                    f"completed {counters['completed']}/{total_pairs} pairs"
                )
            for w in workers:
                w.join(timeout=10.0)
            job_pool.shutdown(wait=True)
        finally:
            io_pool.shutdown(wait=False)
            cpu_pool.shutdown(wait=False)
            for st in states:
                st.device.shutdown()
        runtime = time.perf_counter() - start

        if errors:
            raise errors[0]
        if len(results) != total_pairs:
            raise RuntimeError(
                f"run ended with {len(results)}/{total_pairs} results — scheduler bug"
            )

        device_counters = CacheCounters()
        for st in states:
            c = st.cache.counters
            device_counters.hits += c.hits
            device_counters.hits_while_writing += c.hits_while_writing
            device_counters.misses += c.misses
            device_counters.evictions += c.evictions

        self.last_stats = RunStats(
            runtime=runtime,
            n_items=n,
            n_pairs=total_pairs,
            loads=counters["loads"],
            reuse_factor=counters["loads"] / n,
            device_counters=device_counters,
            host_counters=host_cache.counters,
            local_steals=counters["local_steals"],
            kernel_seconds={st.device.name: st.device.kernel_seconds for st in states},
            kernel_counts={st.device.name: st.device.kernel_count for st in states},
            pairs_per_device={st.device.name: st.pairs_done for st in states},
            h2d_bytes=sum(st.device.h2d_bytes for st in states),
            d2h_bytes=sum(st.device.d2h_bytes for st in states),
            io_bytes=counters["io_bytes"],
            parse_seconds=counters["parse_seconds"],
            throughput=total_pairs / runtime if runtime > 0 else 0.0,
            trace=trace if cfg.profiling else None,
        )
        return results
