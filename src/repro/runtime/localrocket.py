"""The threaded single-node Rocket runtime executing real pipelines.

Architecture (paper Section 4.3, scaled to one machine): the actual
per-node machinery — worker threads, two :class:`~repro.cache.slots.SlotCache`
levels, the load pipeline and job admission — lives in
:class:`~repro.runtime.pernode.NodePipeline`, which this runtime and
the multi-process :mod:`repro.runtime.cluster` runtime share.  This
class is the single-node configuration: no third cache level, no
global stealing, results written straight into an in-process
:class:`~repro.core.result.ResultMatrix`.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Sequence, Tuple

from repro.cache.policy import EvictionPolicy
from repro.cache.slots import CacheCounters
from repro.core.api import Application
from repro.core.session import RunHandle, RunState
from repro.core.workload import Workload
from repro.data.filestore import FileStore
from repro.model.perfmodel import StageCalibration
from repro.runtime.backend import BackendSession, RocketBackend
from repro.runtime.pernode import NodeEngine, NodePipeline
from repro.scheduling.workstealing import StealOrder, StealPolicy
from repro.util.rng import RngFactory
from repro.util.trace import TraceRecorder

__all__ = [
    "RocketConfig",
    "RunStats",
    "LocalRocketRuntime",
    "LocalSession",
    "count_pairs",
]


@dataclass(frozen=True)
class RocketConfig:
    """Tunables of the threaded runtime (mirrors the simulator's config)."""

    n_devices: int = 2
    device_cache_slots: int = 64
    host_cache_slots: int = 256
    concurrent_jobs: int = 8
    leaf_size: int = 4
    cpu_workers: int = 4
    #: Per-device kernel speed factors (< 1 emulates a slower GPU);
    #: length must equal ``n_devices`` when given.
    device_speed_factors: Optional[Tuple[float, ...]] = None
    eviction: EvictionPolicy = EvictionPolicy.LRU
    steal_order: StealOrder = StealOrder.LARGEST
    #: ``UNIFORM`` — the paper's randomized stealing; ``SPEED`` — the
    #: heterogeneity-aware policy: speed-proportional initial
    #: partitioning, victims ranked by estimated remaining time, steal
    #: sizes and job admission scaled by device speed.
    steal_policy: StealPolicy = StealPolicy.UNIFORM
    profiling: bool = False
    seed: int = 0
    #: Hard wall-clock limit: a wedged run raises instead of hanging.
    watchdog_seconds: float = 600.0

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ValueError(f"n_devices must be >= 1, got {self.n_devices}")
        if self.cpu_workers < 1:
            raise ValueError(f"cpu_workers must be >= 1, got {self.cpu_workers}")
        if self.leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {self.leaf_size}")
        if self.device_speed_factors is not None:
            if len(self.device_speed_factors) != self.n_devices:
                raise ValueError(
                    f"{len(self.device_speed_factors)} speed factors for "
                    f"{self.n_devices} devices"
                )
            if any(not 0 < s <= 1.0 for s in self.device_speed_factors):
                # A VirtualDevice can only *stretch* kernel time, so the
                # reference device (1.0) must be the fastest; factors > 1
                # would skew partitioning and calibration with no speedup.
                raise ValueError(
                    f"speed factors must be in (0, 1], got {self.device_speed_factors}"
                )
        if self.watchdog_seconds <= 0:
            raise ValueError("watchdog_seconds must be positive")

    @property
    def device_speeds(self) -> Tuple[float, ...]:
        """Per-device speed factors (1.0 for unspecified devices)."""
        return self.device_speed_factors or (1.0,) * self.n_devices

    @property
    def aggregate_speed(self) -> float:
        """Sum of device speed factors — the model's generalised ``p``."""
        return float(sum(self.device_speeds))


def count_pairs(keys: Sequence[Hashable], pair_filter) -> int:
    """Number of accepted pairs for a key list under an optional filter."""
    n = len(keys)
    if pair_filter is None:
        return n * (n - 1) // 2
    total = sum(
        1 for i in range(n) for j in range(i + 1, n) if pair_filter(keys[i], keys[j])
    )
    if total == 0:
        raise ValueError("pair_filter rejected every pair")
    return total


@dataclass
class RunStats:
    """Measured behaviour of one threaded run."""

    runtime: float
    n_items: int
    n_pairs: int
    loads: int
    reuse_factor: float
    device_counters: CacheCounters
    host_counters: CacheCounters
    local_steals: int
    kernel_seconds: Dict[str, float]
    kernel_counts: Dict[str, int]
    pairs_per_device: Dict[str, int]
    h2d_bytes: int
    d2h_bytes: int
    io_bytes: int
    parse_seconds: float
    throughput: float
    #: Sum of device speed factors the run executed on.
    aggregate_speed: float = 1.0
    #: Online-calibrated stage costs measured while the run executed.
    calibration: Optional[StageCalibration] = None
    #: Calibrated-model runtime at the measured reuse factor R.
    predicted_runtime: float = 0.0
    #: Eq. 5 system efficiency against the calibrated lower bound.
    model_efficiency: float = 0.0
    trace: Optional[TraceRecorder] = None

    def summary(self) -> str:
        """Short human-readable digest."""
        return (
            f"{self.n_pairs} pairs / {self.n_items} items in {self.runtime:.2f}s "
            f"({self.throughput:.1f} pairs/s); loads={self.loads} (R={self.reuse_factor:.2f}); "
            f"device hit ratio {self.device_counters.hit_ratio():.1%}, "
            f"host hit ratio {self.host_counters.hit_ratio():.1%}; "
            f"steals={self.local_steals}; "
            f"model: predicted {self.predicted_runtime:.2f}s vs measured "
            f"{self.runtime:.2f}s, system efficiency {self.model_efficiency:.1%} "
            f"(aggregate speed {self.aggregate_speed:.2f})"
        )


class LocalRocketRuntime(RocketBackend):
    """Run an :class:`~repro.core.api.Application` all-pairs on one machine.

    ``run(keys, pair_filter=None)`` (inherited) executes one workload
    through a one-shot session; :meth:`open_session` returns a
    :class:`LocalSession` that keeps devices, caches and pools warm
    across many submitted workloads.
    """

    name = "local"

    def __init__(
        self,
        app: Application,
        store: FileStore,
        config: RocketConfig = RocketConfig(),
    ) -> None:
        self.app = app
        self.store = store
        self.config = config
        self.last_stats: Optional[RunStats] = None

    def open_session(self, capacity_hint: Optional[int] = None) -> "LocalSession":
        """Spin up a live single-node session (engine + dispatcher)."""
        return LocalSession(self, capacity_hint=capacity_hint)

    def _one_shot_session(self, workload: Workload) -> "LocalSession":
        # One known workload: bound the engine's cache slots by its
        # item count instead of allocating the full configured slots.
        return self.open_session(capacity_hint=workload.n_items)


class LocalSession(BackendSession):
    """A live local-backend execution context.

    Owns one persistent :class:`~repro.runtime.pernode.NodeEngine`
    (virtual devices, device + host slot caches, thread pools) and a
    dispatcher thread that executes submitted workloads serially
    against it.  The caches are key-addressed, so a later job over
    overlapping keys hits the payloads earlier jobs loaded — warm-cache
    reuse without any per-job setup cost.
    """

    def __init__(
        self, runtime: LocalRocketRuntime, capacity_hint: Optional[int] = None
    ) -> None:
        self._runtime = runtime
        cfg = runtime.config
        self._engine = NodeEngine(cfg, rngs=RngFactory(cfg.seed), capacity_hint=capacity_hint)
        self._queue: "queue.Queue[Optional[RunHandle]]" = queue.Queue()
        self._closed = False
        self._lock = threading.Lock()
        self._handles: list = []
        self._thread = threading.Thread(
            target=self._serve, name="rocket-local-session", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------

    def submit(self, workload: Workload) -> RunHandle:
        """Queue a workload; returns its handle immediately."""
        with self._lock:
            if self._closed:
                raise RuntimeError("session is closed")
            self._runtime.app.validate_keys(workload.keys)
            handle = RunHandle(workload)
            self._handles.append(handle)
            self._queue.put(handle)
        return handle

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Cancel outstanding jobs and tear the engine down."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles)
        for handle in handles:
            handle.cancel()
        self._queue.put(None)
        self._thread.join(timeout=30.0)
        self._engine.close()

    # ------------------------------------------------------------------

    def _serve(self) -> None:
        while True:
            handle = self._queue.get()
            if handle is None:
                return
            if handle.cancel_requested:
                handle._finish(RunState.CANCELLED)
                continue
            try:
                self._execute(handle)
            except BaseException as exc:  # noqa: BLE001 - session must survive
                if not handle.done():
                    handle._finish(RunState.FAILED, error=exc)

    def _execute(self, handle: RunHandle) -> None:
        cfg = self._runtime.config
        workload = handle.workload
        n = workload.n_items
        total_pairs = workload.n_pairs

        pipeline = NodePipeline(
            self._runtime.app,
            self._runtime.store,
            cfg,
            workload.keys,
            pair_filter=workload.pair_filter,
            emit_result=handle._record,
            rngs=RngFactory(cfg.seed),
            expected_pairs=total_pairs,
            initial_blocks=workload.blocks(),
            engine=self._engine,
        )
        handle._mark_running(cancel_cb=lambda: pipeline.request_stop(abort=True))

        start = time.perf_counter()
        pipeline.start()
        try:
            error: Optional[BaseException] = None
            finished = pipeline.wait(cfg.watchdog_seconds)
            if not finished:
                pipeline.request_stop(abort=True)
                error = RuntimeError(
                    f"run did not finish within watchdog_seconds={cfg.watchdog_seconds}; "
                    f"completed {pipeline.counters['completed']}/{total_pairs} pairs"
                )
            pipeline.join(timeout=10.0)
        finally:
            pipeline.close()
        runtime = time.perf_counter() - start

        if handle.cancel_requested:
            handle._finish(RunState.CANCELLED)
            return
        if error is None and pipeline.errors:
            error = pipeline.errors[0]
        if error is None and handle.progress()[0] != total_pairs:
            error = RuntimeError(
                f"run ended with {handle.progress()[0]}/{total_pairs} results — "
                f"scheduler bug"
            )
        if error is not None:
            handle._finish(RunState.FAILED, error=error)
            return

        ns = pipeline.stats()
        reuse = ns.loads / n
        model = ns.calibration.model(
            n_items=n, aggregate_speed=cfg.aggregate_speed, cpu_cores=cfg.cpu_workers
        )
        stats = RunStats(
            runtime=runtime,
            n_items=n,
            n_pairs=total_pairs,
            loads=ns.loads,
            reuse_factor=reuse,
            device_counters=ns.device_counters,
            host_counters=ns.host_counters,
            local_steals=ns.local_steals,
            kernel_seconds=ns.kernel_seconds,
            kernel_counts=ns.kernel_counts,
            pairs_per_device=ns.pairs_per_device,
            h2d_bytes=ns.h2d_bytes,
            d2h_bytes=ns.d2h_bytes,
            io_bytes=ns.io_bytes,
            parse_seconds=ns.parse_seconds,
            throughput=total_pairs / runtime if runtime > 0 else 0.0,
            aggregate_speed=cfg.aggregate_speed,
            calibration=ns.calibration,
            predicted_runtime=model.predicted_runtime(max(1.0, reuse)),
            model_efficiency=model.efficiency(runtime) if runtime > 0 else 0.0,
            trace=pipeline.trace if cfg.profiling else None,
        )
        self._runtime.last_stats = stats
        handle._finish(RunState.DONE, stats=stats)
