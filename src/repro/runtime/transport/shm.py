"""Zero-copy payload plane over ``multiprocessing.shared_memory``.

With the queue transport, every remote cache hit pickles the full
pre-processed NumPy array through a pipe: provider copy → pickle →
pipe write → pipe read → unpickle.  Here the payload plane is replaced
by shared segments:

- the coordinator creates one fixed-size segment *per node* before the
  workers start (so the parent owns every name and can unlink them all
  at teardown, even after a node crash — no leaked ``/dev/shm``
  entries);
- a provider serving a remote fetch allocates a slot from the
  :class:`~repro.core.buffers.BufferPool` over *its own* segment,
  writes the payload with one memcpy, and ships a tiny
  :class:`ShmDescriptor` ``(segment, offset, shape, dtype)`` instead of
  the array — the message wire carries ~100 bytes regardless of
  payload size;
- the requester maps the provider's segment (attached once, cached),
  copies the payload out, and returns the slot with a ``("pfree", ...)``
  message to the owner.  A reply that lands after the requester timed
  out is freed the same way, so abandoned slots only live until the
  next drain.

When a pool is exhausted the provider falls back to inline shipping
(the queue behaviour), trading bytes for progress — allocation failure
is never an error.  Segment ownership stays with the coordinator
throughout; Python's ``resource_tracker`` (shared by all workers)
remains a last-resort safety net if the coordinator itself is killed.
"""

from __future__ import annotations

import pickle
import uuid
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.buffers import BufferPool
from repro.runtime.transport.base import Transport
from repro.runtime.transport.queues import QueueFabric, QueueTransport

__all__ = ["ShmDescriptor", "SharedMemoryTransport", "SharedMemoryFabric"]


@dataclass(frozen=True)
class ShmDescriptor:
    """Out-of-band payload handle: where the bytes live, not the bytes.

    ``owner`` is the node whose segment (and pool slot) holds the
    payload; the receiver's release message goes back to it.
    """

    owner: int
    segment: str
    offset: int
    nbytes: int
    dtype: str
    shape: Tuple[int, ...]


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting ownership.

    On 3.9-3.12 attaching re-registers the segment with the
    ``resource_tracker`` (bpo-39959), but workers share the
    coordinator's tracker process (inherited under ``fork``, passed via
    ``--tracker-fd`` under ``spawn``), so the re-registration is a
    set-add no-op and the coordinator's unlink unregisters exactly
    once.  Unregistering here would *remove* the coordinator's own
    registration and break the tracker's crash safety net, so we
    deliberately leave tracking alone.
    """
    return shared_memory.SharedMemory(name=name)


class SharedMemoryTransport(QueueTransport):
    """Queue messaging + shared-memory payload plane for one node."""

    def __init__(
        self,
        node_id: int,
        inboxes,
        coordinator,
        segment_names: List[str],
        segment_bytes: int,
    ) -> None:
        super().__init__(node_id, inboxes, coordinator)
        self._segment_names = list(segment_names)
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._own = self._attach_segment(self._segment_names[node_id])
        self.pool = BufferPool(segment_bytes)

    def _attach_segment(self, name: str) -> shared_memory.SharedMemory:
        seg = self._segments.get(name)
        if seg is None:
            seg = self._segments[name] = _attach(name)
        return seg

    # -- payload plane ---------------------------------------------------

    def pack_payload(self, arr: np.ndarray) -> Any:
        """Write ``arr`` into this node's segment; descriptor or fallback."""
        if arr.dtype.hasobject:
            return arr  # not byte-addressable; ship inline
        src = np.ascontiguousarray(arr)
        offset = self.pool.alloc(src.nbytes)
        if offset is None:
            return arr  # pool exhausted; ship inline
        dst = np.ndarray(src.shape, dtype=src.dtype, buffer=self._own.buf, offset=offset)
        dst[...] = src
        return ShmDescriptor(
            owner=self.node_id,
            segment=self._own.name,
            offset=offset,
            nbytes=int(src.nbytes),
            dtype=src.dtype.str,
            shape=tuple(src.shape),
        )

    def unpack_payload(
        self, packed: Any, send_node: Callable[[int, Tuple], None]
    ) -> Optional[np.ndarray]:
        """Copy the payload out of the owner's segment and release the slot."""
        if not isinstance(packed, ShmDescriptor):
            return packed
        try:
            seg = self._attach_segment(packed.segment)
        except FileNotFoundError:
            # The owner's segment was unlinked (the node left the
            # cluster between its reply and our read): a clean miss —
            # the caller falls back to a local load.
            return None
        view = np.ndarray(
            packed.shape,
            dtype=np.dtype(packed.dtype),
            buffer=seg.buf,
            offset=packed.offset,
        )
        arr = view.copy()
        self.release_payload(packed, send_node)
        return arr

    def release_payload(
        self, packed: Any, send_node: Callable[[int, Tuple], None]
    ) -> None:
        """Return a descriptor's slot to its owner without copying."""
        if not isinstance(packed, ShmDescriptor):
            return
        if packed.owner == self.node_id:
            self.pool.free(packed.offset)
        else:
            send_node(packed.owner, ("pfree", packed.offset))

    def wire_bytes(self, packed: Any) -> int:
        if isinstance(packed, ShmDescriptor):
            return len(pickle.dumps(packed, protocol=pickle.HIGHEST_PROTOCOL))
        return super().wire_bytes(packed)

    def handle_free(self, msg: Tuple) -> None:
        """A receiver finished copying: return the slot to our pool."""
        _, offset = msg
        try:
            self.pool.free(offset)
        except ValueError:
            pass  # duplicate/late release after a drain; slot already reclaimed

    # -- result / dispatch planes ------------------------------------------

    def pack_result_block(self, block: Tuple) -> Any:
        """Ship a numeric result block as an ``(n, 3)`` segment write.

        Pair indices are exact in float64 (they are far below 2**53)
        and float scores round-trip bit-identically, so the coordinator
        reconstructs the same triples.  Blocks carrying non-scalar
        values (an app may emit arbitrary objects) travel inline
        unchanged, as does everything when the pool is exhausted —
        ``pack_payload`` then returns the array, which the fabric still
        decodes without the per-triple pickle.
        """
        rows = np.empty((len(block), 3), dtype=np.float64)
        for k, (i, j, value) in enumerate(block):
            if isinstance(value, bool) or not isinstance(
                value, (int, float, np.integer, np.floating)
            ):
                return block
            rows[k, 0] = i
            rows[k, 1] = j
            rows[k, 2] = value
        return self.pack_payload(rows)

    def unpack_job_payload(self, packed: Any) -> Any:
        """Unpickle a job spec from the coordinator's segment.

        The slot is released with a ``("pfree", offset)`` message to
        the coordinator (descriptor owner ``-1``), mirroring the
        node-to-node payload release path.
        """
        if not isinstance(packed, ShmDescriptor):
            return packed
        seg = self._attach_segment(packed.segment)
        blob = bytes(seg.buf[packed.offset : packed.offset + packed.nbytes])
        self.send_coordinator(("pfree", packed.offset))
        return pickle.loads(blob)

    def close(self) -> None:
        """Unmap attached segments (never unlinks; the coordinator owns them)."""
        for seg in self._segments.values():
            try:
                seg.close()
            except Exception:
                pass
        self._segments.clear()


class SharedMemoryFabric(QueueFabric):
    """Queue fabric plus one owned shared segment per node.

    Segments are created (and named) by the coordinator before the
    workers start and unlinked unconditionally in :meth:`shutdown`,
    which runs in the coordinator's ``finally`` — the crash of any
    worker therefore cannot leak ``/dev/shm`` entries.
    """

    name = "shm"
    #: ``/dev/shm`` name prefix of every segment this transport creates.
    SEGMENT_PREFIX = "rocketshm"

    def __init__(self, ctx, cluster) -> None:
        super().__init__(ctx, cluster)
        self.segment_bytes = cluster.shm_segment_bytes
        token = uuid.uuid4().hex[:8]
        self._owned: List[shared_memory.SharedMemory] = []
        self._seg_by_name: Dict[str, shared_memory.SharedMemory] = {}
        self.segment_names: List[str] = []
        try:
            # One segment per *slot* (see QueueFabric: elastic sessions
            # pre-allocate room for nodes joining later).
            for i in range(getattr(cluster, "capacity", cluster.n_nodes)):
                seg = shared_memory.SharedMemory(
                    name=f"{self.SEGMENT_PREFIX}_{token}_n{i}",
                    create=True,
                    size=self.segment_bytes,
                )
                self._owned.append(seg)
                self._seg_by_name[seg.name] = seg
                self.segment_names.append(seg.name)
            # One extra coordinator-owned segment carries job dispatch
            # payloads (keys, filter, blocks) the other way: nodes read
            # the pickled spec out and release the slot with a pfree.
            coord = shared_memory.SharedMemory(
                name=f"{self.SEGMENT_PREFIX}_{token}_coord",
                create=True,
                size=self.segment_bytes,
            )
            self._owned.append(coord)
            self._seg_by_name[coord.name] = coord
            self.coord_segment_name = coord.name
            self._coord_pool: Optional[BufferPool] = BufferPool(self.segment_bytes)
        except BaseException:
            self.shutdown()
            raise

    def endpoint(self, node_id: int) -> SharedMemoryTransport:
        return SharedMemoryTransport(
            node_id, self.inboxes, self.coordinator, self.segment_names, self.segment_bytes
        )

    # -- result / dispatch planes ------------------------------------------

    def _owned_segment(self, name: str) -> Optional[shared_memory.SharedMemory]:
        return self._seg_by_name.get(name)

    def pack_job_payload(self, spec: Any) -> Any:
        """Pickle one node's job spec into the coordinator segment."""
        pool = self._coord_pool
        coord = self._seg_by_name.get(getattr(self, "coord_segment_name", ""))
        if pool is None or coord is None:
            return spec
        blob = pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
        offset = pool.alloc(len(blob))
        if offset is None:
            return spec  # pool exhausted; ship inline
        coord.buf[offset : offset + len(blob)] = blob
        return ShmDescriptor(
            owner=-1,  # the coordinator, not a node
            segment=coord.name,
            offset=offset,
            nbytes=len(blob),
            dtype="|u1",
            shape=(len(blob),),
        )

    def decode_result_block(self, block: Any) -> Tuple:
        """Materialise a result block shipped through a node's segment."""
        if isinstance(block, ShmDescriptor):
            seg = self._owned_segment(block.segment)
            if seg is None:
                # The owning node's segment was already released (it
                # left the cluster); the straggler block's pairs are
                # recovered through re-injection, so drop it.
                return ()
            view = np.ndarray(
                block.shape, dtype=np.dtype(block.dtype), buffer=seg.buf, offset=block.offset
            )
            rows = view.copy()
            try:
                self.send_node(block.owner, ("pfree", block.offset))
            except Exception:
                pass  # node already gone; its pool dies with it
            block = rows
        if isinstance(block, np.ndarray):
            return tuple((int(i), int(j), float(v)) for i, j, v in block)
        return block

    def handle_free(self, msg: Tuple) -> None:
        """A node finished reading a job payload: reclaim the slot."""
        _, offset = msg
        pool = self._coord_pool
        if pool is None:
            return
        try:
            pool.free(offset)
        except ValueError:
            pass  # duplicate/late release; slot already reclaimed

    def release_node_segment(self, node: int) -> None:
        """Unlink a departed node's segment now, not at session close.

        A SIGKILLed worker never unmaps anything itself; dropping the
        coordinator's handle here removes the ``/dev/shm`` entry as
        soon as the death is handled.  Survivors holding descriptors
        into the segment see a clean miss (``unpack_payload`` treats
        the vanished name as payload-gone).  Idempotent.
        """
        if not 0 <= node < len(self.segment_names):
            return
        seg = self._seg_by_name.pop(self.segment_names[node], None)
        if seg is None:
            return  # already released
        try:
            self._owned.remove(seg)
        except ValueError:
            pass
        try:
            seg.close()
        except Exception:
            pass
        try:
            seg.unlink()
        except Exception:
            pass

    def shutdown(self) -> None:
        super().shutdown()
        owned, self._owned = self._owned, []
        self._seg_by_name = {}
        self._coord_pool = None
        for seg in owned:
            try:
                seg.close()
            except Exception:
                pass
            try:
                seg.unlink()
            except Exception:
                pass

    # Worker processes receive the fabric through ``Process`` args; under
    # ``spawn`` that pickles it, and owned handles must stay with the
    # coordinator (workers re-attach by name).
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_owned"] = []
        state["_seg_by_name"] = {}
        state["_coord_pool"] = None
        return state
