"""Pluggable data plane of the multi-process cluster runtime.

- :mod:`repro.runtime.transport.base` — the :class:`Transport` /
  :class:`TransportFabric` interfaces, the name registry, and the
  :class:`ResultBatcher` that coalesces per-pair result messages;
- :mod:`repro.runtime.transport.queues` — the baseline transport:
  inline payloads pickled through ``multiprocessing`` queues;
- :mod:`repro.runtime.transport.shm` — the zero-copy transport:
  payloads in coordinator-owned ``multiprocessing.shared_memory``
  segments carved by a :class:`~repro.core.buffers.BufferPool`, with
  only ``(segment, offset, shape, dtype)`` descriptors on the wire.

Select with ``ClusterConfig(transport="queue"|"shm")``, or register
your own fabric under a new name with :func:`register_transport`.
"""

from repro.runtime.transport.base import (
    ResultBatcher,
    Transport,
    TransportFabric,
    available_transports,
    create_fabric,
    register_transport,
)
from repro.runtime.transport.queues import QueueFabric, QueueTransport
from repro.runtime.transport.shm import (
    SharedMemoryFabric,
    SharedMemoryTransport,
    ShmDescriptor,
)

__all__ = [
    "Transport",
    "TransportFabric",
    "ResultBatcher",
    "QueueTransport",
    "QueueFabric",
    "SharedMemoryTransport",
    "SharedMemoryFabric",
    "ShmDescriptor",
    "available_transports",
    "create_fabric",
    "register_transport",
]

register_transport(QueueFabric.name, QueueFabric, overwrite=True)
register_transport(SharedMemoryFabric.name, SharedMemoryFabric, overwrite=True)
