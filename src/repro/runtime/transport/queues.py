"""The baseline transport: everything rides in ``multiprocessing`` queues.

One inbox queue per node plus one coordinator queue (pipes
underneath).  Payload arrays travel *inline*: the provider puts the
NumPy array straight into the reply message and the queue's feeder
thread pickles the whole thing through the pipe — simple, portable,
and exactly what PR 1 shipped.  The zero-copy shared-memory transport
(:mod:`repro.runtime.transport.shm`) reuses this messaging layer and
replaces only the payload plane.
"""

from __future__ import annotations

import queue
from typing import Any, Optional, Sequence, Tuple

from repro.runtime.transport.base import Transport, TransportFabric

__all__ = ["QueueTransport", "QueueFabric"]


class QueueTransport(Transport):
    """Point-to-point messaging over per-node inbox queues.

    Works with ``multiprocessing`` queues in the real runtime and with
    any object exposing ``put`` / ``get(timeout=)`` in tests.  Inherits
    the inline payload plane from :class:`Transport`: ``pack_payload``
    is the identity and ``wire_bytes`` is the array size.
    """

    def __init__(self, node_id: int, inboxes: Sequence[Any], coordinator: Any) -> None:
        super().__init__(node_id)
        self._inboxes = list(inboxes)
        self._coordinator = coordinator

    def send_node(self, node: int, msg: Tuple) -> None:
        self._inboxes[node].put(msg)

    def send_coordinator(self, msg: Tuple) -> None:
        self._coordinator.put(msg)

    def recv(self, timeout: float) -> Optional[Tuple]:
        try:
            return self._inboxes[self.node_id].get(timeout=timeout)
        except queue.Empty:
            return None


class QueueFabric(TransportFabric):
    """Owns the per-node inboxes and the coordinator queue of one run."""

    name = "queue"

    def __init__(self, ctx, cluster) -> None:
        self.n_nodes = cluster.n_nodes
        # One inbox per *slot*, not per initial node: mp queues cannot
        # be created after the workers fork, so an elastic session
        # pre-allocates the inboxes that later add_node() calls use.
        capacity = getattr(cluster, "capacity", cluster.n_nodes)
        self.inboxes = [ctx.Queue() for _ in range(capacity)]
        self.coordinator = ctx.Queue()

    def endpoint(self, node_id: int) -> QueueTransport:
        return QueueTransport(node_id, self.inboxes, self.coordinator)

    def send_node(self, node: int, msg: Tuple) -> None:
        # Raises if the queue is broken: a lost steal grant would
        # otherwise strand its block silently (best-effort callers like
        # the stop broadcast catch per-node failures themselves).
        self.inboxes[node].put(msg)

    def recv_coordinator(self, timeout: float) -> Optional[Tuple]:
        try:
            return self.coordinator.get(timeout=timeout)
        except queue.Empty:
            return None

    def shutdown(self) -> None:
        for q in [*self.inboxes, self.coordinator]:
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:
                pass
