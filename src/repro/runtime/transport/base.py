"""The transport abstraction of the cluster data plane.

The multi-process runtime separates *what* the protocols say (the
mediator/steal/result messages handled by
:class:`~repro.runtime.cluster.NodeCommServer`) from *how bytes move
between processes*.  The latter is this module's job, split into two
interfaces so the wire format is swappable and benchmarkable (the
pluggable-runner pattern of pipeline frameworks):

- :class:`TransportFabric` — the coordinator-side object.  It owns the
  shared communication resources (queues, shared-memory segments), is
  created before the worker processes fork/spawn, hands each worker its
  endpoint via :meth:`TransportFabric.endpoint`, and tears everything
  down — including unlinking shared segments after a node crash — in
  :meth:`TransportFabric.shutdown`;

- :class:`Transport` — one node's endpoint: point-to-point messaging
  (``send_node`` / ``send_coordinator`` / ``recv``) plus the *payload
  plane* hooks (``pack_payload`` / ``unpack_payload`` / ``wire_bytes``)
  that decide whether a cache payload travels inline (pickled through
  the message, the queue transport) or out-of-band (a shared-memory
  descriptor, the zero-copy transport).

The base class implements the inline payload plane, so a transport
that only cares about messaging (tests, the queue transport) overrides
nothing else.  Concrete fabrics register themselves in a name registry
mirroring :mod:`repro.runtime.backend`, which is what makes
``ClusterConfig(transport="shm")`` and ``run --transport shm`` work
without imports at the call site.

:class:`ResultBatcher` lives here too: it turns the per-pair
``emit_result`` stream of :class:`~repro.runtime.pernode.NodePipeline`
into flushed ``("results", node, block)`` messages, dropping
coordinator traffic from O(pairs) to O(pairs / batch) on any transport.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "Transport",
    "TransportFabric",
    "ResultBatcher",
    "available_transports",
    "create_fabric",
    "register_transport",
]


class Transport(ABC):
    """One node's endpoint of the cluster data plane.

    Messaging is abstract; the payload plane defaults to *inline*
    shipping (the payload array rides in the message and is pickled by
    whatever carries the message).  Zero-copy transports override the
    three payload hooks and :meth:`handle_free`.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    # -- messaging -------------------------------------------------------

    @abstractmethod
    def send_node(self, node: int, msg: Tuple) -> None:
        """Deliver ``msg`` to node ``node``'s inbox."""

    @abstractmethod
    def send_coordinator(self, msg: Tuple) -> None:
        """Deliver ``msg`` to the coordinator."""

    @abstractmethod
    def recv(self, timeout: float) -> Optional[Tuple]:
        """Next message for this node, or None after ``timeout`` seconds."""

    # -- payload plane ---------------------------------------------------

    def pack_payload(self, arr: np.ndarray) -> Any:
        """Prepare a cache payload for shipping inside a message.

        Returns either the array itself (inline) or a small descriptor
        whose bytes live out-of-band; the result must be picklable.
        """
        return arr

    def unpack_payload(
        self, packed: Any, send_node: Callable[[int, Tuple], None]
    ) -> Optional[np.ndarray]:
        """Materialise a packed payload on the receiving node.

        ``send_node`` lets descriptor transports send their release
        message through the caller (so protocol accounting sees it).
        """
        return packed

    def release_payload(
        self, packed: Any, send_node: Callable[[int, Tuple], None]
    ) -> None:
        """Discard a packed payload without materialising it.

        Used for replies that arrive after the requester gave up: a
        descriptor transport frees the out-of-band slot (no payload
        copy); inline payloads need nothing.
        """

    def wire_bytes(self, packed: Any) -> int:
        """Bytes this packed payload puts on the message wire."""
        if isinstance(packed, np.ndarray):
            return int(packed.nbytes)
        return 0

    def handle_free(self, msg: Tuple) -> None:
        """Process a payload-slot release message (descriptor transports)."""

    # -- result / dispatch planes ------------------------------------------

    def pack_result_block(self, block: Tuple) -> Any:
        """Prepare one result block for the ``("results", ...)`` message.

        Default: the block of ``(i, j, value)`` triples travels inline.
        Zero-copy transports may return a descriptor whose bytes live in
        a shared segment; the coordinator materialises it through
        :meth:`TransportFabric.decode_result_block`.
        """
        return block

    def unpack_job_payload(self, packed: Any) -> Any:
        """Materialise a job spec packed by
        :meth:`TransportFabric.pack_job_payload` (identity by default).
        """
        return packed

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release endpoint-local resources (called at node shutdown)."""


class TransportFabric(ABC):
    """Coordinator-side owner of one run's communication resources.

    Created in the coordinator *before* the worker processes start so
    every shared resource (queue, segment) has a single owner that can
    clean up deterministically — even when workers crash.
    """

    @abstractmethod
    def endpoint(self, node_id: int) -> Transport:
        """Build node ``node_id``'s endpoint (called inside the worker)."""

    @abstractmethod
    def send_node(self, node: int, msg: Tuple) -> None:
        """Coordinator-to-node message (steal probes, grants, stop).

        Raises when delivery fails so messages carrying state (steal
        grants) are never dropped silently; best-effort callers catch.
        """

    @abstractmethod
    def recv_coordinator(self, timeout: float) -> Optional[Tuple]:
        """Next node-to-coordinator message, or None after ``timeout``."""

    @abstractmethod
    def shutdown(self) -> None:
        """Tear down all shared resources (idempotent; crash-safe)."""

    # -- result / dispatch planes ------------------------------------------

    def pack_job_payload(self, spec: Any) -> Any:
        """Prepare one node's job hand-out ``(keys, pair_filter, blocks)``.

        Default: the spec rides inline in the ``("job", ...)`` message.
        Zero-copy fabrics may pickle it into a coordinator-owned shared
        segment and return a descriptor; the node materialises it with
        :meth:`Transport.unpack_job_payload` and releases the slot with
        a ``("pfree", offset)`` message routed back here through
        :meth:`handle_free`.
        """
        return spec

    def decode_result_block(self, block: Any) -> Tuple:
        """Materialise a result block packed by
        :meth:`Transport.pack_result_block` (identity by default).
        """
        return block

    def handle_free(self, msg: Tuple) -> None:
        """Release a coordinator-owned payload slot (descriptor fabrics)."""

    def release_node_segment(self, node: int) -> None:
        """Unlink shared resources reserved for ``node`` (idempotent).

        Called when a node leaves the cluster — crash, retirement —
        so its out-of-band buffers (e.g. ``/dev/shm`` segments) are
        reclaimed immediately instead of at session close.  Queue-style
        fabrics hold nothing per-node out of band and keep the no-op.
        """


# ----------------------------------------------------------------------
# Result batching


class ResultBatcher:
    """Coalesce per-pair results into flushed ``("results", ...)`` blocks.

    ``emit`` is called from the pipeline's job threads; a full batch is
    sent inline from the emitting thread.  Partial batches are pushed
    out by :meth:`maybe_flush`, which the node's comm loop calls every
    poll tick, so the coordinator's completion count never stalls more
    than one tick behind the pipeline.  ``batch_size=1`` reproduces the
    old one-message-per-pair behaviour exactly.
    """

    def __init__(
        self,
        send: Callable[[Tuple], None],
        node_id: int,
        batch_size: int,
        max_delay: float = 0.05,
        job_id: Optional[int] = None,
        pack: Optional[Callable[[Tuple], Any]] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._send = send
        #: Optional transport hook (``Transport.pack_result_block``):
        #: lets a zero-copy transport ship the block as a shared-memory
        #: descriptor instead of pickling every triple through the pipe.
        self._pack = pack
        self.node_id = node_id
        #: When set, batches go out job-tagged as
        #: ``("results", node, job_id, block)`` so a coordinator serving
        #: several concurrent jobs can route them; None keeps the
        #: single-job ``("results", node, block)`` shape.
        self.job_id = job_id
        self.batch_size = batch_size
        self.max_delay = max_delay
        self._lock = threading.Lock()
        self._buf: List[Tuple[int, int, Any]] = []
        self._oldest = 0.0
        self.batches_sent = 0
        self.results_sent = 0

    def emit(self, i: int, j: int, value: Any) -> None:
        """Queue one pair result; flushes when the batch fills."""
        with self._lock:
            if not self._buf:
                self._oldest = time.monotonic()
            self._buf.append((i, j, value))
            block = self._take_locked() if len(self._buf) >= self.batch_size else None
        if block:
            self._ship(block)

    def maybe_flush(self) -> None:
        """Flush a partial batch older than ``max_delay`` (comm-loop tick)."""
        with self._lock:
            if not self._buf or time.monotonic() - self._oldest < self.max_delay:
                return
            block = self._take_locked()
        self._ship(block)

    def flush(self) -> None:
        """Flush whatever is buffered (node shutdown)."""
        with self._lock:
            block = self._take_locked()
        if block:
            self._ship(block)

    def _take_locked(self) -> Tuple[Tuple[int, int, Any], ...]:
        block, self._buf = tuple(self._buf), []
        return block

    def _ship(self, block: Tuple[Tuple[int, int, Any], ...]) -> None:
        self.batches_sent += 1
        self.results_sent += len(block)
        payload: Any = block if self._pack is None else self._pack(block)
        if self.job_id is None:
            self._send(("results", self.node_id, payload))
        else:
            self._send(("results", self.node_id, self.job_id, payload))


# ----------------------------------------------------------------------
# Registry

_FABRICS: Dict[str, Callable[..., TransportFabric]] = {}


def register_transport(
    name: str, factory: Callable[..., TransportFabric], overwrite: bool = False
) -> None:
    """Register a fabric factory ``(ctx, cluster_config) -> fabric``."""
    if name in _FABRICS and not overwrite:
        raise ValueError(f"transport {name!r} is already registered")
    _FABRICS[name] = factory


def available_transports() -> Tuple[str, ...]:
    """Names of the registered transports, sorted."""
    return tuple(sorted(_FABRICS))


def create_fabric(name: str, ctx, cluster) -> TransportFabric:
    """Instantiate transport ``name`` for one cluster run.

    ``ctx`` is the ``multiprocessing`` context, ``cluster`` the
    :class:`~repro.runtime.cluster.ClusterConfig` (node count, segment
    sizing, timeouts).
    """
    try:
        factory = _FABRICS[name]
    except KeyError:
        raise ValueError(
            f"unknown transport {name!r}; available: {', '.join(available_transports())}"
        ) from None
    return factory(ctx, cluster)
