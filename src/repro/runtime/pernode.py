"""The per-node execution pipeline shared by the local and cluster runtimes.

:class:`NodePipeline` is the machinery that used to live inside
``LocalRocketRuntime``, extracted so that both the single-process
runtime and the multi-process cluster runtime run the *same* code for
everything that happens inside one node (paper Section 4.3):

- one worker thread per device runs the divide-and-conquer loop over
  the pair matrix with hierarchical random work-stealing;
- admitted pair jobs run on a bounded job pool; each job acquires its
  two items through the device cache (sequentially, smaller key first,
  for the deadlock-freedom argument of
  :func:`repro.cache.policy.safe_job_limit`), executes the comparison
  kernel on the owning device's serial kernel thread, copies the result
  D2H and post-processes on the CPU;
- cache misses run the load pipeline: the single I/O lane reads the
  file from the store, the CPU pool parses it, the data is copied H2D
  and pre-processed on the device, then written back into the host
  cache ("data is always written to both the device and host cache").

What differs between the runtimes is injected as hooks:

- ``emit_result(i, j, value)`` — local: write into the in-process
  :class:`~repro.core.result.ResultMatrix`; cluster: stream the pair to
  the coordinator;
- ``remote_fetch(idx)`` — the third (distributed) cache level,
  consulted after a host-cache miss and before the load pipeline;
  ``None`` (the local runtime) skips straight to loading;
- ``global_steal()`` — called when the local deques are all empty;
  cluster nodes use it to steal :class:`~repro.scheduling.quadtree.PairBlock`
  subtrees from remote nodes through the coordinator.

Idle workers block on a condition variable (``work_cond``) that is
notified whenever tasks are pushed, a job completes, or the run ends —
there is no sleep-polling loop.

Everything that should *outlive* one run — the virtual devices, both
cache levels, the thread pools and job admission — lives in a
:class:`NodeEngine`.  A pipeline either borrows a caller-owned engine
(how sessions keep caches warm across jobs: the second job's lookups
hit the payloads the first one loaded) or creates a private one that
it tears down in :meth:`NodePipeline.close` (the one-shot ``run()``
path).  Per-run statistics against a shared engine are *deltas*:
cumulative device/cache counters are snapshotted at pipeline
construction and subtracted in :meth:`NodePipeline.stats`.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.cache.policy import safe_job_limit
from repro.cache.slots import CacheCounters, Slot, SlotCache, SlotState
from repro.core.api import Application
from repro.data.filestore import FileStore
from repro.model.perfmodel import StageCalibration
from repro.runtime.devices import VirtualDevice
from repro.scheduling.quadtree import PairBlock, partition_blocks
from repro.scheduling.throttle import ThreadAdmission
from repro.scheduling.workstealing import (
    StealPolicy,
    TaskDeque,
    VictimSelector,
    WorkerTopology,
)
from repro.util.rng import RngFactory
from repro.util.trace import TraceEvent, TraceRecorder

__all__ = ["NodeEngine", "NodeStats", "NodePipeline"]

#: Backstop timeout for idle-worker condition waits: wake-ups are
#: notified explicitly, the timeout only guards against lost notifies.
_IDLE_WAIT = 0.05


@dataclass
class NodeStats:
    """Measured behaviour of one node's pipeline (picklable)."""

    node_id: int
    loads: int
    io_bytes: int
    parse_seconds: float
    local_steals: int
    submitted: int
    completed: int
    device_counters: CacheCounters
    host_counters: CacheCounters
    kernel_seconds: Dict[str, float]
    kernel_counts: Dict[str, int]
    pairs_per_device: Dict[str, int]
    h2d_bytes: int
    d2h_bytes: int
    #: Sum of this node's device speed factors.
    aggregate_speed: float = 1.0
    #: Online-calibrated stage costs (reference-speed normalised).
    calibration: StageCalibration = field(default_factory=StageCalibration)
    #: OS pid of the recording process (distinguishes node processes in
    #: the merged multi-process profile).
    pid: int = 0
    #: Absolute ``perf_counter`` origin of the shipped trace buffer;
    #: the coordinator rebases event times with it.
    trace_origin: float = 0.0
    #: The node-local trace buffer for this run (empty unless the run
    #: was profiled); rides to the coordinator in the ``stats`` message.
    trace_events: List[TraceEvent] = field(default_factory=list)
    #: Persistent item-cache traffic (zero unless the run's config has a
    #: ``store_dir``): hits skip the whole load pipeline, stores are
    #: freshly loaded payloads written back for future sessions.
    persist_hits: int = 0
    persist_misses: int = 0
    persist_stores: int = 0
    persist_bytes_read: int = 0
    persist_bytes_written: int = 0


class _DeviceState:
    """Cache, lock and admission for one device."""

    def __init__(self, device: VirtualDevice, cache: SlotCache, admission: ThreadAdmission) -> None:
        self.device = device
        self.cache = cache
        self.cond = threading.Condition()
        self.admission = admission
        #: Guards ``pairs_done``: the device state is engine-shared, so
        #: concurrently running jobs' pipelines increment it from under
        #: *different* per-pipeline counter locks.
        self.pairs_lock = threading.Lock()
        self.pairs_done = 0


class NodeEngine:
    """The persistent substrate of one Rocket node.

    Owns everything whose lifetime should span *jobs*, not runs: the
    virtual devices with their slot caches and admission throttles, the
    host-level slot cache, and the I/O / CPU-parse / job thread pools.
    A session creates one engine per node and runs every submitted
    workload against it, so a later job over overlapping keys finds the
    earlier job's pre-processed payloads already resident in the device
    and host caches instead of re-running the load pipeline.

    ``capacity_hint`` bounds the cache slot counts by the data-set size
    for one-shot runs (no point allocating 256 slots for 10 items);
    session engines pass ``None`` because future jobs may be larger.
    """

    def __init__(
        self,
        config,  # RocketConfig (kept untyped to avoid an import cycle)
        *,
        node_id: int = 0,
        device_prefix: str = "gpu",
        rngs: Optional[RngFactory] = None,
        capacity_hint: Optional[int] = None,
    ) -> None:
        cfg = config
        self.config = cfg
        self.node_id = node_id
        rngs = rngs if rngs is not None else RngFactory(cfg.seed)

        speeds = cfg.device_speed_factors or (1.0,) * cfg.n_devices
        speed_aware = cfg.steal_policy is StealPolicy.SPEED
        cap = capacity_hint if capacity_hint is not None else max(
            cfg.device_cache_slots, cfg.host_cache_slots
        )
        dev_slots = max(2, min(cfg.device_cache_slots, cap))
        host_slots = max(2, min(cfg.host_cache_slots, cap))
        limit = safe_job_limit(cfg.concurrent_jobs, dev_slots, host_slots, cfg.n_devices)
        self.job_limit = limit
        self.speeds = speeds

        self.states: List[_DeviceState] = []
        for d in range(cfg.n_devices):
            device = VirtualDevice(f"{device_prefix}{d}", speed_factor=speeds[d])
            cache = SlotCache(
                dev_slots, policy=cfg.eviction, name=f"device:{node_id}:{d}",
                rng=rngs.get(f"evict:n{node_id}:d{d}"),
            )
            # Cost-guided admission: a slow device may only commit a
            # speed-proportional backlog of in-flight jobs, so the run
            # tail is never a queue of jobs serialised on the slowest
            # kernel thread.  Shrinking the limit preserves the
            # safe_job_limit deadlock bound.
            dev_limit = limit
            if speed_aware:
                dev_limit = max(1, round(limit * speeds[d] / max(speeds)))
            self.states.append(_DeviceState(device, cache, ThreadAdmission(dev_limit)))

        self.host_cache = SlotCache(
            host_slots, policy=cfg.eviction, name=f"host:{node_id}",
            rng=rngs.get(f"evict:host:n{node_id}"),
        )
        self.host_cond = threading.Condition()

        self.io_pool = ThreadPoolExecutor(max_workers=1, thread_name_prefix=f"io{node_id}")
        self.cpu_pool = ThreadPoolExecutor(
            max_workers=cfg.cpu_workers, thread_name_prefix=f"cpu{node_id}"
        )
        self.job_pool = ThreadPoolExecutor(
            max_workers=max(2, limit * cfg.n_devices), thread_name_prefix=f"job{node_id}"
        )
        #: Stage costs accumulated across every job run on this engine;
        #: pipelines fold their per-run measurements in on close so the
        #: *next* job can size its batch grain from day one instead of
        #: re-calibrating from scratch.
        self.calibration = StageCalibration()
        self.calibration_lock = threading.Lock()
        #: Lazily created persistent item cache (``config.store_dir``);
        #: engine-owned so it spans jobs like the in-memory cache levels.
        self._persist = None
        self._persist_failed = False
        self._persist_lock = threading.Lock()
        self._closed = False

    def persistent_cache(self, app, store):
        """The shared :class:`~repro.store.itemcache.PersistentItemCache`.

        ``None`` when the config has no ``store_dir`` or the store
        directory is unusable (the pipeline then simply runs cold — the
        persistent level is an accelerator, never a dependency).  Bound
        to the first ``(app, store)`` pair seen: an engine executes one
        application, like its key-addressed slot caches.
        """
        if not getattr(self.config, "store_dir", None):
            return None
        with self._persist_lock:
            if self._persist is None and not self._persist_failed:
                try:
                    from repro.store.itemcache import PersistentItemCache

                    self._persist = PersistentItemCache(
                        self.config.store_dir, app, store
                    )
                except Exception:
                    self._persist_failed = True
            return self._persist

    def snapshot(self) -> Dict[str, Any]:
        """Cumulative counter baseline, so a pipeline can report deltas."""
        def counters_tuple(c: CacheCounters):
            return (c.hits, c.hits_while_writing, c.misses, c.evictions)

        out: Dict[str, Any] = {
            "host": counters_tuple(self.host_cache.counters),
            "devices": [],
        }
        for st in self.states:
            with st.pairs_lock:
                pairs_done = st.pairs_done
            out["devices"].append(
                (
                    counters_tuple(st.cache.counters),
                    st.device.kernel_seconds,
                    st.device.kernel_count,
                    st.device.h2d_bytes,
                    st.device.d2h_bytes,
                    pairs_done,
                )
            )
        return out

    def close(self) -> None:
        """Tear down pools and devices (idempotent; safe after errors)."""
        if self._closed:
            return
        self._closed = True
        self.io_pool.shutdown(wait=False)
        self.cpu_pool.shutdown(wait=False)
        self.job_pool.shutdown(wait=False)
        for st in self.states:
            st.device.shutdown()
        with self._persist_lock:
            if self._persist is not None:
                self._persist.close()  # flush the content-hash cache
                self._persist = None

    @property
    def closed(self) -> bool:
        return self._closed


class NodePipeline:
    """Workers, caches and the load pipeline of one Rocket node.

    Lifecycle: construct, :meth:`start`, :meth:`wait` for the done
    event (set internally when ``expected_pairs`` complete, or
    externally via :meth:`request_stop`), :meth:`join`, :meth:`close`.

    With ``engine=`` the pipeline runs one job against a caller-owned
    :class:`NodeEngine` (session mode: caches stay warm, ``close()``
    leaves the engine alone); without it a private engine is created
    and torn down with the pipeline (one-shot mode).
    """

    def __init__(
        self,
        app: Application,
        store: FileStore,
        config,  # RocketConfig (kept untyped to avoid an import cycle)
        keys: Sequence[Hashable],
        *,
        pair_filter: Optional[Callable[[Hashable, Hashable], bool]] = None,
        emit_result: Callable[[int, int, Any], None],
        node_id: int = 0,
        device_prefix: str = "gpu",
        rngs: Optional[RngFactory] = None,
        trace: Optional[TraceRecorder] = None,
        expected_pairs: Optional[int] = None,
        remote_fetch: Optional[Callable[[int], Optional[np.ndarray]]] = None,
        global_steal: Optional[Callable[[], Optional[PairBlock]]] = None,
        initial_blocks: Sequence[PairBlock] = (),
        engine: Optional[NodeEngine] = None,
        max_inflight: Optional[int] = None,
        job_id: Optional[int] = None,
    ) -> None:
        cfg = config
        self.app = app
        self.store = store
        self.config = cfg
        self.keys = list(keys)
        self.pair_filter = pair_filter
        self.emit_result = emit_result
        self.node_id = node_id
        self.expected_pairs = expected_pairs
        self.remote_fetch = remote_fetch
        self.global_steal = global_steal
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        #: Job-level cap on concurrently in-flight pair comparisons
        #: (fair-share back-pressure on a shared engine): workers stop
        #: submitting this job's pairs once the cap is reached, on top
        #: of the engine's per-device admission limit.
        self.max_inflight = max_inflight

        n = len(self.keys)
        rngs = rngs if rngs is not None else RngFactory(cfg.seed)
        self.trace = trace if trace is not None else TraceRecorder(enabled=cfg.profiling)
        #: Spans this pipeline records carry the owning job's id, so a
        #: shared recorder (FAIR sessions) stays attributable per job.
        self.job_id = job_id
        # Event times are relative to the recorder's origin — a shared
        # recorder keeps one clock across all pipelines feeding it.
        self._t_origin = self.trace.origin

        self._private_engine = engine is None
        if engine is None:
            engine = NodeEngine(
                cfg, node_id=node_id, device_prefix=device_prefix,
                rngs=rngs, capacity_hint=n,
            )
        self.engine = engine
        #: Persistent (disk) cache level; None unless cfg.store_dir is
        #: set — see NodeEngine.persistent_cache for the guarantees.
        self._persist = engine.persistent_cache(app, store)
        self.states = engine.states
        self.host_cache = engine.host_cache
        self.host_cond = engine.host_cond
        self._io_pool = engine.io_pool
        self._cpu_pool = engine.cpu_pool
        self._job_pool = engine.job_pool
        self._baseline = engine.snapshot()
        speeds = engine.speeds
        speed_aware = cfg.steal_policy is StealPolicy.SPEED

        topology = WorkerTopology.from_gpus_per_node([cfg.n_devices])
        self.deques: List[TaskDeque] = [TaskDeque(d) for d in range(cfg.n_devices)]
        self._selector = VictimSelector(
            topology,
            rngs.get(f"steal:n{node_id}"),
            policy=cfg.steal_policy,
            speeds=speeds,
            work_of=lambda w: float(self.deques[w].pending_pairs),
        )
        if speed_aware:
            # Speed-proportional initial partitioning: each device
            # starts with a share of the pairs matching its speed
            # factor instead of a round-robin block hand-out.
            for d, share in enumerate(partition_blocks(initial_blocks, speeds)):
                self.deques[d].push_children(share)
        else:
            for i, block in enumerate(initial_blocks):
                self.deques[i % cfg.n_devices].push(block)
        self.sched_lock = threading.Lock()
        #: Idle workers wait here; notified on new tasks, job completion
        #: and shutdown (replaces the old sleep-polling loop).
        self.work_cond = threading.Condition()

        self.counters = {
            "loads": 0,
            "io_bytes": 0,
            "parse_seconds": 0.0,
            "local_steals": 0,
            "submitted": 0,
            "completed": 0,
            "persist_hits": 0,
            "persist_misses": 0,
            "persist_stores": 0,
            "persist_bytes_read": 0,
            "persist_bytes_written": 0,
            # Device-cache pins this job currently holds.  Pins are
            # job-tagged via the owning pipeline so that cancelling one
            # job verifiably releases *its* pins while co-running jobs'
            # pinned slots stay protected from eviction.
            "held_pins": 0,
        }
        self.counters_lock = threading.Lock()
        #: Live per-stage cost measurements (guarded by counters_lock).
        self.calibration = StageCalibration()
        self._calibration_folded = False
        #: Batched fast path: apps overriding ``compare_block`` get
        #: whole leaf blocks per kernel launch instead of one pair each.
        self._batched = app.supports_compare_block
        self._has_item_view = app.supports_item_view
        #: Resolved batch grain per device index (filled lazily once the
        #: calibration has enough compare samples to trust).
        self._grain_cache: Dict[int, int] = {}
        self._speeds = speeds
        self.done = threading.Event()
        self.aborted = threading.Event()
        self.errors: List[BaseException] = []
        self._threads: List[threading.Thread] = []
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Launch the per-device worker threads."""
        self._threads = [
            threading.Thread(
                target=self._worker, args=(d,),
                name=f"worker{self.node_id}.{d}", daemon=True,
            )
            for d in range(self.config.n_devices)
        ]
        for w in self._threads:
            w.start()

    def wait(self, timeout: Optional[float]) -> bool:
        """Block until the run completes or aborts; False on timeout."""
        return self.done.wait(timeout=timeout)

    def request_stop(self, abort: bool = False) -> None:
        """Externally end the run (cluster shutdown / abort) and wake waiters."""
        if abort:
            self.aborted.set()
        self._signal_done()

    def fail(self, exc: BaseException) -> None:
        """Record an error and abort the run."""
        with self.counters_lock:
            self.errors.append(exc)
        self.aborted.set()
        self._signal_done()

    def _signal_done(self) -> None:
        self.done.set()
        with self.work_cond:
            self.work_cond.notify_all()
        with self.host_cond:
            self.host_cond.notify_all()
        for st in self.states:
            with st.cond:
                st.cond.notify_all()

    def join(self, timeout: float = 10.0) -> None:
        """Join worker threads and drain in-flight pair jobs (after done).

        The job pool belongs to the (possibly shared) engine, so the
        pool itself is never shut down here; instead the pipeline waits
        until every admitted job has run its completion hook.  A shared
        engine must be fully quiescent before the next job starts — a
        straggler would otherwise hold admission tokens and emit into
        the wrong run.
        """
        for w in self._threads:
            w.join(timeout=timeout)
        deadline = time.monotonic() + timeout
        with self.work_cond:
            while time.monotonic() < deadline:
                with self.counters_lock:
                    drained = self.counters["completed"] >= self.counters["submitted"]
                if drained:
                    break
                self.work_cond.wait(timeout=0.05)

    def close(self) -> None:
        """Release the pipeline (idempotent; safe after errors).

        Tears down pools and devices only when this pipeline owns its
        engine; a session-owned engine stays warm for the next job.
        """
        if self._closed:
            return
        self._closed = True
        if not self._calibration_folded:
            self._calibration_folded = True
            snap = StageCalibration()
            with self.counters_lock:
                snap.merge(self.calibration)
            with self.engine.calibration_lock:
                self.engine.calibration.merge(snap)
        if self._private_engine:
            self.engine.close()

    # -- introspection ---------------------------------------------------

    @property
    def held_pins(self) -> int:
        """Device-cache pins this job's in-flight pairs currently hold.

        Zero once the pipeline is joined — a cancelled job must hand
        every pin back so its eviction protection dies with it, while
        co-running jobs' pins (tracked by *their* pipelines) survive.
        """
        with self.counters_lock:
            return self.counters["held_pins"]

    def _now(self) -> float:
        return time.perf_counter() - self._t_origin

    def stats(self) -> NodeStats:
        """This run's share of the node's counters (call after the run).

        Cache/device counters accumulate on the engine across jobs; the
        pipeline reports them relative to the baseline snapshotted at
        construction, so a session's second job shows *its own* hits —
        which is exactly where warm-cache reuse becomes measurable.
        """

        def counters_delta(c: CacheCounters, base) -> CacheCounters:
            return CacheCounters(
                hits=c.hits - base[0],
                hits_while_writing=c.hits_while_writing - base[1],
                misses=c.misses - base[2],
                evictions=c.evictions - base[3],
            )

        base_devices = self._baseline["devices"]
        device_counters = CacheCounters()
        kernel_seconds: Dict[str, float] = {}
        kernel_counts: Dict[str, int] = {}
        pairs_per_device: Dict[str, int] = {}
        h2d_bytes = d2h_bytes = 0
        for st, base in zip(self.states, base_devices):
            d = counters_delta(st.cache.counters, base[0])
            device_counters.hits += d.hits
            device_counters.hits_while_writing += d.hits_while_writing
            device_counters.misses += d.misses
            device_counters.evictions += d.evictions
            kernel_seconds[st.device.name] = st.device.kernel_seconds - base[1]
            kernel_counts[st.device.name] = st.device.kernel_count - base[2]
            h2d_bytes += st.device.h2d_bytes - base[3]
            d2h_bytes += st.device.d2h_bytes - base[4]
            with st.pairs_lock:
                pairs_per_device[st.device.name] = st.pairs_done - base[5]
        with self.counters_lock:
            counters = dict(self.counters)
            calibration = StageCalibration()
            calibration.merge(self.calibration)
        return NodeStats(
            node_id=self.node_id,
            loads=counters["loads"],
            io_bytes=counters["io_bytes"],
            parse_seconds=counters["parse_seconds"],
            local_steals=counters["local_steals"],
            submitted=counters["submitted"],
            completed=counters["completed"],
            device_counters=device_counters,
            host_counters=counters_delta(self.host_cache.counters, self._baseline["host"]),
            kernel_seconds=kernel_seconds,
            kernel_counts=kernel_counts,
            pairs_per_device=pairs_per_device,
            h2d_bytes=h2d_bytes,
            d2h_bytes=d2h_bytes,
            aggregate_speed=float(sum(self._speeds)),
            calibration=calibration,
            pid=os.getpid(),
            trace_origin=self.trace.origin,
            trace_events=self.trace.events if self.trace.enabled else [],
            persist_hits=counters["persist_hits"],
            persist_misses=counters["persist_misses"],
            persist_stores=counters["persist_stores"],
            persist_bytes_read=counters["persist_bytes_read"],
            persist_bytes_written=counters["persist_bytes_written"],
        )

    # -- services for the cluster comm layer -----------------------------

    def host_payload_view(self, key: Hashable) -> Optional[np.ndarray]:
        """Read-only view of ``key``'s host-cache payload, or None.

        Called from the cluster comm thread to serve remote fetches; a
        slot still being written (or already evicted) is reported as
        absent — the request then falls through to the next candidate.

        The view is served under a pin (refreshing recency like a local
        hit) and stays valid after eviction: published payloads are
        never mutated in place and the view keeps the backing array
        alive, so no deep copy is needed — the transport copies the
        bytes exactly once, straight onto the wire or into a shared
        segment.
        """
        with self.host_cond:
            slot = self.host_cache.peek(key)
            if slot is None or slot.state is not SlotState.READ:
                return None
            self.host_cache.pin(slot)  # refresh recency like a local hit
            try:
                view = slot.payload.view()
                view.setflags(write=False)
            finally:
                self.host_cache.unpin(slot)
            return view

    def steal_for_remote(self) -> Optional[PairBlock]:
        """Give up one block (from the most-loaded deque) to a remote thief."""
        with self.sched_lock:
            victim = max(self.deques, key=lambda q: q.pending_pairs)
            return victim.steal(self.config.steal_order)

    def inject_block(self, block: PairBlock) -> None:
        """Push an externally delivered block onto the least-loaded deque."""
        with self.sched_lock:
            target = min(self.deques, key=lambda q: q.pending_pairs)
            target.push(block)
        with self.work_cond:
            self.work_cond.notify_all()

    # -- cache machinery -------------------------------------------------

    def _acquire_device_item(self, st: _DeviceState, idx: int) -> Slot:
        """Return the device slot of item ``idx``, pinned once."""
        first = True
        while True:
            with st.cond:
                slot = st.cache.lookup(self.keys[idx], count=first)
                first = False
                if slot is not None and slot.state is SlotState.READ:
                    st.cache.pin(slot)
                    with self.counters_lock:
                        self.counters["held_pins"] += 1
                    return slot
                if slot is None:
                    wslot = st.cache.reserve(self.keys[idx])
                    if wslot is not None:
                        break
                st.cond.wait(timeout=1.0)
                if self.aborted.is_set():
                    raise RuntimeError("run aborted")
        try:
            self._fill_device(st, idx, wslot)
        except BaseException:
            with st.cond:
                st.cache.abandon(wslot)
                st.cond.notify_all()
            raise
        with self.counters_lock:
            self.counters["held_pins"] += 1
        return wslot  # published with one reader pin for us

    def _release_device_item(self, st: _DeviceState, slot: Slot) -> None:
        with st.cond:
            st.cache.unpin(slot)
            st.cond.notify_all()
        with self.counters_lock:
            self.counters["held_pins"] -= 1

    def _slot_view(self, slot: Slot) -> Any:
        """Kernel-ready view of a pinned slot's payload.

        Apps without :meth:`~repro.core.api.Application.item_view` get
        the raw :class:`~repro.core.buffers.DeviceBuffer` (preserving
        the device-ownership check in the kernel launch).  Apps with
        one get the derived view, computed once per residency and
        cached on the slot — e.g. the bio app unpacks its sparse CV
        here instead of inside every comparison.
        """
        if not self._has_item_view:
            return slot.payload
        view = slot.derived
        if view is None:
            # Benign race: concurrent pair jobs may both derive the
            # same (deterministic) view; last write wins.
            view = self.app.item_view(slot.key, slot.payload.data)
            slot.derived = view
        return view

    def _try_acquire_device_item(self, st: _DeviceState, idx: int) -> Optional[Slot]:
        """Non-blocking :meth:`_acquire_device_item`; None if it would wait.

        A batch job pins several items at once, which is only safe if
        it never *holds* pins while waiting on a device slot (the
        hold-and-wait that :func:`repro.cache.policy.safe_job_limit`'s
        deadlock argument rules out for the two-pin protocol).  So the
        batch path acquires all-or-nothing: an item being written by
        another job, or no evictable slot, reports failure instead of
        blocking.  Filling a freshly reserved slot is fine — the load
        pipeline waits only on host-cache slots, which always progress.
        """
        with st.cond:
            slot = st.cache.lookup(self.keys[idx])
            if slot is not None and slot.state is SlotState.READ:
                st.cache.pin(slot)
                with self.counters_lock:
                    self.counters["held_pins"] += 1
                return slot
            if slot is not None:
                return None  # WRITE in progress elsewhere: would block
            wslot = st.cache.reserve(self.keys[idx])
            if wslot is None:
                return None  # nothing evictable: would block
        try:
            self._fill_device(st, idx, wslot)
        except BaseException:
            with st.cond:
                st.cache.abandon(wslot)
                st.cond.notify_all()
            raise
        with self.counters_lock:
            self.counters["held_pins"] += 1
        return wslot  # published with one reader pin for us

    def _acquire_block_slots(
        self, st: _DeviceState, indices: Sequence[int]
    ) -> Optional[Dict[int, Slot]]:
        """Pin every item of a batch, or nothing (None) on any failure."""
        slots: Dict[int, Slot] = {}
        try:
            for idx in indices:
                slot = self._try_acquire_device_item(st, idx)
                if slot is None:
                    for held in slots.values():
                        self._release_device_item(st, held)
                    return None
                slots[idx] = slot
        except BaseException:
            for held in slots.values():
                self._release_device_item(st, held)
            raise
        return slots

    def _fill_device(self, st: _DeviceState, idx: int, wslot: Slot) -> None:
        """Fill a reserved device slot from host cache, a peer, or a load."""
        key = self.keys[idx]
        host_payload: Optional[np.ndarray] = None
        host_wslot: Optional[Slot] = None
        first = True
        while True:
            with self.host_cond:
                slot = self.host_cache.lookup(key, count=first)
                first = False
                if slot is not None and slot.state is SlotState.READ:
                    self.host_cache.pin(slot)  # refresh recency
                    host_payload = slot.payload
                    self.host_cache.unpin(slot)
                    break
                if slot is None:
                    host_wslot = self.host_cache.reserve(key)
                    if host_wslot is not None:
                        break
                self.host_cond.wait(timeout=1.0)
                if self.aborted.is_set():
                    raise RuntimeError("run aborted")

        if host_payload is not None:
            # Host hit: H2D copy and publish.
            dev_buf = st.device.h2d(host_payload)
            with st.cond:
                st.cache.publish(wslot, payload=dev_buf, initial_readers=1)
                st.cond.notify_all()
            return

        assert host_wslot is not None

        # Host miss: the persistent disk level comes before any peer
        # round-trip — it is node-local and serves the preprocessed
        # payload as an mmap, skipping io/parse/preprocess entirely.
        if self._persist is not None:
            tracing = self.trace.enabled
            t0 = self._now() if tracing else 0.0
            try:
                persist_payload = self._persist.load(key)
            except Exception:
                persist_payload = None  # the store is never load-bearing
            if persist_payload is not None:
                if tracing:
                    self.trace.record("IO", "persist", t0, self._now(), self.job_id)
                with self.counters_lock:
                    self.counters["persist_hits"] += 1
                    self.counters["persist_bytes_read"] += int(persist_payload.nbytes)
                try:
                    dev_buf = st.device.h2d(persist_payload)
                except BaseException:
                    with self.host_cond:
                        self.host_cache.abandon(host_wslot)
                        self.host_cond.notify_all()
                    raise
                with st.cond:
                    st.cache.publish(wslot, payload=dev_buf, initial_readers=1)
                    st.cond.notify_all()
                with self.host_cond:
                    self.host_cache.publish(host_wslot, payload=persist_payload)
                    self.host_cond.notify_all()
                return
            with self.counters_lock:
                self.counters["persist_misses"] += 1

        # Still cold locally: consult the distributed cache level.
        if self.remote_fetch is not None:
            try:
                remote_payload = self.remote_fetch(idx)
            except BaseException:
                with self.host_cond:
                    self.host_cache.abandon(host_wslot)
                    self.host_cond.notify_all()
                raise
            if remote_payload is not None:
                # A peer's host cache served the pre-processed item:
                # publish it to both local levels, exactly like a load.
                dev_buf = st.device.h2d(remote_payload)
                with st.cond:
                    st.cache.publish(wslot, payload=dev_buf, initial_readers=1)
                    st.cond.notify_all()
                with self.host_cond:
                    self.host_cache.publish(host_wslot, payload=remote_payload)
                    self.host_cond.notify_all()
                return

        # Fall through to the load pipeline l(i).  Stage work is timed
        # *inside* the pool callables: calibration must not count time
        # queued behind other loads (same reason run_kernel_timed times
        # on the device thread), while the trace keeps the caller span.
        def timed(fn, *args):
            t = time.perf_counter()
            out = fn(*args)
            return out, time.perf_counter() - t

        try:
            tracing = self.trace.enabled
            t0 = self._now() if tracing else 0.0
            blob, io_duration = self._io_pool.submit(
                timed, self.store.read, self.app.file_name(key)
            ).result()
            if tracing:
                self.trace.record("IO", "io", t0, self._now(), self.job_id)

            t0 = self._now() if tracing else 0.0
            parsed, parse_duration = self._cpu_pool.submit(
                timed, self.app.parse, key, blob
            ).result()
            if tracing:
                self.trace.record("CPU", "parse", t0, self._now(), self.job_id)

            dev_parsed = st.device.h2d(parsed)
            t0 = self._now() if tracing else 0.0
            dev_item, pre_duration = st.device.run_kernel_timed(
                self.app.preprocess, key, dev_parsed
            )
            if tracing:
                self.trace.record(st.device.name, "preprocess", t0, self._now(), self.job_id)

            with self.counters_lock:
                self.counters["loads"] += 1
                self.counters["io_bytes"] += len(blob)
                self.counters["parse_seconds"] += parse_duration
                self.calibration.record_io(len(blob), io_duration)
                self.calibration.record_parse(parse_duration)
                self.calibration.record_preprocess(
                    pre_duration, st.device.speed_factor
                )
        except BaseException:
            with self.host_cond:
                self.host_cache.abandon(host_wslot)
                self.host_cond.notify_all()
            raise

        # Item is on the device: publish there first, then write the
        # host copy back (both caches end up holding the item).
        with st.cond:
            st.cache.publish(wslot, payload=dev_item, initial_readers=1)
            st.cond.notify_all()
        host_payload = st.device.d2h(dev_item)
        with self.host_cond:
            self.host_cache.publish(host_wslot, payload=host_payload)
            self.host_cond.notify_all()

        # Write the freshly loaded item back to the persistent level so
        # the next session warm-starts.  A remote-fetch hit deliberately
        # skips this: the originating node already wrote it back.
        if self._persist is not None:
            try:
                written = self._persist.store(key, host_payload, blob=blob)
            except Exception:
                written = 0
            if written:
                with self.counters_lock:
                    self.counters["persist_stores"] += 1
                    self.counters["persist_bytes_written"] += written

    # -- job execution ---------------------------------------------------

    def _execute_pair(self, st: _DeviceState, i: int, j: int) -> None:
        """One pair f(x, y): acquire, compare, D2H, postprocess, emit."""
        keys = self.keys
        slot_i = self._acquire_device_item(st, i)
        try:
            slot_j = self._acquire_device_item(st, j)
        except BaseException:
            # The first item's pin must not leak when the second
            # acquisition fails (abort, load error): a stuck pin
            # would wedge eviction for every surviving job.
            self._release_device_item(st, slot_i)
            raise
        tracing = self.trace.enabled
        try:
            t0 = self._now() if tracing else 0.0
            raw, cmp_duration = st.device.run_kernel_timed(
                self.app.compare,
                keys[i], self._slot_view(slot_i), keys[j], self._slot_view(slot_j),
            )
            if tracing:
                self.trace.record(st.device.name, "compare", t0, self._now(), self.job_id)
        finally:
            self._release_device_item(st, slot_i)
            self._release_device_item(st, slot_j)
        raw_host = st.device.d2h(raw)
        t0 = self._now()
        value = self.app.postprocess(keys[i], keys[j], raw_host)
        post_duration = self._now() - t0
        if tracing:
            self.trace.record("CPU", "postprocess", t0, t0 + post_duration, self.job_id)
        # A job that limped past the kernel while the run was being
        # aborted (cancellation) must not publish its pair: the
        # consumer of this run's results is already gone.
        if not self.aborted.is_set():
            self.emit_result(i, j, value)
        with st.pairs_lock:
            st.pairs_done += 1
        with self.counters_lock:
            self.calibration.record_compare(cmp_duration, st.device.speed_factor)
            self.calibration.record_postprocess(post_duration)

    def _finish_pairs(self, st: _DeviceState, n: int) -> None:
        """Completion accounting for ``n`` claimed pair submissions."""
        for _ in range(n):
            st.admission.release()
        with self.counters_lock:
            self.counters["completed"] += n
            finished = (
                self.expected_pairs is not None
                and self.counters["completed"] >= self.expected_pairs
            )
        if finished:
            self._signal_done()
        else:
            with self.work_cond:
                self.work_cond.notify_all()

    def _run_job(self, d: int, i: int, j: int) -> None:
        st = self.states[d]
        try:
            self._execute_pair(st, i, j)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            self.fail(exc)
        finally:
            self._finish_pairs(st, 1)

    def _run_block(self, d: int, pairs: Sequence["tuple[int, int]"]) -> None:
        """Run a claimed batch of pairs through one ``compare_block``.

        The batch pins its unique items all-or-nothing (see
        :meth:`_try_acquire_device_item`); under cache pressure it
        degrades to the classic sequential two-pin protocol, which is
        deadlock-safe by the ``safe_job_limit`` argument.  Per-pair
        semantics are preserved: postprocess runs (and is timed) per
        pair, cancellation is re-checked before each emit, and the
        batch kernel's time is amortised into per-pair ``t_cmp``.
        """
        st = self.states[d]
        keys = self.keys
        n = len(pairs)
        try:
            indices = sorted({idx for pair in pairs for idx in pair})
            slots = self._acquire_block_slots(st, indices)
            if slots is None:
                for (i, j) in pairs:
                    self._execute_pair(st, i, j)
                return
            tracing = self.trace.enabled
            try:
                views = {idx: self._slot_view(slot) for idx, slot in slots.items()}
                keys_a = [keys[i] for (i, _) in pairs]
                keys_b = [keys[j] for (_, j) in pairs]
                views_a = [views[i] for (i, _) in pairs]
                views_b = [views[j] for (_, j) in pairs]
                t0 = self._now() if tracing else 0.0
                raw, cmp_duration = st.device.run_kernel_batched_timed(
                    self.app.compare_block, n, keys_a, views_a, keys_b, views_b
                )
                if tracing:
                    self.trace.record(st.device.name, "compare", t0, self._now(), self.job_id)
            finally:
                for slot in slots.values():
                    self._release_device_item(st, slot)
            raw_host = st.device.d2h(raw)
            if len(raw_host) != n:
                raise RuntimeError(
                    f"compare_block returned {len(raw_host)} rows for {n} pairs"
                )
            per_pair_cmp = cmp_duration / n
            for k, (i, j) in enumerate(pairs):
                t0 = self._now()
                value = self.app.postprocess(keys[i], keys[j], raw_host[k])
                post_duration = self._now() - t0
                if tracing:
                    self.trace.record("CPU", "postprocess", t0, t0 + post_duration, self.job_id)
                # Cancellation lands mid-batch too: already-computed
                # pairs after the abort are dropped, like per-pair jobs.
                if not self.aborted.is_set():
                    self.emit_result(i, j, value)
                with st.pairs_lock:
                    st.pairs_done += 1
                with self.counters_lock:
                    self.calibration.record_compare(per_pair_cmp, st.device.speed_factor)
                    self.calibration.record_postprocess(post_duration)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            self.fail(exc)
        finally:
            self._finish_pairs(st, n)

    # -- worker loop -----------------------------------------------------

    def _claim_submission(self, st: _DeviceState) -> bool:
        """Reserve one pair submission; False when the run ended instead.

        The ``submitted`` increment happens *inside* the window check's
        critical section, so the job-level ``max_inflight`` cap holds
        even with several device workers racing (check-then-increment
        in two steps would let every worker see the same open window).
        The cap is per pipeline, i.e. per node on the cluster backend.
        """
        if self.max_inflight is not None:
            reserved = False
            with self.work_cond:
                while not reserved:
                    with self.counters_lock:
                        if (
                            self.counters["submitted"] - self.counters["completed"]
                            < self.max_inflight
                        ):
                            self.counters["submitted"] += 1
                            reserved = True
                            break
                    if self.done.is_set():
                        return False
                    # Completions notify work_cond and reopen the window.
                    self.work_cond.wait(timeout=0.05)
            while not st.admission.acquire(timeout=0.5):
                if self.done.is_set():
                    with self.counters_lock:
                        self.counters["submitted"] -= 1
                    return False
            return True
        while not st.admission.acquire(timeout=0.5):
            if self.done.is_set():
                return False
        with self.counters_lock:
            self.counters["submitted"] += 1
        return True

    def _try_claim_submission(self, st: _DeviceState) -> bool:
        """Non-blocking :meth:`_claim_submission` for batch growth.

        A batch claims its first pair blocking and every further pair
        opportunistically: when the admission throttle or the job's
        ``max_inflight`` window is exhausted the batch simply stays
        smaller, instead of holding one claim while waiting for more
        (which could starve co-running jobs or deadlock a
        ``max_inflight`` below the grain).
        """
        if self.max_inflight is not None:
            with self.counters_lock:
                if (
                    self.counters["submitted"] - self.counters["completed"]
                    >= self.max_inflight
                ):
                    return False
                self.counters["submitted"] += 1
            if not st.admission.acquire(timeout=0):
                with self.counters_lock:
                    self.counters["submitted"] -= 1
                return False
            return True
        if not st.admission.acquire(timeout=0):
            return False
        with self.counters_lock:
            self.counters["submitted"] += 1
        return True

    def _batch_grain(self, d: int) -> int:
        """Target pairs per batched kernel launch for device ``d``.

        An integer ``config.grain`` is used as-is; ``"auto"`` sizes the
        batch so one launch costs ``auto_grain``'s target wall time on
        this device, from the engine's cross-job calibration merged
        with this run's live measurements.  While uncalibrated the
        per-pair ``leaf_size`` is used and nothing is cached, so the
        grain upgrades mid-run once enough compares are measured.
        """
        grain = self._grain_cache.get(d)
        if grain is not None:
            return grain
        cfg = self.config
        configured = getattr(cfg, "grain", "auto")
        if not isinstance(configured, str):
            grain = max(1, int(configured))
            self._grain_cache[d] = grain
            return grain
        st = self.states[d]
        cal = StageCalibration()
        with self.engine.calibration_lock:
            cal.merge(self.engine.calibration)
        with self.counters_lock:
            cal.merge(self.calibration)
        grain = cal.auto_grain(lo=cfg.leaf_size, speed=st.device.speed_factor)
        if grain is None:
            return cfg.leaf_size
        if cal.cmp_count >= 32:
            self._grain_cache[d] = grain
        return grain

    def _trim_steal(self, task: PairBlock, thief: int, victim: int) -> PairBlock:
        """Size a stolen block to the thief/victim speed ratio.

        Under the SPEED policy a slow thief keeps only one quadrant per
        split level (``VictimSelector.split_depth``) and returns the
        rest to the *top* of the victim's deque, where fast workers
        steal next.  Must be called under ``sched_lock``.
        """
        depth = self._selector.split_depth(thief, victim)
        leaf = self.config.leaf_size
        for _ in range(depth):
            if task.is_leaf(leaf):
                break
            children = task.split()
            task = children[0]
            for child in reversed(children[1:]):
                self.deques[victim].push_stealable(child)
        return task

    def _worker(self, d: int) -> None:
        cfg = self.config
        st = self.states[d]
        keys = self.keys
        idle_rounds = 0
        while not self.done.is_set():
            stole = False
            trimmed = False
            with self.sched_lock:
                task = self.deques[d].pop()
                if task is None:
                    for victim in self._selector.candidates(d):
                        task = self.deques[victim].steal(cfg.steal_order)
                        if task is not None:
                            full = task
                            task = self._trim_steal(task, d, victim)
                            trimmed = task is not full
                            stole = True
                            break
            if trimmed:
                # Returned quadrants are fresh steal targets: wake idle
                # workers instead of letting them sit out a backoff.
                with self.work_cond:
                    self.work_cond.notify_all()
            if stole:
                with self.counters_lock:
                    self.counters["local_steals"] += 1
            if task is None and self.global_steal is not None:
                task = self.global_steal()
            if task is None:
                if self.expected_pairs is not None:
                    with self.counters_lock:
                        if self.counters["submitted"] >= self.expected_pairs:
                            return
                # Exponential backoff caps the coordinator round-trips a
                # persistently idle node generates at run tail.
                idle_rounds += 1
                with self.work_cond:
                    if self.done.is_set():
                        return
                    self.work_cond.wait(
                        timeout=min(0.5, _IDLE_WAIT * (1 << min(idle_rounds, 4)))
                    )
                continue
            idle_rounds = 0
            leaf_pairs = self._batch_grain(d) if self._batched else cfg.leaf_size
            if task.is_leaf(leaf_pairs):
                pairs = [
                    (i, j)
                    for (i, j) in task.pairs()
                    if self.pair_filter is None or self.pair_filter(keys[i], keys[j])
                ]
                if not self._batched:
                    for (i, j) in pairs:
                        if not self._claim_submission(st):
                            return
                        self._job_pool.submit(self._run_job, d, i, j)
                else:
                    # Claim the first pair blocking, grow the batch with
                    # whatever admission allows right now, and submit one
                    # job per claimed chunk — partial batches are fine.
                    start = 0
                    while start < len(pairs):
                        if not self._claim_submission(st):
                            return
                        count = 1
                        while (
                            start + count < len(pairs)
                            and self._try_claim_submission(st)
                        ):
                            count += 1
                        self._job_pool.submit(
                            self._run_block, d, pairs[start : start + count]
                        )
                        start += count
            else:
                with self.sched_lock:
                    self.deques[d].push_children(task.split())
                with self.work_cond:
                    self.work_cond.notify_all()
