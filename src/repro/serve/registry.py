"""Served-job state that outlives the submitting connection.

An in-process :class:`~repro.core.session.RunHandle` lives exactly as
long as the Python object the submitter holds.  A served job must not:
the client's socket may drop mid-run (laptop lid, network blip,
process restart) and the whole point of the daemon is that the job
keeps executing and its results stay fetchable.  The
:class:`JobRegistry` is that durability layer:

- every submission becomes a :class:`JobRecord` addressed by a job id
  (``"j-000042"``) scoped to its tenant — any later connection of the
  same tenant can reattach by id;
- a per-job **drainer thread** is the handle's single
  :meth:`~repro.core.session.RunHandle.stream` consumer, copying
  arrival-ordered ``(key_a, key_b, value)`` triples into the record —
  so *any number* of clients can (re)stream from any cursor at any
  time, which an in-process handle (exactly-once across consumers)
  cannot offer;
- finished records are **retained** until the tenant acknowledges them
  (``ack``) or a TTL expires, whichever comes first — a reconnect
  hours later finds nothing, a reconnect within the window finds the
  full :class:`~repro.core.result.ResultMatrix`.

The registry never talks to the backend: cancellation, progress and
results all flow through the wrapped handle, so everything the
in-process session guarantees (exactly-once recording, cancel
isolation, accounting) holds unchanged for served jobs.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.core.session import RunHandle, RunState
from repro.serve.errors import UnknownJob

__all__ = ["JobRecord", "JobRegistry"]

#: Default seconds a finished, unacknowledged job's results stay
#: fetchable.  Chosen for interactive reconnects (minutes, not hours);
#: daemons serving batch tenants should raise it.
DEFAULT_RESULT_TTL = 900.0


class JobRecord:
    """One served job: the handle plus its replayable result log."""

    def __init__(self, job_id: str, tenant: str, handle: RunHandle) -> None:
        self.job_id = job_id
        self.tenant = tenant
        self.handle = handle
        self.created_at = time.monotonic()
        #: ``time.monotonic()`` of the terminal transition (None while
        #: live); the retention clock starts here.
        self.finished_at: Optional[float] = None
        self.acked = False
        self._cond = threading.Condition()
        self._triples: List[Tuple[Any, Any, Any]] = []
        self._drainer = threading.Thread(
            target=self._drain, name=f"rocket-serve-{job_id}", daemon=True
        )
        self._drainer.start()

    # -- drainer ---------------------------------------------------------

    def _drain(self) -> None:
        """Single stream consumer: handle arrival order -> replayable log."""
        try:
            for triple in self.handle.stream():
                with self._cond:
                    self._triples.append(triple)
                    self._cond.notify_all()
        except BaseException:
            # A FAILED job raises its error at the end of the stream;
            # the state machine (handle.state / error text) is the
            # canonical surface, the drainer only moves triples.
            pass
        self.handle.wait()
        with self._cond:
            self.finished_at = time.monotonic()
            self._cond.notify_all()

    # -- read side -------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.handle.done()

    def triple_count(self) -> int:
        with self._cond:
            return len(self._triples)

    def read_triples(
        self, cursor: int, limit: int, wait: float = 0.0
    ) -> Tuple[List[Tuple[Any, Any, Any]], bool]:
        """Up to ``limit`` triples from ``cursor`` on, long-poll style.

        Blocks up to ``wait`` seconds for new triples (or the terminal
        state) when the cursor is at the log's end.  Returns the chunk
        plus a ``drained`` flag: True once the job is terminal *and*
        the returned chunk reaches the end of the log — the client's
        stream iterator ends there.
        """
        if cursor < 0:
            raise UnknownJob(f"negative stream cursor {cursor}")
        deadline = time.monotonic() + max(0.0, wait)
        with self._cond:
            while len(self._triples) <= cursor and self.finished_at is None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            chunk = self._triples[cursor:cursor + limit]
            drained = (
                self.finished_at is not None
                and cursor + len(chunk) >= len(self._triples)
            )
            return chunk, drained

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Block until the drainer published the terminal state."""
        with self._cond:
            return self._cond.wait_for(
                lambda: self.finished_at is not None, timeout=timeout
            )

    def status(self) -> Dict[str, Any]:
        """JSON-dumpable live status of this job."""
        done_pairs, total_pairs = self.handle.progress()
        acct = self.handle.accounting
        error = self.handle._error
        return {
            "job": self.job_id,
            "tenant": self.tenant,
            "state": self.handle.state.value,
            "pairs_done": done_pairs,
            "pairs_total": total_pairs,
            "streamed": self.triple_count(),
            "accounting": acct.to_dict() if acct is not None else None,
            "error": f"{type(error).__name__}: {error}" if error is not None else None,
        }


class JobRegistry:
    """Tenant-scoped job records with ack/TTL retention."""

    def __init__(self, result_ttl: float = DEFAULT_RESULT_TTL) -> None:
        if result_ttl <= 0:
            raise ValueError(f"result_ttl must be positive, got {result_ttl}")
        self.result_ttl = result_ttl
        self._lock = threading.Lock()
        self._jobs: Dict[str, JobRecord] = {}
        self._ids = itertools.count()

    # -- write side ------------------------------------------------------

    def register(self, tenant: str, handle: RunHandle) -> JobRecord:
        """Wrap a freshly submitted handle; starts its drainer."""
        with self._lock:
            job_id = f"j-{next(self._ids):06d}"
        record = JobRecord(job_id, tenant, handle)
        with self._lock:
            self._jobs[job_id] = record
        return record

    def ack(self, tenant: str, job_id: str) -> bool:
        """Release a finished job's retention; True if purged now.

        Acking a still-running job just marks it — the record is purged
        on the first sweep after it finishes.
        """
        record = self.get(tenant, job_id)
        record.acked = True
        if record.done:
            with self._lock:
                self._jobs.pop(job_id, None)
            return True
        return False

    def purge_expired(self, now: Optional[float] = None) -> int:
        """Drop finished records past their TTL (or acked); returns count."""
        now = time.monotonic() if now is None else now
        with self._lock:
            expired = [
                job_id
                for job_id, rec in self._jobs.items()
                if rec.finished_at is not None
                and (rec.acked or now - rec.finished_at > self.result_ttl)
            ]
            for job_id in expired:
                del self._jobs[job_id]
        return len(expired)

    # -- read side -------------------------------------------------------

    def get(self, tenant: str, job_id: str) -> JobRecord:
        """The tenant's record under ``job_id``.

        Tenant isolation is enforced here: another tenant's job id
        raises the same :class:`UnknownJob` as a nonexistent one, so
        ids leak no cross-tenant information.
        """
        with self._lock:
            record = self._jobs.get(job_id)
        if record is None or record.tenant != tenant:
            raise UnknownJob(
                f"no retained job {job_id!r} for tenant {tenant!r} "
                f"(finished jobs are released on ack or after "
                f"{self.result_ttl:.0f}s)"
            )
        return record

    def jobs_of(self, tenant: str) -> List[JobRecord]:
        """The tenant's retained records, oldest first."""
        with self._lock:
            records = [r for r in self._jobs.values() if r.tenant == tenant]
        return sorted(records, key=lambda r: r.job_id)

    def live_records(self, tenant: Optional[str] = None) -> List[JobRecord]:
        """Non-terminal records (all tenants, or one)."""
        with self._lock:
            return [
                r
                for r in self._jobs.values()
                if not r.done and (tenant is None or r.tenant == tenant)
            ]

    def pending_pairs(self, tenant: str) -> int:
        """Summed accepted pairs of the tenant's live jobs (quota input)."""
        return sum(r.handle.workload.n_pairs for r in self.live_records(tenant))

    def counts(self) -> Dict[str, int]:
        """``{"live": ..., "retained": ...}`` for health reporting."""
        with self._lock:
            live = sum(1 for r in self._jobs.values() if not r.done)
            return {"live": live, "retained": len(self._jobs) - live}

    def cancel_live(self) -> List[JobRecord]:
        """Request cancellation of every live job; returns the records."""
        live = self.live_records()
        for record in live:
            record.handle.cancel()
        return live

    def unfinished(self) -> List[JobRecord]:
        """Records whose drainer has not published a terminal state."""
        with self._lock:
            return [r for r in self._jobs.values() if r.finished_at is None]
