"""Multi-tenant identity, priority weights and admission quotas.

The serving daemon maps tenants onto the session's FAIR
:class:`~repro.core.scheduler.JobScheduler` with two mechanisms:

- **weight** — every submission's requested ``priority`` is multiplied
  by the tenant's weight before it reaches the scheduler, so the
  stride hand-out gives a weight-3 tenant three times the device share
  of a weight-1 tenant at equal requested priority.  Weights compose
  with priorities exactly like priorities compose with each other: the
  scheduler only ever sees the product.
- **quotas** — enforced at admission, before the session is touched:
  ``max_active`` caps the tenant's simultaneously live (non-terminal)
  jobs, ``max_pending_pairs`` caps the total accepted pairs of those
  jobs, so one tenant can neither monopolize the ``max_active`` job
  slots nor park an unbounded pair backlog in the queue.

A :class:`TenantDirectory` resolves connection ``hello`` names to
:class:`TenantConfig` entries, loaded from a JSON document::

    {"tenants": [
        {"name": "alice", "weight": 3.0, "max_active": 4},
        {"name": "bob", "weight": 1.0, "max_pending_pairs": 2000}
     ],
     "allow_unknown": true,
     "default": {"weight": 1.0, "max_active": 8}}

``allow_unknown`` (default true) admits names missing from the list
under the ``default`` template — the permissive single-team setup;
``"allow_unknown": false`` turns the directory into an allow-list.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional

from repro.serve.errors import UnknownTenant

__all__ = ["TenantConfig", "TenantDirectory"]


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's scheduling weight and admission quotas."""

    name: str
    #: Fair-share multiplier applied to every submission's priority.
    weight: float = 1.0
    #: Cap on simultaneously live (non-terminal) jobs; None = unlimited.
    max_active: Optional[int] = None
    #: Cap on the summed accepted pairs of live jobs; None = unlimited.
    max_pending_pairs: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if not self.weight > 0:
            raise ValueError(f"tenant weight must be positive, got {self.weight}")
        if self.max_active is not None and self.max_active < 1:
            raise ValueError(f"max_active must be >= 1, got {self.max_active}")
        if self.max_pending_pairs is not None and self.max_pending_pairs < 1:
            raise ValueError(
                f"max_pending_pairs must be >= 1, got {self.max_pending_pairs}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-dumpable form (shipped back in the ``hello`` response)."""
        return {
            "name": self.name,
            "weight": self.weight,
            "max_active": self.max_active,
            "max_pending_pairs": self.max_pending_pairs,
        }


def _config_from_spec(spec: Dict[str, Any], name: Optional[str] = None) -> TenantConfig:
    if not isinstance(spec, dict):
        raise ValueError(f"tenant spec must be a JSON object, got {type(spec).__name__}")
    unknown = set(spec) - {"name", "weight", "max_active", "max_pending_pairs"}
    if unknown:
        raise ValueError(f"unknown tenant spec keys {sorted(unknown)}")
    resolved = name if name is not None else spec.get("name")
    if not resolved:
        raise ValueError("tenant spec needs a 'name'")
    return TenantConfig(
        name=resolved,
        weight=float(spec.get("weight", 1.0)),
        max_active=spec.get("max_active"),
        max_pending_pairs=spec.get("max_pending_pairs"),
    )


class TenantDirectory:
    """Name -> :class:`TenantConfig` resolution for the daemon."""

    def __init__(
        self,
        tenants: Iterable[TenantConfig] = (),
        *,
        allow_unknown: bool = True,
        default: Optional[TenantConfig] = None,
    ) -> None:
        self._tenants: Dict[str, TenantConfig] = {}
        for tenant in tenants:
            if tenant.name in self._tenants:
                raise ValueError(f"duplicate tenant {tenant.name!r}")
            self._tenants[tenant.name] = tenant
        self.allow_unknown = allow_unknown
        #: Template applied to names missing from the directory (its
        #: ``name`` field is replaced by the connecting name).
        self.default = default if default is not None else TenantConfig("default")

    @classmethod
    def permissive(cls) -> "TenantDirectory":
        """The no-config default: every name admitted at weight 1."""
        return cls()

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "TenantDirectory":
        """Build a directory from the JSON document shape (see module doc)."""
        if not isinstance(doc, dict):
            raise ValueError(f"tenant config must be a JSON object, got {type(doc).__name__}")
        unknown = set(doc) - {"tenants", "allow_unknown", "default"}
        if unknown:
            raise ValueError(f"unknown tenant config keys {sorted(unknown)}")
        specs = doc.get("tenants", [])
        if not isinstance(specs, list):
            raise ValueError("'tenants' must be a list of tenant objects")
        default_spec = doc.get("default", {})
        return cls(
            [_config_from_spec(spec) for spec in specs],
            allow_unknown=bool(doc.get("allow_unknown", True)),
            default=_config_from_spec(dict(default_spec, name="default")),
        )

    @classmethod
    def from_file(cls, path) -> "TenantDirectory":
        """Load the JSON tenant configuration at ``path``."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def __len__(self) -> int:
        return len(self._tenants)

    def resolve(self, name: str) -> TenantConfig:
        """The tenant configuration for a connecting ``hello`` name.

        Unknown names inherit the ``default`` template when
        ``allow_unknown`` is set, and raise :class:`UnknownTenant`
        otherwise.
        """
        if not name or not isinstance(name, str):
            raise UnknownTenant(f"tenant name must be a non-empty string, got {name!r}")
        tenant = self._tenants.get(name)
        if tenant is not None:
            return tenant
        if not self.allow_unknown:
            raise UnknownTenant(
                f"unknown tenant {name!r}; the daemon's tenant directory is "
                f"an allow-list"
            )
        d = self.default
        return TenantConfig(
            name=name,
            weight=d.weight,
            max_active=d.max_active,
            max_pending_pairs=d.max_pending_pairs,
        )
