"""Client library of the Rocket serving daemon.

:func:`connect` opens a socket to a running daemon and returns a
:class:`ServedSession` that mirrors the in-process
:class:`~repro.core.session.RocketSession` surface — ``submit`` takes
the same :class:`~repro.core.workload.Workload` shapes (or a plain key
list) and returns a :class:`ServedHandle` with the familiar
``result`` / ``stream`` / ``progress`` / ``cancel`` / ``wait`` verbs,
so in-process code ports by swapping the constructor::

    with connect("127.0.0.1:7070", tenant="alice") as session:
        handle = session.submit(DeltaPairs(prior, new), priority=2.0)
        for a, b, value in handle.stream():
            ...
        matrix = handle.result()

Differences a caller can observe, all consequences of the socket:

- a FAILED job's ``result()`` raises
  :class:`~repro.serve.errors.RemoteJobFailed` carrying the remote
  error text, not the original exception type (types don't cross JSON);
- jobs **survive the client**: dropping the connection does not cancel
  anything.  Reconnect and :meth:`ServedSession.handle` by job id to
  reattach, :meth:`ServedHandle.ack` to release retained results;
- ``stream()`` replays from the daemon's arrival-ordered log, so —
  unlike the exactly-once in-process stream — every (re)iteration
  yields the full sequence from the start.

A session holds one socket and serializes its requests, so one
``ServedSession`` is thread-safe but blocking calls (``result`` on a
slow job) hold other threads' requests back; open one connection per
concurrent consumer instead — connections are cheap, the daemon's
session is the shared resource.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.core.result import ResultMatrix
from repro.core.session import RunState
from repro.core.workload import Workload, as_workload
from repro.serve import protocol
from repro.serve.errors import (
    ProtocolError,
    RemoteJobFailed,
    ServeConnectionError,
)

__all__ = ["connect", "ServedSession", "ServedHandle"]

#: Client-side long-poll round per request; server caps at its own bound.
POLL_TIMEOUT = 5.0


def _parse_address(address: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    if isinstance(address, tuple):
        host, port = address
        return host, int(port)
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"address must be 'HOST:PORT' or a (host, port) tuple, got {address!r}"
        )
    return host or "127.0.0.1", int(port)


def connect(
    address: Union[str, Tuple[str, int]],
    *,
    tenant: str = "default",
    timeout: float = 10.0,
) -> "ServedSession":
    """Open a tenant-bound session to the daemon at ``address``.

    Raises :class:`ServeConnectionError` when nothing listens there,
    and the typed server rejection (e.g.
    :class:`~repro.serve.errors.UnknownTenant`) when the daemon turns
    the ``hello`` down.
    """
    host, port = _parse_address(address)
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise ServeConnectionError(
            f"cannot connect to rocket daemon at {host}:{port}: {exc}"
        ) from None
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return ServedSession(sock, tenant=tenant, address=f"{host}:{port}")


class ServedSession:
    """A tenant's connection to the daemon; mirrors ``RocketSession``."""

    def __init__(self, sock: socket.socket, *, tenant: str, address: str) -> None:
        self._sock = sock
        self._lock = threading.Lock()
        self._closed = False
        self.address = address
        hello = self._request(
            {"op": "hello", "tenant": tenant, "version": protocol.PROTOCOL_VERSION}
        )
        #: The daemon-resolved tenant configuration (name/weight/quotas).
        self.tenant: Dict[str, Any] = hello["tenant"]
        #: Name of the backend the daemon's session runs on.
        self.backend: str = hello["backend"]

    # -- transport -------------------------------------------------------

    def _request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response exchange; raises typed server errors."""
        with self._lock:
            if self._closed:
                raise ServeConnectionError("served session is closed")
            try:
                protocol.send_message(self._sock, message)
                response = protocol.recv_message(self._sock)
            except ProtocolError as exc:
                raise ServeConnectionError(f"connection broke mid-frame: {exc}") from None
            except OSError as exc:
                raise ServeConnectionError(f"connection to daemon lost: {exc}") from None
        if response is None:
            raise ServeConnectionError("daemon closed the connection")
        if not response.get("ok", False):
            protocol.raise_error_response(response)
        return response

    # -- session surface -------------------------------------------------

    def submit(
        self,
        workload: Union[Workload, List[Any]],
        *,
        priority: float = 1.0,
        max_inflight: Optional[int] = None,
    ) -> "ServedHandle":
        """Queue a workload on the daemon; returns its handle.

        Accepts every :class:`Workload` shape or a plain key sequence
        (run as all-pairs), exactly like the in-process ``submit``.  A
        ``FilteredPairs`` predicate is evaluated *here* — the accepted
        pair set travels, not the callable.
        """
        response = self._request(
            {
                "op": "submit",
                "workload": protocol.workload_to_wire(as_workload(workload)),
                "priority": priority,
                "max_inflight": max_inflight,
            }
        )
        return ServedHandle(self, response["job"])

    def run(self, workload) -> ResultMatrix:
        """Submit and block for the result (convenience wrapper)."""
        return self.submit(workload).result()

    def handle(self, job_id: str) -> "ServedHandle":
        """Reattach to a job submitted earlier (same tenant, any
        connection); the reason served jobs survive disconnects."""
        record = ServedHandle(self, job_id)
        record.status()  # fail fast (UnknownJob) instead of on first use
        return record

    def keys(self) -> List[Any]:
        """The served corpus's key list."""
        return self._request({"op": "keys"})["keys"]

    def jobs(self) -> List[Dict[str, Any]]:
        """Status of every retained job of this tenant, oldest first."""
        return self._request({"op": "jobs"})["jobs"]

    def metrics(self) -> Dict[str, Any]:
        """``{"session": ..., "serve": ...}`` metrics snapshots."""
        return self._request({"op": "metrics"})["metrics"]

    def health(self) -> Dict[str, Any]:
        """The daemon's liveness/drain status document."""
        return self._request({"op": "health"})

    def close(self) -> None:
        """Drop the connection.  Idempotent; live jobs keep running."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ServedSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ServedHandle:
    """Remote view of one served job; mirrors ``RunHandle``."""

    def __init__(self, session: ServedSession, job_id: str) -> None:
        self._session = session
        self.job_id = job_id
        self._result: Optional[ResultMatrix] = None
        self._last_status: Optional[Dict[str, Any]] = None

    # -- state -----------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """The job's full daemon-side status document."""
        self._last_status = self._session._request(
            {"op": "status", "job": self.job_id}
        )
        return self._last_status

    @property
    def state(self) -> RunState:
        return RunState(self.status()["state"])

    def progress(self) -> Tuple[int, int]:
        """``(pairs_done, pairs_total)`` of this job, live."""
        status = self.status()
        return status["pairs_done"], status["pairs_total"]

    def done(self) -> bool:
        return RunState(self.status()["state"]) in (
            RunState.DONE,
            RunState.FAILED,
            RunState.CANCELLED,
        )

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until terminal; True once terminal, False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = POLL_TIMEOUT
            if deadline is not None:
                remaining = min(remaining, deadline - time.monotonic())
                if remaining < 0:
                    return False
            status = self._session._request(
                {"op": "wait", "job": self.job_id, "timeout": max(0.0, remaining)}
            )
            self._last_status = status
            if RunState(status["state"]) in (
                RunState.DONE,
                RunState.FAILED,
                RunState.CANCELLED,
            ):
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False

    # -- consumption -----------------------------------------------------

    def result(self, timeout: Optional[float] = None) -> ResultMatrix:
        """Block until the job finishes; return its result matrix.

        Mirrors ``RunHandle.result``: raises
        :class:`~repro.serve.errors.RemoteJobFailed` for FAILED jobs
        (the JSON wire cannot carry the original exception type),
        ``RuntimeError`` for cancelled ones, ``TimeoutError`` when
        ``timeout`` elapses first.  The decoded matrix is cached, so
        repeated calls don't re-ship it.
        """
        if self._result is not None:
            return self._result
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = POLL_TIMEOUT
            if deadline is not None:
                remaining = min(remaining, deadline - time.monotonic())
            status = self._session._request(
                {"op": "result", "job": self.job_id, "timeout": max(0.0, remaining)}
            )
            self._last_status = status
            state = RunState(status["state"])
            if state is RunState.DONE:
                self._result = protocol.matrix_from_wire(status["result"])
                return self._result
            if state is RunState.FAILED:
                raise RemoteJobFailed(
                    status.get("error") or "served job failed"
                )
            if state is RunState.CANCELLED:
                raise RuntimeError("job was cancelled")
            if deadline is not None and time.monotonic() >= deadline:
                done, total = status["pairs_done"], status["pairs_total"]
                raise TimeoutError(
                    f"job did not finish within {timeout}s ({done}/{total} pairs)"
                )

    def stream(self) -> Iterator[Tuple[Any, Any, Any]]:
        """Iterate ``(key_a, key_b, value)`` in daemon arrival order.

        Long-polls the daemon's replayable per-job log; unlike the
        in-process stream, every iterator starts from the beginning and
        yields the complete sequence (the log survives reconnects).  A
        FAILED job's :class:`RemoteJobFailed` is raised after the
        delivered pairs are drained, mirroring ``RunHandle.stream``.
        """
        cursor = 0
        while True:
            response = self._session._request(
                {
                    "op": "stream",
                    "job": self.job_id,
                    "cursor": cursor,
                    "wait": POLL_TIMEOUT,
                }
            )
            for a, b, value in response["triples"]:
                yield a, b, value
            cursor = response["cursor"]
            if response["drained"]:
                if RunState(response["state"]) is RunState.FAILED:
                    status = self.status()
                    raise RemoteJobFailed(
                        status.get("error") or "served job failed"
                    )
                return

    def cancel(self) -> bool:
        """Request cancellation; True if the job was still cancellable."""
        return self._session._request({"op": "cancel", "job": self.job_id})[
            "accepted"
        ]

    def ack(self) -> bool:
        """Release the daemon's retained results for this job.

        After the ack (and job completion) the id stops resolving —
        fetch the result first.  Returns True once the record is gone.
        """
        return self._session._request({"op": "ack", "job": self.job_id})["purged"]

    @property
    def accounting(self) -> Optional[Dict[str, Any]]:
        """The finished job's accounting record (dict form), if any."""
        return self.status().get("accounting")
