"""Exception vocabulary shared by the serving daemon and its clients.

Server-side handlers raise these; the protocol layer encodes them as
``{"ok": false, "error": CODE, "message": ...}`` responses, and the
client decodes the code back into the *same* class — a quota rejection
is a :class:`QuotaExceeded` on both sides of the socket.

:class:`ServeConnectionError` is different: it never crosses the wire.
It wraps transport-level failures (connection refused, reset,
mid-frame EOF) on the client, and subclasses :class:`ConnectionError`
so callers can catch networking trouble separately from server-side
rejections (all :class:`ServeError`).
"""

from __future__ import annotations

__all__ = [
    "ServeError",
    "ProtocolError",
    "UnknownTenant",
    "UnknownJob",
    "QuotaExceeded",
    "ServerDraining",
    "RemoteJobFailed",
    "ServeConnectionError",
]


class ServeError(RuntimeError):
    """Base class of every server-side rejection."""


class ProtocolError(ServeError):
    """Malformed frame or message — the connection cannot continue."""


class UnknownTenant(ServeError):
    """The ``hello`` named a tenant the directory does not know."""


class UnknownJob(ServeError):
    """No retained job under that id for this tenant.

    Raised both for ids that never existed and for jobs whose results
    were already released (acked, or past the retention TTL) — the two
    are indistinguishable by design, the registry keeps no tombstones.
    """


class QuotaExceeded(ServeError):
    """The tenant's ``max_active`` or pending-pair quota is exhausted."""


class ServerDraining(ServeError):
    """The daemon is draining (SIGTERM): no new submissions."""


class RemoteJobFailed(RuntimeError):
    """A served job ended FAILED; the message carries the remote error.

    The original exception type cannot be reconstructed across the
    JSON wire, so ``result()`` on a failed served job raises this with
    the remote ``type: message`` text where the in-process
    :class:`~repro.core.session.RunHandle` would re-raise the original.
    """


class ServeConnectionError(ConnectionError):
    """Client-side transport failure (refused, reset, mid-frame EOF)."""
