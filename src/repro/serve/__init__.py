"""Rocket-as-a-service: a persistent daemon sharing one warm session.

The paper's central economics — incremental comparison against a warm
cache hierarchy is orders of magnitude cheaper than cold recomputation
— only reach end users if the warm session outlives any single script.
This package provides that form factor:

- :mod:`repro.serve.daemon` — :class:`~repro.serve.daemon.RocketServer`
  owns one :class:`~repro.core.session.RocketSession` (any backend) and
  serves it over a TCP socket (``rocket-repro serve`` on the CLI);
- :mod:`repro.serve.client` — :func:`~repro.serve.client.connect`
  returns a :class:`~repro.serve.client.ServedSession` mirroring the
  in-process session/handle surface;
- :mod:`repro.serve.protocol` — the length-prefixed JSON wire format
  and the workload/result codecs both sides share;
- :mod:`repro.serve.tenants` — per-tenant fair-share weights and
  admission quotas mapped onto the session's FAIR scheduler;
- :mod:`repro.serve.registry` — disconnect-surviving job records with
  replayable streams and ack/TTL result retention;
- :mod:`repro.serve.errors` — the typed exception vocabulary crossing
  the wire.
"""

from repro.serve.client import ServedHandle, ServedSession, connect
from repro.serve.daemon import RocketServer
from repro.serve.errors import (
    ProtocolError,
    QuotaExceeded,
    RemoteJobFailed,
    ServeConnectionError,
    ServeError,
    ServerDraining,
    UnknownJob,
    UnknownTenant,
)
from repro.serve.protocol import PROTOCOL_VERSION
from repro.serve.registry import JobRegistry
from repro.serve.tenants import TenantConfig, TenantDirectory

__all__ = [
    "RocketServer",
    "ServedSession",
    "ServedHandle",
    "connect",
    "TenantConfig",
    "TenantDirectory",
    "JobRegistry",
    "PROTOCOL_VERSION",
    "ServeError",
    "ProtocolError",
    "UnknownTenant",
    "UnknownJob",
    "QuotaExceeded",
    "ServerDraining",
    "RemoteJobFailed",
    "ServeConnectionError",
]
