"""The Rocket serving daemon: one warm session, many tenants.

The paper's economics — comparing new items against a large corpus is
cheap once the cache hierarchy is warm — only pays off at user scale
if many clients share one warm session.  :class:`RocketServer` turns a
:class:`~repro.core.session.RocketSession` into that shared service: it
owns the session (local or cluster backend, elastic flags included),
listens on a TCP socket, and serves the length-prefixed JSON protocol
of :mod:`repro.serve.protocol` with one handler thread per connection.

Request verbs:

========== ==========================================================
``hello``   bind the connection to a tenant (must be first)
``keys``    the served corpus's key list
``submit``  queue a workload; returns the job id (quota-checked)
``status``  one job's state/progress/accounting
``jobs``    every retained job of the tenant
``wait``    long-poll a job's terminal state
``result``  the finished job's result matrix (or typed failure)
``stream``  a chunk of arrival-ordered triples from a cursor
``cancel``  request cancellation
``ack``     release the finished job's retained results
``metrics`` session + serve metrics registries (PR-6 shapes)
``health``  liveness/drain status for operators
========== ==========================================================

Multi-tenancy maps onto the session's FAIR scheduler: a submission's
requested priority is multiplied by its tenant's weight
(:mod:`repro.serve.tenants`), and per-tenant ``max_active`` /
``max_pending_pairs`` quotas are enforced at admission, before the
session is touched.  Job state lives in the
:class:`~repro.serve.registry.JobRegistry`, so it survives client
disconnects; results are retained until acked or a TTL expires.

Shutdown is graceful by default: ``SIGTERM`` (installed by
:meth:`serve_forever`) starts a **drain** — new submissions are
rejected with ``draining``, live jobs (queued ones included: the
scheduler admits and runs them) resolve, waiting clients receive
their results, then the session closes and the process exits.
"""

from __future__ import annotations

import signal
import socket
import threading
import time
from typing import Any, Callable, Dict, Optional

from repro.core.session import RocketSession, RunState, SessionClosed
from repro.core.workload import as_workload
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.serve import protocol
from repro.serve.errors import ProtocolError, QuotaExceeded, ServeError, ServerDraining
from repro.serve.registry import DEFAULT_RESULT_TTL, JobRegistry
from repro.serve.tenants import TenantConfig, TenantDirectory

__all__ = ["RocketServer"]

#: Server-side cap on one long-poll round (wait/result/stream).  Bounds
#: how long a handler thread blocks per request; clients loop.
LONG_POLL_CAP = 10.0

#: Triples per stream response frame.
STREAM_CHUNK = 4096


class _Connection:
    """Per-connection state threaded through the verb handlers."""

    __slots__ = ("sock", "peer", "tenant")

    def __init__(self, sock: socket.socket, peer) -> None:
        self.sock = sock
        self.peer = peer
        self.tenant: Optional[TenantConfig] = None


class RocketServer:
    """Serve one warm :class:`RocketSession` to many socket clients.

    The server borrows the session — it submits, reads and closes it,
    but does not create it — so any backend the session API supports
    (local, cluster, elastic cluster) is served unchanged::

        session = RocketSession(app, store, backend="cluster",
                                n_nodes=4, policy="fair")
        server = RocketServer(session, keys, port=7070,
                              tenants=TenantDirectory.from_file(cfg))
        server.serve_forever()          # SIGTERM drains and exits

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    construction) — the test and embedding shape, paired with
    :meth:`start` / :meth:`close` instead of :meth:`serve_forever`.
    """

    def __init__(
        self,
        session: RocketSession,
        keys,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        tenants: Optional[TenantDirectory] = None,
        result_ttl: float = DEFAULT_RESULT_TTL,
        drain_timeout: float = 120.0,
    ) -> None:
        self._session = session
        self._keys = list(keys)
        self._tenants = tenants if tenants is not None else TenantDirectory.permissive()
        self._registry = JobRegistry(result_ttl=result_ttl)
        self._drain_timeout = drain_timeout
        self._metrics = MetricsRegistry()
        self._log = get_logger("serve.daemon")
        self._lock = threading.Lock()  # guards submit admission + lifecycle
        self._draining = False
        self._closed = False
        self._started = False
        self._stop = threading.Event()
        self._started_at = time.monotonic()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._listener.bind((host, port))
            self._listener.listen(64)
        except OSError:
            self._listener.close()
            raise
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="rocket-serve-accept", daemon=True
        )
        self._purge_thread = threading.Thread(
            target=self._purge_loop, name="rocket-serve-purge", daemon=True
        )

    # -- lifecycle -------------------------------------------------------

    @property
    def address(self) -> str:
        """``host:port`` the daemon listens on."""
        return f"{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def closed(self) -> bool:
        return self._closed

    def start(self) -> "RocketServer":
        """Begin accepting connections (non-blocking); returns self."""
        with self._lock:
            if self._started:
                return self
            self._started = True
        self._accept_thread.start()
        self._purge_thread.start()
        self._log.info("serving on %s (backend=%s)", self.address, self._session.backend)
        return self

    def serve_forever(self, install_signals: Optional[bool] = None) -> None:
        """Serve until a drain is requested, then drain, close and return.

        Installs a ``SIGTERM``/``SIGINT`` -> :meth:`request_drain`
        handler when running on the main thread (pass
        ``install_signals=False`` to skip).
        """
        if install_signals is None:
            install_signals = threading.current_thread() is threading.main_thread()
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                signal.signal(signum, lambda *_: self.request_drain())
        self.start()
        self._stop.wait()
        self.close(drain=True)

    def request_drain(self) -> None:
        """Flip to draining (signal-handler safe) and wake serve_forever.

        New submissions are rejected immediately; everything else —
        status, result, stream of live and retained jobs — keeps
        working while the drain completes.
        """
        self._draining = True
        self._stop.set()

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the daemon; idempotent (unlike a session's close).

        With ``drain=True`` live jobs — queued handles included — run
        to completion first (bounded by ``timeout`` /
        ``drain_timeout``), so every handle resolves before the
        session closes; with ``drain=False`` live jobs are cancelled.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._draining = True
        self._stop.set()
        deadline = time.monotonic() + (
            timeout if timeout is not None else self._drain_timeout
        )
        if drain:
            for record in self._registry.unfinished():
                record.wait_drained(timeout=max(0.0, deadline - time.monotonic()))
        # Whatever remains (drain=False, or the deadline passed) is
        # cancelled so no handle is left unresolved behind the close.
        self._registry.cancel_live()
        for record in self._registry.unfinished():
            record.wait_drained(timeout=5.0)
        try:
            self._session.close()
        except SessionClosed:
            pass  # the embedding application closed it first
        try:
            self._listener.close()
        except OSError:
            pass
        self._log.info("daemon closed (drained=%s)", drain)

    def __enter__(self) -> "RocketServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- background loops ------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed
            self._metrics.inc("serve.connections.accepted")
            threading.Thread(
                target=self._serve_connection,
                args=(sock, peer),
                name=f"rocket-serve-conn-{peer[1] if len(peer) > 1 else peer}",
                daemon=True,
            ).start()

    def _purge_loop(self) -> None:
        while not self._closed:
            purged = self._registry.purge_expired()
            if purged:
                self._metrics.inc("serve.jobs.purged", purged)
            time.sleep(1.0)

    # -- connection handling ---------------------------------------------

    def _serve_connection(self, sock: socket.socket, peer) -> None:
        conn = _Connection(sock, peer)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            while True:
                try:
                    request = protocol.recv_message(sock)
                except ProtocolError as exc:
                    # The stream is unframed from here on: answer if
                    # possible, then drop the connection.
                    self._try_send(sock, protocol.error_response(exc))
                    return
                if request is None:
                    return  # clean disconnect; jobs survive in the registry
                self._metrics.inc("serve.requests")
                response = self._dispatch(conn, request)
                try:
                    protocol.send_message(sock, response)
                except OSError:
                    return  # peer vanished mid-response; jobs survive
        except OSError:
            return
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _try_send(self, sock: socket.socket, message: Dict[str, Any]) -> None:
        try:
            protocol.send_message(sock, message)
        except OSError:
            pass

    def _dispatch(self, conn: _Connection, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        handler: Optional[Callable] = getattr(self, f"_op_{op}", None) if isinstance(
            op, str
        ) and not op.startswith("_") else None
        try:
            if handler is None:
                raise ProtocolError(f"unknown op {op!r}")
            if conn.tenant is None and op != "hello":
                raise ProtocolError(f"first message must be 'hello', got {op!r}")
            response = handler(conn, request)
        except ServeError as exc:
            self._metrics.inc(f"serve.errors.{type(exc).__name__}")
            return protocol.error_response(exc)
        except Exception as exc:  # noqa: BLE001 - daemon must survive handlers
            self._log.warning("handler %s failed: %s", op, exc)
            self._metrics.inc("serve.errors.internal")
            return protocol.error_response(
                ServeError(f"{type(exc).__name__}: {exc}")
            )
        response.setdefault("ok", True)
        return response

    # -- verbs -----------------------------------------------------------

    def _op_hello(self, conn: _Connection, request: Dict[str, Any]) -> Dict[str, Any]:
        version = request.get("version", protocol.PROTOCOL_VERSION)
        if version != protocol.PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version mismatch: client {version}, "
                f"server {protocol.PROTOCOL_VERSION}"
            )
        conn.tenant = self._tenants.resolve(request.get("tenant", "default"))
        return {
            "server": "rocket-serve",
            "version": protocol.PROTOCOL_VERSION,
            "backend": self._session.backend,
            "tenant": conn.tenant.to_dict(),
        }

    def _op_keys(self, conn: _Connection, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"keys": list(self._keys)}

    def _op_submit(self, conn: _Connection, request: Dict[str, Any]) -> Dict[str, Any]:
        tenant = conn.tenant
        workload = protocol.workload_from_wire(request.get("workload"))
        priority = float(request.get("priority", 1.0))
        if not priority > 0:
            raise ProtocolError(f"priority must be positive, got {priority}")
        max_inflight = request.get("max_inflight")
        if max_inflight is not None:
            max_inflight = int(max_inflight)
        # Admission is serialized so two racing submissions cannot both
        # pass a nearly-exhausted quota.
        with self._lock:
            if self._draining:
                raise ServerDraining("daemon is draining; submit elsewhere")
            if tenant.max_active is not None:
                live = len(self._registry.live_records(tenant.name))
                if live >= tenant.max_active:
                    raise QuotaExceeded(
                        f"tenant {tenant.name!r} already has {live} live jobs "
                        f"(max_active={tenant.max_active})"
                    )
            if tenant.max_pending_pairs is not None:
                pending = self._registry.pending_pairs(tenant.name)
                if pending + workload.n_pairs > tenant.max_pending_pairs:
                    raise QuotaExceeded(
                        f"tenant {tenant.name!r} has {pending} pending pairs; "
                        f"+{workload.n_pairs} exceeds max_pending_pairs="
                        f"{tenant.max_pending_pairs}"
                    )
            # Tenant weight multiplies the requested priority: the FAIR
            # scheduler's stride hand-out then gives the tenant its
            # configured share without knowing tenants exist.
            handle = self._session.submit(
                as_workload(workload),
                priority=priority * tenant.weight,
                max_inflight=max_inflight,
            )
            record = self._registry.register(tenant.name, handle)
        self._metrics.inc("serve.jobs.submitted")
        self._metrics.inc(f"serve.tenants.{tenant.name}.submitted")
        # Pairs served straight from the persistent memo store (zero when
        # the session has no store): tenants see whose corpora re-use pays.
        memo_hits = int(getattr(handle, "memo_hits", 0))
        if memo_hits:
            self._metrics.inc("serve.store_hits", memo_hits)
            self._metrics.inc(f"serve.tenants.{tenant.name}.store_hits", memo_hits)
        self._log.info(
            "job %s submitted by %s (%s, w=%g)",
            record.job_id, tenant.name, workload.describe(), priority * tenant.weight,
        )
        return {
            "job": record.job_id,
            "pairs": workload.n_pairs,
            "effective_priority": priority * tenant.weight,
        }

    def _record(self, conn: _Connection, request: Dict[str, Any]):
        job_id = request.get("job")
        if not isinstance(job_id, str):
            raise ProtocolError(f"'job' must be a job-id string, got {job_id!r}")
        return self._registry.get(conn.tenant.name, job_id)

    def _op_status(self, conn: _Connection, request: Dict[str, Any]) -> Dict[str, Any]:
        return self._record(conn, request).status()

    def _op_jobs(self, conn: _Connection, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"jobs": [r.status() for r in self._registry.jobs_of(conn.tenant.name)]}

    def _op_wait(self, conn: _Connection, request: Dict[str, Any]) -> Dict[str, Any]:
        record = self._record(conn, request)
        wait = min(float(request.get("timeout", LONG_POLL_CAP)), LONG_POLL_CAP)
        record.handle.wait(timeout=max(0.0, wait))
        return record.status()

    def _op_result(self, conn: _Connection, request: Dict[str, Any]) -> Dict[str, Any]:
        record = self._record(conn, request)
        wait = min(float(request.get("timeout", LONG_POLL_CAP)), LONG_POLL_CAP)
        done = record.handle.wait(timeout=max(0.0, wait))
        status = record.status()
        if not done:
            return status  # state is non-terminal: the client loops
        if record.handle.state is RunState.DONE:
            status["result"] = protocol.matrix_to_wire(record.handle._matrix)
        return status

    def _op_stream(self, conn: _Connection, request: Dict[str, Any]) -> Dict[str, Any]:
        record = self._record(conn, request)
        cursor = int(request.get("cursor", 0))
        wait = min(float(request.get("wait", LONG_POLL_CAP)), LONG_POLL_CAP)
        chunk, drained = record.read_triples(cursor, STREAM_CHUNK, wait=wait)
        return {
            "triples": [[a, b, v] for a, b, v in chunk],
            "cursor": cursor + len(chunk),
            "drained": drained,
            "state": record.handle.state.value,
        }

    def _op_cancel(self, conn: _Connection, request: Dict[str, Any]) -> Dict[str, Any]:
        record = self._record(conn, request)
        accepted = record.handle.cancel()
        if accepted:
            self._metrics.inc("serve.jobs.cancel_requests")
        return {"accepted": accepted, "state": record.handle.state.value}

    def _op_ack(self, conn: _Connection, request: Dict[str, Any]) -> Dict[str, Any]:
        purged = self._registry.ack(conn.tenant.name, request.get("job"))
        return {"purged": purged}

    def _op_metrics(self, conn: _Connection, request: Dict[str, Any]) -> Dict[str, Any]:
        counts = self._registry.counts()
        self._metrics.set_gauge("serve.jobs.live", counts["live"])
        self._metrics.set_gauge("serve.jobs.retained", counts["retained"])
        return {
            "metrics": {
                "session": self._session.metrics(),
                "serve": self._metrics.snapshot(),
            }
        }

    def _op_health(self, conn: _Connection, request: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "status": "draining" if self._draining else "serving",
            "backend": self._session.backend,
            "uptime_seconds": time.monotonic() - self._started_at,
            "jobs": self._registry.counts(),
            "n_keys": len(self._keys),
        }
