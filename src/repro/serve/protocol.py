"""Wire protocol of the Rocket serving daemon.

The daemon and its clients speak length-prefixed JSON over a stream
socket: every message is one frame — a 4-byte big-endian payload length
followed by that many bytes of UTF-8 JSON.  The exchange is strictly
request/response: the client sends one request object (``{"op": ...}``)
and reads exactly one response object (``{"ok": true, ...}`` or
``{"ok": false, "error": CODE, "message": ...}``), so one socket needs
no multiplexing and a thread-per-connection server needs no framing
state beyond the socket itself.

This module owns everything both sides must agree on:

- frame encoding (:func:`send_message` / :func:`recv_message`);
- the workload codec (:func:`workload_to_wire` /
  :func:`workload_from_wire`) translating the four
  :class:`~repro.core.workload.Workload` shapes into plain JSON — a
  :class:`~repro.core.workload.FilteredPairs` predicate cannot travel
  as code, so the *client* evaluates it and ships the accepted pair
  set, which the server rebuilds into an equivalent picklable filter
  (:class:`PairSetFilter`) the cluster backend can fork to its workers;
- the result codec (:func:`matrix_to_wire` / :func:`matrix_from_wire`)
  reusing the ``rocket-results`` JSON document shape of
  :func:`repro.core.result.save_results`;
- the error vocabulary (:data:`ERROR_TYPES` mapping wire codes to the
  exception classes in :mod:`repro.serve.errors`).

Keys must be JSON scalars (strings or numbers): the daemon serves one
corpus whose keys travel in every submit/result exchange.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, List, Optional, Tuple

from repro.core.result import ResultMatrix
from repro.core.workload import (
    AllPairs,
    Bipartite,
    DeltaPairs,
    FilteredPairs,
    Workload,
)
from repro.serve.errors import (
    ProtocolError,
    QuotaExceeded,
    ServeError,
    ServerDraining,
    UnknownJob,
    UnknownTenant,
)

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "PairSetFilter",
    "send_message",
    "recv_message",
    "workload_to_wire",
    "workload_from_wire",
    "matrix_to_wire",
    "matrix_from_wire",
    "error_response",
    "raise_error_response",
]

#: Bumped on incompatible wire changes; ``hello`` exchanges it.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's payload — a corrupted length prefix must
#: fail the connection, not allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


# ----------------------------------------------------------------------
# Framing


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Write one frame: 4-byte big-endian length + UTF-8 JSON payload."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"message of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame bound"
        )
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary."""
    chunks: List[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; returns the decoded object, or None on clean EOF."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte bound"
        )
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError("connection closed between frame header and payload")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frames must hold JSON objects, got {type(message).__name__}"
        )
    return message


# ----------------------------------------------------------------------
# Workload codec


class PairSetFilter:
    """Picklable pair predicate accepting an explicit unordered-pair set.

    The served form of a client-side :class:`FilteredPairs` predicate:
    the client evaluates its (arbitrary, unserializable) callable over
    the workload once and ships the accepted ``(key_a, key_b)`` pairs;
    the server rebuilds the workload with this filter, which the
    cluster backend can pickle onto its worker processes.
    """

    __slots__ = ("_pairs",)

    def __init__(self, pairs) -> None:
        self._pairs = frozenset(tuple(p) for p in pairs)

    def __call__(self, a, b) -> bool:
        return (a, b) in self._pairs or (b, a) in self._pairs

    def __reduce__(self):
        return (PairSetFilter, (sorted(self._pairs),))


def _check_wire_keys(keys, what: str) -> List[Any]:
    if not isinstance(keys, list) or not keys:
        raise ProtocolError(f"{what} must be a non-empty list")
    for key in keys:
        if not isinstance(key, (str, int, float)):
            raise ProtocolError(
                f"{what} must hold JSON scalar keys, got {type(key).__name__}"
            )
    return keys


def workload_to_wire(workload: Workload) -> Dict[str, Any]:
    """Encode a workload as a plain-JSON description.

    ``FilteredPairs`` is encoded by *evaluating* the predicate (an
    O(pairs) sweep, priced on the client) into the accepted pair list;
    the other shapes ship their key lists only.
    """
    for key in workload.keys:
        if not isinstance(key, (str, int, float)):
            raise ProtocolError(
                f"served workloads need JSON scalar keys, got "
                f"{type(key).__name__} ({key!r})"
            )
    if isinstance(workload, FilteredPairs):
        return {
            "kind": "filtered",
            "keys": list(workload.keys),
            "pairs": [[a, b] for a, b in workload.pairs()],
        }
    if isinstance(workload, AllPairs):
        return {"kind": "all", "keys": list(workload.keys)}
    if isinstance(workload, Bipartite):
        return {
            "kind": "bipartite",
            "keys_a": list(workload.keys_a),
            "keys_b": list(workload.keys_b),
        }
    if isinstance(workload, DeltaPairs):
        return {
            "kind": "delta",
            "prior_keys": list(workload.prior_keys),
            "new_keys": list(workload.new_keys),
        }
    raise ProtocolError(
        f"workload type {type(workload).__name__} has no wire encoding"
    )


def workload_from_wire(doc: Any) -> Workload:
    """Rebuild the workload a client described; inverse of the encoder."""
    if not isinstance(doc, dict):
        raise ProtocolError(f"workload must be a JSON object, got {type(doc).__name__}")
    kind = doc.get("kind")
    try:
        if kind == "all":
            return AllPairs(_check_wire_keys(doc.get("keys"), "keys"))
        if kind == "filtered":
            keys = _check_wire_keys(doc.get("keys"), "keys")
            pairs = doc.get("pairs")
            if not isinstance(pairs, list):
                raise ProtocolError("filtered workload needs a 'pairs' list")
            return FilteredPairs(keys, PairSetFilter(pairs))
        if kind == "bipartite":
            return Bipartite(
                _check_wire_keys(doc.get("keys_a"), "keys_a"),
                _check_wire_keys(doc.get("keys_b"), "keys_b"),
            )
        if kind == "delta":
            return DeltaPairs(
                _check_wire_keys(doc.get("prior_keys"), "prior_keys"),
                _check_wire_keys(doc.get("new_keys"), "new_keys"),
            )
    except (ValueError, TypeError) as exc:
        raise ProtocolError(f"invalid {kind} workload: {exc}") from None
    raise ProtocolError(f"unknown workload kind {kind!r}")


# ----------------------------------------------------------------------
# Result codec


def matrix_to_wire(matrix: ResultMatrix) -> Dict[str, Any]:
    """Encode a (complete or partial) scalar result matrix.

    Same document shape as :func:`repro.core.result.save_results`,
    minus the file: the ordered key list plus ``[i, j, value]`` index
    triples.  Keys are shipped verbatim (JSON scalars), not
    stringified, so the decoded matrix is value-identical.
    """
    triples = []
    with matrix._lock:
        for (i, j), v in sorted(matrix._values.items()):
            triples.append([i, j, float(v)])
    return {
        "format": "rocket-results",
        "keys": list(matrix.keys),
        "values": triples,
        "expected_pairs": matrix.expected_pairs,
    }


def matrix_from_wire(doc: Any) -> ResultMatrix:
    """Rebuild a result matrix from its wire document."""
    if not isinstance(doc, dict) or doc.get("format") != "rocket-results":
        raise ProtocolError("malformed result document")
    matrix: ResultMatrix = ResultMatrix(
        doc["keys"], expected_pairs=doc.get("expected_pairs")
    )
    keys = matrix.keys
    for i, j, v in doc["values"]:
        matrix.set(keys[i], keys[j], v)
    return matrix


# ----------------------------------------------------------------------
# Errors over the wire

#: Wire error code -> client-side exception class.
ERROR_TYPES = {
    "protocol": ProtocolError,
    "unknown-tenant": UnknownTenant,
    "unknown-job": UnknownJob,
    "quota": QuotaExceeded,
    "draining": ServerDraining,
    "error": ServeError,
}

_ERROR_CODES = {cls: code for code, cls in ERROR_TYPES.items()}


def error_response(exc: BaseException) -> Dict[str, Any]:
    """Server side: encode an exception as an error response object."""
    code = _ERROR_CODES.get(type(exc), "error")
    return {"ok": False, "error": code, "message": str(exc)}


def raise_error_response(response: Dict[str, Any]) -> None:
    """Client side: raise the typed exception an error response carries."""
    cls = ERROR_TYPES.get(response.get("error"), ServeError)
    raise cls(response.get("message", "server error"))
