"""Analytical performance model (paper Section 6.1)."""

from repro.model.perfmodel import (
    PerformanceModel,
    StageCalibration,
    t_gpu,
    t_cpu,
    t_io,
    t_min,
    system_efficiency,
)

__all__ = [
    "PerformanceModel",
    "StageCalibration",
    "t_gpu",
    "t_cpu",
    "t_io",
    "t_min",
    "system_efficiency",
]
