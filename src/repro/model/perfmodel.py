r"""The paper's analytical performance model (Section 6.1).

Given ``n`` items, the comparison pipeline runs ``C(n,2)`` times and the
load pipeline ``R*n`` times, where ``R >= 1`` is the *relative number of
loads* — the paper's central data-reuse metric.  With perfect overlap
the run time is the maximum of the per-resource totals:

.. math::

   T_{GPU} &= R n\, t_{pre} + \binom{n}{2} t_{cmp} \\
   T_{CPU} &= R n\, t_{parse} + \binom{n}{2} t_{post} \\
   T_{IO}  &\approx R n\, \overline{size} / BW

The lower bound ``T_min`` assumes infinite memory (R = 1), infinite I/O
bandwidth, and GPU-bound processing; *system efficiency* on ``p`` nodes
is ``(T_min / p) / T_measured``.

All stage times are expressed at a reference GPU speed (the TitanX
Maxwell the paper measured Table 1 on); ``speed`` arguments rescale them
for other devices, and ``aggregate_speed`` (the sum of per-GPU speed
factors) generalises ``p`` for heterogeneous platforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported lazily to avoid a package-import cycle
    from repro.sim.workload import WorkloadProfile

__all__ = ["t_gpu", "t_cpu", "t_io", "t_min", "system_efficiency", "PerformanceModel"]


def _n_pairs(n: int) -> int:
    return n * (n - 1) // 2


def t_gpu(profile: WorkloadProfile, reuse: float = 1.0, speed: float = 1.0) -> float:
    """Total GPU processing time (eq. 1): ``R n t_pre + C(n,2) t_cmp``."""
    _validate(reuse, speed)
    n = profile.n_items
    return (reuse * n * profile.t_preprocess[0] + _n_pairs(n) * profile.t_compare[0]) / speed


def t_cpu(profile: WorkloadProfile, reuse: float = 1.0, cores: int = 1) -> float:
    """Total CPU processing time (eq. 2): ``R n t_parse + C(n,2) t_post``.

    ``cores`` spreads the work over the CPU pool (the paper's model uses
    one CPU; per-thread bars in Fig. 8 report the undivided total, which
    is ``cores=1``).
    """
    _validate(reuse, 1.0)
    if cores < 1:
        raise ValueError(f"cores must be >= 1, got {cores}")
    n = profile.n_items
    return (reuse * n * profile.t_parse[0] + _n_pairs(n) * profile.t_postprocess[0]) / cores


def t_io(profile: WorkloadProfile, bandwidth: float, reuse: float = 1.0) -> float:
    """Total I/O time (eq. 3): ``R n * avg_file_size / bandwidth``."""
    _validate(reuse, 1.0)
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    return reuse * profile.n_items * profile.file_size / bandwidth


def t_min(profile: WorkloadProfile, speed: float = 1.0) -> float:
    """Lower bound on run time (eq. 4): perfect reuse, GPU-bound.

    ``T_min = n t_pre + C(n,2) t_cmp`` at the given GPU speed.
    """
    return t_gpu(profile, reuse=1.0, speed=speed)


def system_efficiency(
    profile: WorkloadProfile,
    measured_runtime: float,
    aggregate_speed: float = 1.0,
) -> float:
    """Eq. 5: ``(T_min / p) / T`` generalised to heterogeneous platforms.

    ``aggregate_speed`` is the sum of the platform's GPU speed factors
    relative to the reference device; for ``p`` identical reference-speed
    single-GPU nodes it equals ``p``, recovering the paper's formula.
    """
    if measured_runtime <= 0:
        raise ValueError(f"measured_runtime must be positive, got {measured_runtime}")
    if aggregate_speed <= 0:
        raise ValueError(f"aggregate_speed must be positive, got {aggregate_speed}")
    return t_min(profile, speed=aggregate_speed) / measured_runtime


def _validate(reuse: float, speed: float) -> None:
    if reuse < 1.0:
        raise ValueError(f"R cannot be below 1 (each item loads at least once), got {reuse}")
    if speed <= 0:
        raise ValueError(f"speed must be positive, got {speed}")


@dataclass(frozen=True)
class PerformanceModel:
    """Convenience bundle of the model for one (profile, platform) pair."""

    profile: WorkloadProfile
    aggregate_speed: float = 1.0
    cpu_cores: int = 16
    io_bandwidth: float = 2.0e9

    def __post_init__(self) -> None:
        if self.aggregate_speed <= 0:
            raise ValueError("aggregate_speed must be positive")

    def lower_bound(self) -> float:
        """``T_min`` for this platform."""
        return t_min(self.profile, speed=self.aggregate_speed)

    def predicted_runtime(self, reuse: float) -> float:
        """Max of the three resource totals for a given measured ``R``.

        The paper's "perfect overlap" assumption: the run takes as long
        as its most-loaded resource.
        """
        return max(
            t_gpu(self.profile, reuse, self.aggregate_speed),
            t_cpu(self.profile, reuse, self.cpu_cores),
            t_io(self.profile, self.io_bandwidth, reuse),
        )

    def efficiency(self, measured_runtime: float) -> float:
        """System efficiency of a measured run on this platform."""
        return system_efficiency(self.profile, measured_runtime, self.aggregate_speed)

    def bottleneck(self, reuse: float) -> str:
        """Which resource the model predicts to dominate ("gpu"/"cpu"/"io")."""
        totals = {
            "gpu": t_gpu(self.profile, reuse, self.aggregate_speed),
            "cpu": t_cpu(self.profile, reuse, self.cpu_cores),
            "io": t_io(self.profile, self.io_bandwidth, reuse),
        }
        return max(totals, key=totals.get)
