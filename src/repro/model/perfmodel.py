r"""The paper's analytical performance model (Section 6.1).

Given ``n`` items, the comparison pipeline runs ``C(n,2)`` times and the
load pipeline ``R*n`` times, where ``R >= 1`` is the *relative number of
loads* — the paper's central data-reuse metric.  With perfect overlap
the run time is the maximum of the per-resource totals:

.. math::

   T_{GPU} &= R n\, t_{pre} + \binom{n}{2} t_{cmp} \\
   T_{CPU} &= R n\, t_{parse} + \binom{n}{2} t_{post} \\
   T_{IO}  &\approx R n\, \overline{size} / BW

The lower bound ``T_min`` assumes infinite memory (R = 1), infinite I/O
bandwidth, and GPU-bound processing; *system efficiency* on ``p`` nodes
is ``(T_min / p) / T_measured``.

All stage times are expressed at a reference GPU speed (the TitanX
Maxwell the paper measured Table 1 on); ``speed`` arguments rescale them
for other devices, and ``aggregate_speed`` (the sum of per-GPU speed
factors) generalises ``p`` for heterogeneous platforms.

Online calibration
------------------

The model does not have to be fed Table 1 constants: the runtimes
measure their own stage costs as they execute and fold them into a
live model through :class:`StageCalibration`.  The entry points are

- ``record_preprocess(seconds, speed)`` / ``record_compare(seconds,
  speed)`` — one GPU kernel execution; the measured wall time is
  normalised to the reference device by multiplying with the executing
  device's speed factor;
- ``record_parse(seconds)`` / ``record_postprocess(seconds)`` — one
  CPU stage execution;
- ``record_io(nbytes, seconds)`` — one storage read (yields the
  measured file size and I/O bandwidth);
- ``profile(...)`` / ``model(...)`` — build a
  :class:`~repro.sim.workload.WorkloadProfile` or a ready
  :class:`PerformanceModel` from the accumulated means, against which
  ``predicted_runtime(R)`` and ``efficiency(measured)`` report the
  paper's predicted-vs-measured evaluation for the live run.

:meth:`StageCalibration.merge` combines the calibrations of several
nodes (the cluster coordinator aggregates per-node instances shipped
inside ``NodeStats``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # imported lazily to avoid a package-import cycle
    from repro.sim.workload import WorkloadProfile

__all__ = [
    "t_gpu",
    "t_cpu",
    "t_io",
    "t_min",
    "system_efficiency",
    "PerformanceModel",
    "StageCalibration",
]


def _n_pairs(n: int) -> int:
    return n * (n - 1) // 2


def t_gpu(profile: WorkloadProfile, reuse: float = 1.0, speed: float = 1.0) -> float:
    """Total GPU processing time (eq. 1): ``R n t_pre + C(n,2) t_cmp``."""
    _validate(reuse, speed)
    n = profile.n_items
    return (reuse * n * profile.t_preprocess[0] + _n_pairs(n) * profile.t_compare[0]) / speed


def t_cpu(profile: WorkloadProfile, reuse: float = 1.0, cores: int = 1) -> float:
    """Total CPU processing time (eq. 2): ``R n t_parse + C(n,2) t_post``.

    ``cores`` spreads the work over the CPU pool (the paper's model uses
    one CPU; per-thread bars in Fig. 8 report the undivided total, which
    is ``cores=1``).
    """
    _validate(reuse, 1.0)
    if cores < 1:
        raise ValueError(f"cores must be >= 1, got {cores}")
    n = profile.n_items
    return (reuse * n * profile.t_parse[0] + _n_pairs(n) * profile.t_postprocess[0]) / cores


def t_io(profile: WorkloadProfile, bandwidth: float, reuse: float = 1.0) -> float:
    """Total I/O time (eq. 3): ``R n * avg_file_size / bandwidth``."""
    _validate(reuse, 1.0)
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    return reuse * profile.n_items * profile.file_size / bandwidth


def t_min(profile: WorkloadProfile, speed: float = 1.0) -> float:
    """Lower bound on run time (eq. 4): perfect reuse, GPU-bound.

    ``T_min = n t_pre + C(n,2) t_cmp`` at the given GPU speed.
    """
    return t_gpu(profile, reuse=1.0, speed=speed)


def system_efficiency(
    profile: WorkloadProfile,
    measured_runtime: float,
    aggregate_speed: float = 1.0,
) -> float:
    """Eq. 5: ``(T_min / p) / T`` generalised to heterogeneous platforms.

    ``aggregate_speed`` is the sum of the platform's GPU speed factors
    relative to the reference device; for ``p`` identical reference-speed
    single-GPU nodes it equals ``p``, recovering the paper's formula.
    """
    if measured_runtime <= 0:
        raise ValueError(f"measured_runtime must be positive, got {measured_runtime}")
    if aggregate_speed <= 0:
        raise ValueError(f"aggregate_speed must be positive, got {aggregate_speed}")
    return t_min(profile, speed=aggregate_speed) / measured_runtime


def _validate(reuse: float, speed: float) -> None:
    if reuse < 1.0:
        raise ValueError(f"R cannot be below 1 (each item loads at least once), got {reuse}")
    if speed <= 0:
        raise ValueError(f"speed must be positive, got {speed}")


@dataclass(frozen=True)
class PerformanceModel:
    """Convenience bundle of the model for one (profile, platform) pair."""

    profile: WorkloadProfile
    aggregate_speed: float = 1.0
    cpu_cores: int = 16
    io_bandwidth: float = 2.0e9

    def __post_init__(self) -> None:
        if self.aggregate_speed <= 0:
            raise ValueError("aggregate_speed must be positive")

    def lower_bound(self) -> float:
        """``T_min`` for this platform."""
        return t_min(self.profile, speed=self.aggregate_speed)

    def predicted_runtime(self, reuse: float) -> float:
        """Max of the three resource totals for a given measured ``R``.

        The paper's "perfect overlap" assumption: the run takes as long
        as its most-loaded resource.
        """
        return max(
            t_gpu(self.profile, reuse, self.aggregate_speed),
            t_cpu(self.profile, reuse, self.cpu_cores),
            t_io(self.profile, self.io_bandwidth, reuse),
        )

    def efficiency(self, measured_runtime: float) -> float:
        """System efficiency of a measured run on this platform."""
        return system_efficiency(self.profile, measured_runtime, self.aggregate_speed)

    def bottleneck(self, reuse: float) -> str:
        """Which resource the model predicts to dominate ("gpu"/"cpu"/"io")."""
        totals = {
            "gpu": t_gpu(self.profile, reuse, self.aggregate_speed),
            "cpu": t_cpu(self.profile, reuse, self.cpu_cores),
            "io": t_io(self.profile, self.io_bandwidth, reuse),
        }
        return max(totals, key=totals.get)


@dataclass
class StageCalibration:
    """Measured per-stage costs accumulated while a run executes.

    Kernel times are recorded *normalised to the reference device*
    (wall time multiplied by the executing device's speed factor), so a
    mix of fast and slow GPUs contributes one consistent estimate of
    ``t_pre`` / ``t_cmp``.  Instances are picklable and mergeable —
    cluster nodes ship theirs to the coordinator inside ``NodeStats``.
    See the module docstring for the entry points.
    """

    pre_seconds: float = 0.0
    pre_count: int = 0
    cmp_seconds: float = 0.0
    cmp_count: int = 0
    parse_seconds: float = 0.0
    parse_count: int = 0
    post_seconds: float = 0.0
    post_count: int = 0
    io_seconds: float = 0.0
    io_bytes: int = 0
    io_count: int = 0

    # -- recording (called from the running pipeline) ------------------

    def record_preprocess(self, seconds: float, speed: float = 1.0) -> None:
        """One pre-process kernel: wall ``seconds`` on a ``speed`` device."""
        self.pre_seconds += seconds * speed
        self.pre_count += 1

    def record_compare(self, seconds: float, speed: float = 1.0) -> None:
        """One comparison kernel: wall ``seconds`` on a ``speed`` device."""
        self.cmp_seconds += seconds * speed
        self.cmp_count += 1

    def record_parse(self, seconds: float) -> None:
        """One CPU parse stage."""
        self.parse_seconds += seconds
        self.parse_count += 1

    def record_postprocess(self, seconds: float) -> None:
        """One CPU post-process stage."""
        self.post_seconds += seconds
        self.post_count += 1

    def record_io(self, nbytes: int, seconds: float) -> None:
        """One storage read of ``nbytes`` taking ``seconds``."""
        self.io_bytes += int(nbytes)
        self.io_seconds += seconds
        self.io_count += 1

    def merge(self, other: "StageCalibration") -> None:
        """Fold another node's calibration into this one."""
        self.pre_seconds += other.pre_seconds
        self.pre_count += other.pre_count
        self.cmp_seconds += other.cmp_seconds
        self.cmp_count += other.cmp_count
        self.parse_seconds += other.parse_seconds
        self.parse_count += other.parse_count
        self.post_seconds += other.post_seconds
        self.post_count += other.post_count
        self.io_seconds += other.io_seconds
        self.io_bytes += other.io_bytes
        self.io_count += other.io_count

    # -- calibrated estimates ------------------------------------------

    @property
    def t_pre(self) -> float:
        """Mean pre-process kernel time at reference speed (0 if unmeasured)."""
        return self.pre_seconds / self.pre_count if self.pre_count else 0.0

    @property
    def t_cmp(self) -> float:
        """Mean comparison kernel time at reference speed (0 if unmeasured)."""
        return self.cmp_seconds / self.cmp_count if self.cmp_count else 0.0

    def auto_grain(
        self,
        *,
        target_seconds: float = 0.002,
        lo: int = 4,
        hi: int = 1024,
        speed: float = 1.0,
    ) -> Optional[int]:
        """Recommended pairs per batched kernel from the measured ``t_cmp``.

        Picks the batch size whose single kernel launch takes about
        ``target_seconds`` of wall time on a ``speed``-factor device —
        large enough to amortise Python dispatch, small enough that
        cancellation and fair-share scheduling keep per-block latency.
        Returns ``None`` while nothing has been measured (callers keep
        their configured floor until calibration warms up).
        """
        if self.cmp_count == 0:
            return None
        per_pair = self.t_cmp / max(speed, 1e-9)
        if per_pair <= 0:
            return hi
        return int(min(max(round(target_seconds / per_pair), lo), hi))

    @property
    def t_parse(self) -> float:
        """Mean CPU parse time (0 if unmeasured)."""
        return self.parse_seconds / self.parse_count if self.parse_count else 0.0

    @property
    def t_post(self) -> float:
        """Mean CPU post-process time (0 if unmeasured)."""
        return self.post_seconds / self.post_count if self.post_count else 0.0

    @property
    def file_size(self) -> float:
        """Mean bytes per storage read (0 if unmeasured)."""
        return self.io_bytes / self.io_count if self.io_count else 0.0

    @property
    def io_bandwidth(self) -> Optional[float]:
        """Measured storage bandwidth, or None when nothing was read."""
        if self.io_seconds <= 0 or self.io_bytes <= 0:
            return None
        return self.io_bytes / self.io_seconds

    def profile(self, name: str, n_items: int) -> "WorkloadProfile":
        """Build a :class:`~repro.sim.workload.WorkloadProfile` from the means."""
        from repro.sim.workload import WorkloadProfile  # avoid an import cycle

        return WorkloadProfile(
            name=name,
            n_items=n_items,
            file_size=max(self.file_size, 1.0),
            slot_size=max(self.file_size, 1.0),
            result_size=0.0,
            t_parse=(self.t_parse, 0.0),
            t_preprocess=(self.t_pre, 0.0),
            t_compare=(self.t_cmp, 0.0),
            t_postprocess=(self.t_post, 0.0),
        )

    def model(
        self,
        n_items: int,
        aggregate_speed: float = 1.0,
        cpu_cores: int = 1,
        name: str = "calibrated",
    ) -> PerformanceModel:
        """A live :class:`PerformanceModel` for the measured workload."""
        bw = self.io_bandwidth
        return PerformanceModel(
            profile=self.profile(name, n_items),
            aggregate_speed=aggregate_speed,
            cpu_cores=cpu_cores,
            io_bandwidth=bw if bw is not None else 2.0e9,
        )
