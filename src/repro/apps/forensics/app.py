"""Rocket application wrapper for common-source identification.

Pipeline mapping (paper Section 5.1):

- *parse* (CPU): decode the image container — the production system
  decodes JPEG with libjpeg; we decode the ``RIMG`` codec;
- *preprocess* (GPU): extract the PRNU noise residual;
- *compare* (GPU): normalized cross-correlation of two residuals;
- *postprocess* (CPU): scalar extraction (thresholding is left to the
  caller, as the production tool reports raw scores too).

Computations are highly regular: all images share dimensions, so every
comparison costs the same — the tight Fig. 7 histogram.
"""

from __future__ import annotations

import numpy as np

from repro.apps.forensics.prnu import extract_prnu, ncc_pairs
from repro.core.api import Application
from repro.data.formats import decode_image

__all__ = ["ForensicsApplication"]


class ForensicsApplication(Application[str, float]):
    """Pair-wise PRNU correlation over an image corpus."""

    def __init__(self, denoise_window: int = 5) -> None:
        if denoise_window < 1 or denoise_window % 2 == 0:
            raise ValueError(f"denoise_window must be odd, got {denoise_window}")
        self.denoise_window = denoise_window

    def file_name(self, key: str) -> str:
        """Image files are stored as ``<key>.rimg``."""
        return f"{key}.rimg"

    def parse(self, key: str, file_contents: bytes) -> np.ndarray:
        """Decode the RIMG container to a float image in [0, 1]."""
        pixels = decode_image(file_contents)
        return pixels.astype(np.float64) / 255.0

    def preprocess(self, key: str, parsed: np.ndarray) -> np.ndarray:
        """Extract the PRNU residual (the cached, comparable item)."""
        return extract_prnu(parsed, window=self.denoise_window)

    def compare(self, key_a: str, item_a: np.ndarray, key_b: str, item_b: np.ndarray) -> np.ndarray:
        """Normalized cross-correlation between two residuals.

        Evaluated through the same kernel as :meth:`compare_block` with
        a one-pair block, so a pair's bits do not depend on whether the
        runtime dispatched it batched or per-pair — cross-backend
        result matrices stay bit-identical.
        """
        if item_a.shape != item_b.shape:
            raise ValueError(f"shape mismatch: {item_a.shape} vs {item_b.shape}")
        return np.asarray(ncc_pairs([item_a], [item_b])[0])

    def compare_block(self, keys_a, items_a, keys_b, items_b) -> np.ndarray:
        """Batched NCC over a block of pairs — one Gram launch per block.

        A block is a rectangle of the comparison matrix, so its pairs
        repeat items; :func:`~repro.apps.forensics.prnu.ncc_pairs`
        deduplicates the cached residual arrays by identity and gets
        every needed dot product from a single Gram-matrix contraction
        over the unique items.
        """
        return ncc_pairs(items_a, items_b)

    def postprocess(self, key_a: str, key_b: str, raw_result: np.ndarray) -> float:
        """Return the correlation score as a plain float."""
        return float(raw_result)
