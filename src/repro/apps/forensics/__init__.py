"""Common-source identification (digital forensics, paper Section 5.1)."""

from repro.apps.forensics.prnu import extract_prnu, ncc, denoise
from repro.apps.forensics.app import ForensicsApplication

__all__ = ["extract_prnu", "ncc", "denoise", "ForensicsApplication"]
