"""PRNU sensor-noise kernels (the application's "GPU" kernels).

Photo Response Non-Uniformity is a fixed multiplicative noise pattern
of an imaging sensor: pixel ``p`` records ``s * (1 + K_p)`` for scene
intensity ``s``.  Two images from the same camera share ``K``, so the
*noise residuals* of same-camera images correlate while those of
different cameras do not (Fridrich 2013; van Werkhoven et al. 2018).

The pipeline mirrors the paper's application:

- :func:`denoise` — a separable local-mean filter (the stand-in for the
  production wavelet denoiser);
- :func:`extract_prnu` — residual = image - denoise(image), zero-meaned
  per row and column to suppress demosaicing artefacts, then unit-
  normalised;
- :func:`ncc` — normalized cross-correlation between two residuals, the
  similarity metric named in the paper.

All functions are pure NumPy and operate on float64 arrays in [0, 1].
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import uniform_filter

__all__ = ["denoise", "extract_prnu", "ncc", "ncc_block", "ncc_pairs"]


def denoise(image: np.ndarray, window: int = 5) -> np.ndarray:
    """Estimate scene content with a local-mean filter.

    The residual ``image - denoise(image)`` keeps the high-frequency
    content where the PRNU signal lives.
    """
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    if window < 1 or window % 2 == 0:
        raise ValueError(f"window must be odd and positive, got {window}")
    return uniform_filter(image.astype(np.float64, copy=False), size=window, mode="reflect")


def extract_prnu(image: np.ndarray, window: int = 5) -> np.ndarray:
    """Extract the normalised PRNU noise residual of ``image``.

    Steps: denoise-residual, zero-mean rows and columns (linear-pattern
    removal, standard in PRNU pipelines), global unit normalisation.
    Returns an array of the same shape with zero mean and unit L2 norm.
    """
    img = np.asarray(image, dtype=np.float64)
    residual = img - denoise(img, window=window)
    # Remove row/column means: suppresses sensor linear patterns and any
    # remaining scene gradients.
    residual = residual - residual.mean(axis=1, keepdims=True)
    residual = residual - residual.mean(axis=0, keepdims=True)
    norm = np.linalg.norm(residual)
    if norm == 0:
        # Perfectly flat residual (e.g. constant image): return zeros —
        # it will correlate with nothing, which is the correct semantics.
        return residual
    return residual / norm


def ncc(a: np.ndarray, b: np.ndarray) -> float:
    """Normalized cross-correlation of two PRNU residuals.

    Inputs of identical shape; returns a value in [-1, 1].  For
    residuals from :func:`extract_prnu` (zero-mean, unit-norm) this is a
    plain dot product, but the general formula is kept so the kernel is
    reusable on raw residuals.
    """
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    fa = a - a.mean()
    fb = b - b.mean()
    denom = np.linalg.norm(fa) * np.linalg.norm(fb)
    if denom == 0:
        return 0.0
    return float(np.vdot(fa, fb) / denom)


def ncc_block(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Batched :func:`ncc` over stacked residuals — one launch per block.

    ``a`` and ``b`` are ``(n, H, W)`` stacks; pair ``k`` correlates
    ``a[k]`` with ``b[k]``.  Rather than materialising mean-subtracted
    copies of both stacks (which turns the batch memory-bandwidth-bound
    and *loses* to the L1-resident per-pair kernel), the centred moments
    are expanded algebraically:

    ``dot(a - ā, b - b̄) = dot(a, b) - k·ā·b̄`` and
    ``‖a - ā‖² = dot(a, a) - k·ā²``

    so the whole block reduces to three ``einsum`` contractions and two
    row means, touching each input element once.  PRNU residuals are
    near-zero-mean, so the subtraction cancels nothing of magnitude and
    results match the per-pair kernel up to floating-point summation
    order (documented tolerance ~1e-12 relative).
    """
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.ndim < 2:
        raise ValueError(f"expected stacked residuals, got shape {a.shape}")
    n = a.shape[0]
    fa = a.reshape(n, -1)
    fb = b.reshape(n, -1)
    k = fa.shape[1]
    ma = fa.mean(axis=1)
    mb = fb.mean(axis=1)
    dot = np.einsum("nk,nk->n", fa, fb) - k * ma * mb
    na2 = np.maximum(np.einsum("nk,nk->n", fa, fa) - k * ma * ma, 0.0)
    nb2 = np.maximum(np.einsum("nk,nk->n", fb, fb) - k * mb * mb, 0.0)
    denom = np.sqrt(na2 * nb2)
    out = np.zeros(n, dtype=np.float64)
    nonzero = denom != 0
    out[nonzero] = dot[nonzero] / denom[nonzero]
    return out


def ncc_pairs(items_a, items_b) -> np.ndarray:
    """:func:`ncc` for a block of pairs given as residual *sequences*.

    The all-pairs workload repeats items across a block's pairs (a block
    is a rectangle of the comparison matrix), and the runtime hands each
    repeated item as the *same* cached array object.  Deduplicating by
    identity computes each item's mean and norm once — ``m`` unique
    items (typically ~2·√pairs) instead of ``2n`` full passes — with the
    centred-moments expansion of :func:`ncc_block` and the same
    documented tolerance versus the per-pair kernel; the remaining
    per-pair work is a single BLAS dot product over cache-resident rows.

    Every reduction sees only one row (or one fixed pair of rows), so a
    pair's value is bit-identical no matter how pairs are grouped into
    blocks — the runtime's cross-backend determinism guarantee does not
    depend on scheduling, grain or steal decisions.  (A single
    Gram-matrix GEMM would batch the dots too, but its reduction order
    varies with the block composition.)
    """
    if len(items_a) != len(items_b):
        raise ValueError(f"length mismatch: {len(items_a)} vs {len(items_b)}")
    index: dict = {}
    unique = []

    def _idx(item):
        i = index.get(id(item))
        if i is None:
            i = index[id(item)] = len(unique)
            unique.append(item)
        return i

    ia = np.array([_idx(x) for x in items_a], dtype=np.intp)
    ib = np.array([_idx(x) for x in items_b], dtype=np.intp)
    u = np.stack([np.asarray(x, dtype=np.float64).reshape(-1) for x in unique])
    k = u.shape[1]
    mean = u.mean(axis=1)
    norm2 = np.maximum(np.einsum("mk,mk->m", u, u) - k * mean * mean, 0.0)
    rows = list(u)
    raw = np.array([np.dot(rows[i], rows[j]) for i, j in zip(ia, ib)])
    dot = raw - k * mean[ia] * mean[ib]
    denom = np.sqrt(norm2[ia] * norm2[ib])
    out = np.zeros(len(ia), dtype=np.float64)
    nonzero = denom != 0
    out[nonzero] = dot[nonzero] / denom[nonzero]
    return out
