"""PRNU sensor-noise kernels (the application's "GPU" kernels).

Photo Response Non-Uniformity is a fixed multiplicative noise pattern
of an imaging sensor: pixel ``p`` records ``s * (1 + K_p)`` for scene
intensity ``s``.  Two images from the same camera share ``K``, so the
*noise residuals* of same-camera images correlate while those of
different cameras do not (Fridrich 2013; van Werkhoven et al. 2018).

The pipeline mirrors the paper's application:

- :func:`denoise` — a separable local-mean filter (the stand-in for the
  production wavelet denoiser);
- :func:`extract_prnu` — residual = image - denoise(image), zero-meaned
  per row and column to suppress demosaicing artefacts, then unit-
  normalised;
- :func:`ncc` — normalized cross-correlation between two residuals, the
  similarity metric named in the paper.

All functions are pure NumPy and operate on float64 arrays in [0, 1].
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import uniform_filter

__all__ = ["denoise", "extract_prnu", "ncc"]


def denoise(image: np.ndarray, window: int = 5) -> np.ndarray:
    """Estimate scene content with a local-mean filter.

    The residual ``image - denoise(image)`` keeps the high-frequency
    content where the PRNU signal lives.
    """
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    if window < 1 or window % 2 == 0:
        raise ValueError(f"window must be odd and positive, got {window}")
    return uniform_filter(image.astype(np.float64, copy=False), size=window, mode="reflect")


def extract_prnu(image: np.ndarray, window: int = 5) -> np.ndarray:
    """Extract the normalised PRNU noise residual of ``image``.

    Steps: denoise-residual, zero-mean rows and columns (linear-pattern
    removal, standard in PRNU pipelines), global unit normalisation.
    Returns an array of the same shape with zero mean and unit L2 norm.
    """
    img = np.asarray(image, dtype=np.float64)
    residual = img - denoise(img, window=window)
    # Remove row/column means: suppresses sensor linear patterns and any
    # remaining scene gradients.
    residual = residual - residual.mean(axis=1, keepdims=True)
    residual = residual - residual.mean(axis=0, keepdims=True)
    norm = np.linalg.norm(residual)
    if norm == 0:
        # Perfectly flat residual (e.g. constant image): return zeros —
        # it will correlate with nothing, which is the correct semantics.
        return residual
    return residual / norm


def ncc(a: np.ndarray, b: np.ndarray) -> float:
    """Normalized cross-correlation of two PRNU residuals.

    Inputs of identical shape; returns a value in [-1, 1].  For
    residuals from :func:`extract_prnu` (zero-mean, unit-norm) this is a
    plain dot product, but the general formula is kept so the kernel is
    reusable on raw residuals.
    """
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    fa = a - a.mean()
    fb = b - b.mean()
    denom = np.linalg.norm(fa) * np.linalg.norm(fb)
    if denom == 0:
        return 0.0
    return float(np.vdot(fa, fb) / denom)
