"""Phylogenetic tree construction from a distance matrix.

The paper's use case ends with "hierarchical clustering of the distance
matrix between all species".  We implement the standard
*neighbour-joining* algorithm (Saitou & Nei 1987) — the classic
distance-based tree builder — plus Robinson-Foulds-style tree
comparison so reconstructed trees can be scored against the known
generating tree of the synthetic data set.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set

import networkx as nx
import numpy as np

__all__ = ["neighbor_joining", "clade_sets", "robinson_foulds"]


def neighbor_joining(distances: np.ndarray, names: Sequence[str]) -> nx.Graph:
    """Build an unrooted binary tree from a symmetric distance matrix.

    Returns a NetworkX graph whose leaves are ``names`` and whose
    internal nodes are integers; edges carry a ``length`` attribute
    (clamped at zero, the usual NJ convention for negative branch
    estimates).
    """
    dist = np.asarray(distances, dtype=np.float64)
    n = len(names)
    if dist.shape != (n, n):
        raise ValueError(f"distance matrix {dist.shape} does not match {n} names")
    if n < 2:
        raise ValueError("need at least two taxa")
    if not np.allclose(dist, dist.T, atol=1e-9):
        raise ValueError("distance matrix must be symmetric")
    if np.any(np.diag(dist) != 0):
        raise ValueError("distance matrix must have a zero diagonal")
    if len(set(names)) != n:
        raise ValueError("duplicate taxon names")

    tree = nx.Graph()
    tree.add_nodes_from(names)
    if n == 2:
        tree.add_edge(names[0], names[1], length=float(max(dist[0, 1], 0.0)))
        return tree

    active: List = list(names)
    d: Dict = {(a, b): float(dist[i, j]) for i, a in enumerate(names) for j, b in enumerate(names)}
    next_internal = 0

    while len(active) > 2:
        m = len(active)
        totals = {a: sum(d[(a, b)] for b in active if b is not a) for a in active}
        # Q-matrix minimisation.
        best = None
        best_q = np.inf
        for i in range(m):
            for j in range(i + 1, m):
                a, b = active[i], active[j]
                q = (m - 2) * d[(a, b)] - totals[a] - totals[b]
                if q < best_q - 1e-15:
                    best_q = q
                    best = (a, b)
        assert best is not None
        a, b = best
        new = next_internal
        next_internal += 1
        dab = d[(a, b)]
        # Branch lengths to the new internal node.
        la = 0.5 * dab + (totals[a] - totals[b]) / (2 * (m - 2))
        lb = dab - la
        tree.add_node(new)
        tree.add_edge(new, a, length=float(max(la, 0.0)))
        tree.add_edge(new, b, length=float(max(lb, 0.0)))
        # Distances from the new node to the remaining taxa.
        for c in active:
            if c is a or c is b:
                continue
            d[(new, c)] = d[(c, new)] = 0.5 * (d[(a, c)] + d[(b, c)] - dab)
        d[(new, new)] = 0.0
        active = [c for c in active if c is not a and c is not b] + [new]

    a, b = active
    tree.add_edge(a, b, length=float(max(d[(a, b)], 0.0)))
    return tree


def clade_sets(tree: nx.Graph) -> Set[FrozenSet[str]]:
    """Non-trivial leaf bipartitions induced by the tree's edges.

    Leaves are the string-named nodes.  Each edge splits the leaf set in
    two; the smaller side identifies the bipartition.  Trivial splits
    (single leaf / all-but-one) are omitted, as in Robinson-Foulds.
    """
    leaves = {v for v in tree.nodes if isinstance(v, str)}
    if len(leaves) < 4:
        return set()
    out: Set[FrozenSet[str]] = set()
    for u, v in tree.edges:
        work = tree.copy()
        work.remove_edge(u, v)
        side = {x for x in nx.node_connected_component(work, u) if isinstance(x, str)}
        if 1 < len(side) < len(leaves) - 1:
            smaller = side if len(side) * 2 <= len(leaves) else leaves - side
            out.add(frozenset(smaller))
    return out


def robinson_foulds(tree_a: nx.Graph, tree_b: nx.Graph) -> int:
    """Robinson-Foulds distance: symmetric difference of clade sets.

    Zero means the two trees have identical (unrooted) topology over
    their shared leaves.
    """
    leaves_a = {v for v in tree_a.nodes if isinstance(v, str)}
    leaves_b = {v for v in tree_b.nodes if isinstance(v, str)}
    if leaves_a != leaves_b:
        raise ValueError("trees are over different leaf sets")
    return len(clade_sets(tree_a) ^ clade_sets(tree_b))
