"""Alignment-free phylogeny (bioinformatics, paper Section 5.2)."""

from repro.apps.bioinformatics.composition import (
    encode_sequence,
    kmer_counts,
    composition_vector,
    cv_correlation,
    cv_distance,
)
from repro.apps.bioinformatics.app import BioinformaticsApplication
from repro.apps.bioinformatics.phylogeny import neighbor_joining, clade_sets, robinson_foulds

__all__ = [
    "encode_sequence",
    "kmer_counts",
    "composition_vector",
    "cv_correlation",
    "cv_distance",
    "BioinformaticsApplication",
    "neighbor_joining",
    "clade_sets",
    "robinson_foulds",
]
