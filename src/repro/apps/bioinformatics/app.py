"""Rocket application wrapper for composition-vector phylogeny.

Pipeline mapping (paper Section 5.2):

- *parse* (CPU): decompress the FASTA file and integer-encode the
  proteome (the paper decompresses on the CPU);
- *preprocess* (GPU): build the sparse composition vector — expensive,
  "it requires scanning the entire genome";
- *compare* (GPU): sparse dot product between two CVs — cheap but
  irregular, since the vectors are sparse;
- *postprocess* (CPU): plain scalar extraction.

The resulting distance matrix feeds
:func:`repro.apps.bioinformatics.phylogeny.neighbor_joining` to build
the tree, completing the paper's end-to-end use case ("reconstruct the
evolutionary tree of all reference bacteria proteomes").
"""

from __future__ import annotations

import numpy as np

from repro.apps.bioinformatics.composition import (
    composition_vector,
    cv_distance_block,
    cv_view,
    encode_proteome,
    pack_cv,
)
from repro.core.api import Application
from repro.data.formats import decode_fasta

__all__ = ["BioinformaticsApplication"]


class BioinformaticsApplication(Application[str, float]):
    """Pair-wise composition-vector distances over a proteome corpus."""

    def __init__(self, k: int = 4) -> None:
        if k < 3:
            raise ValueError(f"composition vectors need k >= 3, got {k}")
        self.k = k

    def file_name(self, key: str) -> str:
        """Proteomes are stored as compressed FASTA ``<key>.faz``."""
        return f"{key}.faz"

    def parse(self, key: str, file_contents: bytes) -> np.ndarray:
        """Decompress FASTA and integer-encode all proteins."""
        records = decode_fasta(file_contents, compressed=True)
        return encode_proteome(list(records.values()))

    def preprocess(self, key: str, parsed: np.ndarray) -> np.ndarray:
        """Build the sparse composition vector (packed as one array)."""
        indices, values = composition_vector(parsed.astype(np.int16), k=self.k)
        return pack_cv(indices, values)

    def item_view(self, key: str, item: np.ndarray):
        """Pre-unpack the packed CV into ``(idx, val, norm)`` once per item.

        The runtime caches this per resident slot, so the index
        ``astype`` and norm of :func:`~repro.apps.bioinformatics.composition.cv_view`
        are paid per item, not per pair.
        """
        return cv_view(item)

    @staticmethod
    def _as_view(item):
        """Accept both a pre-unpacked view and a raw packed CV array."""
        return item if isinstance(item, tuple) else cv_view(item)

    def compare(self, key_a: str, item_a, key_b: str, item_b) -> np.ndarray:
        """Distance ``(1 - C) / 2`` between two composition vectors.

        Evaluated through the same kernel as :meth:`compare_block` with
        a one-pair block, so a pair's bits do not depend on whether the
        runtime dispatched it batched or per-pair — cross-backend
        result matrices stay bit-identical.
        """
        view_a = self._as_view(item_a)
        view_b = self._as_view(item_b)
        return np.asarray(cv_distance_block([view_a], [view_b])[0])

    def compare_block(self, keys_a, items_a, keys_b, items_b) -> np.ndarray:
        """Batched sparse-intersection distances — one launch per block."""
        views_a = [self._as_view(item) for item in items_a]
        views_b = [self._as_view(item) for item in items_b]
        return cv_distance_block(views_a, views_b)

    def postprocess(self, key_a: str, key_b: str, raw_result: np.ndarray) -> float:
        """Return the distance as a plain float."""
        return float(raw_result)
