"""Composition-vector kernels (Qi, Wang & Hao 2004).

The alignment-free distance between two species is computed from their
*composition vectors* (CVs): for every length-``k`` amino-acid string
``a1..ak``, the CV entry is the relative deviation of its observed
frequency from the frequency predicted by a (k-2)-order Markov model::

    p0(a1..ak) = p(a1..a_{k-1}) * p(a2..ak) / p(a2..a_{k-1})
    cv(a1..ak) = (p(a1..ak) - p0(a1..ak)) / p0(a1..ak)

The subtraction of the Markov prediction removes the neutral-mutation
background, which is what makes the remaining signal phylogenetic.
CVs are sparse (the paper: 10^5-1.8*10^6 non-zeros out of 20^k); we
store them as (sorted indices, values) pairs and compare with a sparse
dot product — the paper's "cheap but irregular" comparison kernel.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.data.synthetic import AMINO_ACIDS

__all__ = [
    "encode_sequence",
    "kmer_counts",
    "composition_vector",
    "cv_correlation",
    "cv_distance",
    "cv_view",
    "cv_distance_block",
    "pack_cv",
    "unpack_cv",
]

ALPHABET = len(AMINO_ACIDS)  # 20
_CODE_OF = {aa: idx for idx, aa in enumerate(AMINO_ACIDS)}
#: Separator marker between proteins in an encoded proteome.
SEPARATOR = -1


def encode_sequence(sequence: str) -> np.ndarray:
    """Encode an amino-acid string as an int16 code array."""
    try:
        return np.fromiter((_CODE_OF[c] for c in sequence), dtype=np.int16, count=len(sequence))
    except KeyError as exc:
        raise ValueError(f"unknown amino acid {exc.args[0]!r}") from None


def encode_proteome(sequences: List[str]) -> np.ndarray:
    """Encode several proteins into one array with ``SEPARATOR`` breaks.

    The separator prevents k-mers from spanning protein boundaries.
    """
    if not sequences:
        raise ValueError("empty proteome")
    parts: List[np.ndarray] = []
    sep = np.array([SEPARATOR], dtype=np.int16)
    for idx, seq in enumerate(sequences):
        if idx:
            parts.append(sep)
        parts.append(encode_sequence(seq))
    return np.concatenate(parts)


def _windows(codes: np.ndarray, k: int) -> np.ndarray:
    """Codes of all valid k-mers in a separator-delimited code array."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if codes.ndim != 1:
        raise ValueError("expected a 1-D code array")
    n = codes.size
    if n < k:
        return np.zeros(0, dtype=np.int64)
    view = np.lib.stride_tricks.sliding_window_view(codes, k)
    valid = (view >= 0).all(axis=1)
    view = view[valid].astype(np.int64)
    weights = ALPHABET ** np.arange(k - 1, -1, -1, dtype=np.int64)
    return view @ weights


def kmer_counts(codes: np.ndarray, k: int) -> np.ndarray:
    """Dense k-mer count vector of length ``20**k``."""
    return np.bincount(_windows(codes, k), minlength=ALPHABET**k)


def composition_vector(codes: np.ndarray, k: int = 4) -> Tuple[np.ndarray, np.ndarray]:
    """The sparse composition vector of an encoded proteome.

    Returns ``(indices, values)`` with ``indices`` sorted ascending:
    the non-zero CV entries over the ``20**k`` k-mer space.
    """
    if k < 3:
        raise ValueError(f"the Markov correction needs k >= 3, got {k}")
    counts_k = kmer_counts(codes, k)
    counts_km1 = kmer_counts(codes, k - 1)
    counts_km2 = kmer_counts(codes, k - 2)
    total_k = counts_k.sum()
    total_km1 = counts_km1.sum()
    total_km2 = counts_km2.sum()
    if total_k == 0:
        raise ValueError(f"proteome shorter than k={k}")

    idx = np.flatnonzero(counts_k)
    p = counts_k[idx] / total_k
    prefix = idx // ALPHABET  # a1..a_{k-1}
    suffix = idx % (ALPHABET ** (k - 1))  # a2..ak
    middle = prefix % (ALPHABET ** (k - 2))  # a2..a_{k-1}
    p_prefix = counts_km1[prefix] / total_km1
    p_suffix = counts_km1[suffix] / total_km1
    p_middle = counts_km2[middle] / total_km2
    with np.errstate(divide="ignore", invalid="ignore"):
        p0 = p_prefix * p_suffix / p_middle
        values = np.where(p0 > 0, (p - p0) / np.where(p0 > 0, p0, 1.0), 0.0)
    keep = values != 0
    return idx[keep], values[keep]


def pack_cv(indices: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Pack a sparse CV into one 2-row float64 array (cacheable payload)."""
    if indices.shape != values.shape:
        raise ValueError("indices and values differ in length")
    return np.vstack([indices.astype(np.float64), values.astype(np.float64)])


def unpack_cv(packed: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_cv`."""
    if packed.ndim != 2 or packed.shape[0] != 2:
        raise ValueError(f"expected a 2-row packed CV, got shape {packed.shape}")
    return packed[0].astype(np.int64), packed[1]


def cv_correlation(a: Tuple[np.ndarray, np.ndarray], b: Tuple[np.ndarray, np.ndarray]) -> float:
    """Cosine correlation of two sparse CVs (the paper's sparse dot).

    ``C(A, B) = <A, B> / (|A| |B|)`` over the union support; computed by
    merging the two sorted index lists.
    """
    idx_a, val_a = a
    idx_b, val_b = b
    norm = float(np.linalg.norm(val_a) * np.linalg.norm(val_b))
    if norm == 0:
        return 0.0
    common_a = np.isin(idx_a, idx_b, assume_unique=True)
    if not common_a.any():
        return 0.0
    common_idx = idx_a[common_a]
    pos_b = np.searchsorted(idx_b, common_idx)
    dot = float(np.dot(val_a[common_a], val_b[pos_b]))
    return dot / norm


def cv_distance(a: Tuple[np.ndarray, np.ndarray], b: Tuple[np.ndarray, np.ndarray]) -> float:
    """Qi et al.'s distance ``D = (1 - C) / 2`` in [0, 1]."""
    return (1.0 - cv_correlation(a, b)) / 2.0


def cv_view(packed: np.ndarray) -> Tuple[np.ndarray, np.ndarray, float]:
    """Unpack a packed CV once into its kernel-ready ``(idx, val, norm)`` form.

    The index ``astype`` and the L2 norm are the per-operand costs of
    :func:`cv_distance`; computing them here lets the batched kernel
    (and the per-pair fallback via ``Application.item_view``) pay them
    once per resident item instead of once per pair.
    """
    idx, val = unpack_cv(packed)
    return idx, val, float(np.linalg.norm(val))


def cv_distance_block(
    views_a: "list[Tuple[np.ndarray, np.ndarray, float]]",
    views_b: "list[Tuple[np.ndarray, np.ndarray, float]]",
) -> np.ndarray:
    """Batched sparse CV distances — one kernel launch for ``n`` pairs.

    Instead of the per-pair sorted-merge (``isin`` + ``searchsorted``),
    each distinct right-hand operand is scattered once into a dense
    scratch vector over the k-mer space; every pair against it is then a
    gather + dot — O(nnz) per pair with no per-pair allocation.  The
    sparse dot equals the merge-based one up to floating-point summation
    order (documented tolerance ~1e-12 relative), since gathered zeros
    contribute exactly 0.0 to the sum.
    """
    n = len(views_a)
    out = np.empty(n, dtype=np.float64)
    if n == 0:
        return out
    # Group pairs by the identity of their right operand so each dense
    # scatter is amortised over every pair sharing that operand (block
    # locality makes sharing the common case).
    groups: Dict[int, List[int]] = {}
    for k, view in enumerate(views_b):
        groups.setdefault(id(view), []).append(k)
    size = 0
    for idx, _val, _norm in (*views_a, *views_b):
        if idx.size:
            size = max(size, int(idx[-1]) + 1)
    dense = np.zeros(max(size, 1), dtype=np.float64)
    for members in groups.values():
        idx_b, val_b, norm_b = views_b[members[0]]
        dense[idx_b] = val_b
        for k in members:
            idx_a, val_a, norm_a = views_a[k]
            denom = norm_a * norm_b
            corr = float(np.dot(val_a, dense[idx_a])) / denom if denom else 0.0
            out[k] = (1.0 - corr) / 2.0
        dense[idx_b] = 0.0
    return out
