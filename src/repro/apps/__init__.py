"""The paper's three real-world applications (Section 5), from scratch.

- :mod:`repro.apps.forensics` — common-source identification via PRNU
  sensor-noise patterns and normalized cross-correlation;
- :mod:`repro.apps.bioinformatics` — alignment-free phylogeny via
  k-string composition vectors (Qi et al.) plus neighbour-joining tree
  construction;
- :mod:`repro.apps.microscopy` — localization-microscopy particle
  registration via Gaussian-mixture similarity scores and an iterative
  optimizer.

Each package provides the numeric kernels (the parts the paper runs as
CUDA kernels) and an :class:`~repro.core.api.Application` wiring them
into Rocket's parse / preprocess / compare / postprocess pipeline.
"""

from repro.apps.forensics import ForensicsApplication
from repro.apps.bioinformatics import BioinformaticsApplication
from repro.apps.microscopy import MicroscopyApplication

__all__ = [
    "ForensicsApplication",
    "BioinformaticsApplication",
    "MicroscopyApplication",
]
