"""Rocket application wrapper for particle-fusion registration.

Pipeline mapping (paper Section 5.3):

- *parse* (CPU): JSON decode of the particle's localisation list —
  "there is no pre-processing required other than reading and parsing
  the particle files";
- *preprocess*: identity (the application has no GPU pre-process stage,
  matching Table 1's "N/A");
- *compare* (GPU): multi-start registration of the two clouds; returns
  the similarity score and the found transform;
- *postprocess* (CPU): extract the scalar score.

Registration seeds are derived deterministically from the key pair so
results are reproducible yet per-pair independent.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.apps.microscopy.registration import register_pair
from repro.core.api import Application
from repro.data.formats import decode_particle

__all__ = ["MicroscopyApplication"]


class MicroscopyApplication(Application[str, float]):
    """Pair-wise all-to-all particle registration."""

    def __init__(self, sigma: float = 0.05, restarts: int = 4) -> None:
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {restarts}")
        self.sigma = sigma
        self.restarts = restarts

    def file_name(self, key: str) -> str:
        """Particles are stored as ``<key>.json``."""
        return f"{key}.json"

    def parse(self, key: str, file_contents: bytes) -> np.ndarray:
        """Decode the particle JSON into an ``(n, 2)`` float array."""
        points, _meta = decode_particle(file_contents)
        return points

    # preprocess: inherited identity (Table 1: no pre-process stage)

    def compare(self, key_a: str, item_a: np.ndarray, key_b: str, item_b: np.ndarray) -> np.ndarray:
        """Register particle ``b`` onto ``a``; returns (score, theta, tx, ty)."""
        seed = zlib.crc32(f"{key_a}|{key_b}".encode()) & 0x7FFFFFFF
        result = register_pair(
            item_a, item_b, sigma=self.sigma, restarts=self.restarts, seed=seed
        )
        return np.array([result.score, result.theta, result.tx, result.ty])

    def compare_block(self, keys_a, items_a, keys_b, items_b) -> np.ndarray:
        """Register a block of pairs in one kernel launch.

        Multi-start registration is data-dependent (per-pair Nelder-Mead
        restarts), so the batch iterates internally — amortising the
        dispatch overhead — while deriving each pair's seed exactly as
        :meth:`compare` does, so batched results are bit-identical to
        the per-pair path.
        """
        out = np.empty((len(items_a), 4), dtype=np.float64)
        for k, (key_a, item_a, key_b, item_b) in enumerate(
            zip(keys_a, items_a, keys_b, items_b)
        ):
            seed = zlib.crc32(f"{key_a}|{key_b}".encode()) & 0x7FFFFFFF
            result = register_pair(
                item_a, item_b, sigma=self.sigma, restarts=self.restarts, seed=seed
            )
            out[k] = (result.score, result.theta, result.tx, result.ty)
        return out

    def postprocess(self, key_a: str, key_b: str, raw_result: np.ndarray) -> float:
        """Return the registration score as a plain float."""
        return float(raw_result[0])
