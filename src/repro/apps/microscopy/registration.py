"""Particle registration kernels (Heydarian et al. 2018; Jian & Vemuri 2011).

Each particle is a cloud of 2-D localisations of the same underlying
structure under an unknown rigid transform.  Registering a pair means
finding the rotation/translation that maximises a similarity between
the two clouds, modelled as Gaussian mixtures with isotropic kernels:

- :func:`gmm_l2_similarity` — the Gaussian-overlap cross term of the
  quadratic L2 distance between two GMMs (Jian & Vemuri), in closed
  form;
- :func:`bhattacharyya_similarity` — the Bhattacharyya-based score used
  by Heydarian et al. (Gaussian overlap at doubled variance);
- :func:`register_pair` — multi-start Nelder-Mead optimisation over
  ``(theta, tx, ty)``.

The optimizer "calls these two methods many times", which is why the
comparison is compute-heavy and highly data-dependent — the paper's
most irregular kernel (Fig. 7, right).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.optimize import minimize

from repro.util.rng import seeded_rng

__all__ = [
    "rigid_transform",
    "gmm_l2_similarity",
    "bhattacharyya_similarity",
    "register_pair",
    "RegistrationResult",
]


def rigid_transform(points: np.ndarray, theta: float, tx: float, ty: float) -> np.ndarray:
    """Rotate ``points`` by ``theta`` and translate by ``(tx, ty)``."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"expected (n, 2) points, got shape {pts.shape}")
    c, s = np.cos(theta), np.sin(theta)
    rot = np.array([[c, -s], [s, c]])
    return pts @ rot.T + np.array([tx, ty])


def _pairwise_sq_dists(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """All squared Euclidean distances between rows of ``x`` and ``y``."""
    diff = x[:, None, :] - y[None, :, :]
    return np.einsum("ijk,ijk->ij", diff, diff)


def gmm_l2_similarity(x: np.ndarray, y: np.ndarray, sigma: float = 0.05) -> float:
    """Cross term of the L2 distance between two isotropic GMMs.

    ``(1 / (n m)) * sum_ij exp(-||xi - yj||^2 / (4 sigma^2))`` — the
    part of the quadratic L2 distance that depends on the relative
    alignment (the self terms are alignment-invariant).  Larger is a
    better alignment.
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    if len(x) == 0 or len(y) == 0:
        return 0.0
    sq = _pairwise_sq_dists(np.asarray(x, float), np.asarray(y, float))
    return float(np.exp(-sq / (4.0 * sigma * sigma)).mean())


def bhattacharyya_similarity(x: np.ndarray, y: np.ndarray, sigma: float = 0.05) -> float:
    """Bhattacharyya-kernel overlap of two localisation clouds.

    The Bhattacharyya coefficient of two isotropic Gaussians separated
    by ``d`` is ``exp(-d^2 / (8 sigma^2))``; summing over all pairs
    gives the score Heydarian et al. use for the final refinement.
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    if len(x) == 0 or len(y) == 0:
        return 0.0
    sq = _pairwise_sq_dists(np.asarray(x, float), np.asarray(y, float))
    return float(np.exp(-sq / (8.0 * sigma * sigma)).mean())


@dataclass(frozen=True)
class RegistrationResult:
    """Outcome of registering a particle pair."""

    score: float
    theta: float
    tx: float
    ty: float
    evaluations: int
    method: str

    def transform(self, points: np.ndarray) -> np.ndarray:
        """Apply the found transform to ``points``."""
        return rigid_transform(points, self.theta, self.tx, self.ty)


def register_pair(
    x: np.ndarray,
    y: np.ndarray,
    sigma: float = 0.05,
    restarts: int = 6,
    method: str = "gmm_l2",
    seed: Optional[int] = None,
    refine_with_bhattacharyya: bool = True,
) -> RegistrationResult:
    """Find the rigid transform of ``y`` best aligning it onto ``x``.

    Multi-start local optimisation: ``restarts`` random initial
    rotations (translations seeded from the centroid offset), each
    refined with Nelder-Mead on the chosen similarity; optionally the
    best candidate is re-scored/refined with the Bhattacharyya score,
    mirroring the two-stage scheme of Heydarian et al.

    The evaluation count — and hence the run time — depends strongly on
    the data (how many restarts converge quickly), which is what makes
    this application's comparison time highly irregular.
    """
    if restarts < 1:
        raise ValueError(f"restarts must be >= 1, got {restarts}")
    if method not in ("gmm_l2", "bhattacharyya"):
        raise ValueError(f"unknown method {method!r}")
    base_score = gmm_l2_similarity if method == "gmm_l2" else bhattacharyya_similarity
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    rng = seeded_rng(seed)
    centroid_shift = x.mean(axis=0) - y.mean(axis=0)
    evaluations = 0

    def objective(params: np.ndarray, score_fn) -> float:
        nonlocal evaluations
        evaluations += 1
        moved = rigid_transform(y, params[0], params[1], params[2])
        return -score_fn(x, moved)

    best_params: Optional[np.ndarray] = None
    best_value = np.inf
    for r in range(restarts):
        theta0 = 2.0 * np.pi * r / restarts + float(rng.uniform(-0.1, 0.1))
        start = np.array([theta0, centroid_shift[0], centroid_shift[1]])
        start[1:] += rng.normal(0, 0.02, 2)
        res = minimize(
            objective,
            start,
            args=(base_score,),
            method="Nelder-Mead",
            options={"maxiter": 120, "xatol": 1e-4, "fatol": 1e-6},
        )
        if res.fun < best_value:
            best_value = float(res.fun)
            best_params = np.asarray(res.x)
    assert best_params is not None

    final_method = method
    if refine_with_bhattacharyya and method == "gmm_l2":
        res = minimize(
            objective,
            best_params,
            args=(bhattacharyya_similarity,),
            method="Nelder-Mead",
            options={"maxiter": 60, "xatol": 1e-4, "fatol": 1e-6},
        )
        best_params = np.asarray(res.x)
        best_value = float(res.fun)
        final_method = "gmm_l2+bhattacharyya"

    theta = float(np.mod(best_params[0], 2.0 * np.pi))
    return RegistrationResult(
        score=-best_value,
        theta=theta,
        tx=float(best_params[1]),
        ty=float(best_params[2]),
        evaluations=evaluations,
        method=final_method,
    )
