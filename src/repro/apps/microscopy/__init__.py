"""Localization-microscopy particle fusion (paper Section 5.3)."""

from repro.apps.microscopy.registration import (
    rigid_transform,
    gmm_l2_similarity,
    bhattacharyya_similarity,
    register_pair,
    RegistrationResult,
)
from repro.apps.microscopy.app import MicroscopyApplication

__all__ = [
    "rigid_transform",
    "gmm_l2_similarity",
    "bhattacharyya_similarity",
    "register_pair",
    "RegistrationResult",
    "MicroscopyApplication",
]
