"""Rocket — efficient and scalable all-pairs computations (SC 2020), in Python.

A from-scratch reproduction of *"Rocket: Efficient and Scalable
All-Pairs Computations on Heterogeneous Platforms"* (Heldens et al.,
SC 2020).  The package provides:

- :mod:`repro.core` — the user-facing all-pairs programming interface
  (parse / preprocess / compare / postprocess) and the :class:`Rocket`
  entry point;
- :mod:`repro.cache` — the three-level software cache policy logic;
- :mod:`repro.scheduling` — divide-and-conquer decomposition and
  hierarchical random work-stealing;
- :mod:`repro.runtime` — the threaded single-node runtime executing
  real NumPy pipelines on virtual devices;
- :mod:`repro.sim` — a discrete-event simulation of heterogeneous GPU
  clusters running the full Rocket runtime on simulated time (the
  substrate for the paper's multi-node evaluation);
- :mod:`repro.model` — the analytical performance model (T_min, R,
  system efficiency);
- :mod:`repro.apps` — the paper's three applications (forensics,
  bioinformatics, microscopy), kernels implemented from scratch;
- :mod:`repro.data` — synthetic data sets with ground truth and the
  file-store abstraction.

Quickstart::

    from repro import Rocket, RocketConfig
    from repro.apps import ForensicsApplication
    from repro.data import InMemoryStore, make_forensics_dataset

    store = InMemoryStore()
    dataset = make_forensics_dataset(store, n_images=16, n_cameras=4, seed=7)
    rocket = Rocket(ForensicsApplication(), store, RocketConfig(n_devices=2))
    results = rocket.run(dataset.keys)
    print(results.get("img0000", "img0004"))
"""

from repro.core import Application, Rocket, RocketConfig, ResultMatrix, HostBuffer, DeviceBuffer
from repro.runtime import LocalRocketRuntime, RunStats, VirtualDevice

__version__ = "1.0.0"

__all__ = [
    "Application",
    "Rocket",
    "RocketConfig",
    "ResultMatrix",
    "HostBuffer",
    "DeviceBuffer",
    "LocalRocketRuntime",
    "RunStats",
    "VirtualDevice",
    "__version__",
]
