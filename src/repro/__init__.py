"""Rocket — efficient and scalable all-pairs computations (SC 2020), in Python.

A from-scratch reproduction of *"Rocket: Efficient and Scalable
All-Pairs Computations on Heterogeneous Platforms"* (Heldens et al.,
SC 2020).  The package provides:

- :mod:`repro.core` — the user-facing all-pairs programming interface
  (parse / preprocess / compare / postprocess) and the :class:`Rocket`
  entry point;
- :mod:`repro.cache` — the three-level software cache policy logic;
- :mod:`repro.scheduling` — divide-and-conquer decomposition and
  hierarchical random work-stealing;
- :mod:`repro.runtime` — the real runtimes executing NumPy pipelines
  on virtual devices: the threaded single-process backend and the
  multi-process *cluster* backend, which runs one worker process per
  node with a live distributed cache level (mediator-based peer
  fetches over real IPC) and global work stealing;
- :mod:`repro.sim` — a discrete-event simulation of heterogeneous GPU
  clusters running the full Rocket runtime on simulated time (the
  substrate for the paper's multi-node evaluation);
- :mod:`repro.model` — the analytical performance model (T_min, R,
  system efficiency);
- :mod:`repro.apps` — the paper's three applications (forensics,
  bioinformatics, microscopy), kernels implemented from scratch;
- :mod:`repro.data` — synthetic data sets with ground truth and the
  file-store abstraction.

Quickstart::

    from repro import Rocket, RocketConfig
    from repro.apps import ForensicsApplication
    from repro.data import InMemoryStore, make_forensics_dataset

    store = InMemoryStore()
    dataset = make_forensics_dataset(store, n_images=16, n_cameras=4, seed=7)
    rocket = Rocket(ForensicsApplication(), store, RocketConfig(n_devices=2))
    results = rocket.run(dataset.keys)
    print(results.get("img0000", "img0004"))

The same run on four real worker processes with the distributed cache
live (results are identical; only the substrate changes)::

    rocket = Rocket(ForensicsApplication(), store, backend="cluster", n_nodes=4)
    results = rocket.run(dataset.keys)
    print(rocket.last_stats.summary())  # includes the hop histogram totals
"""

from repro.core import (
    AllPairs,
    Application,
    Bipartite,
    DeltaPairs,
    DeviceBuffer,
    FilteredPairs,
    HostBuffer,
    JobAccounting,
    JobScheduler,
    ResultMatrix,
    Rocket,
    RocketConfig,
    RocketSession,
    RunHandle,
    RunState,
    SchedulingPolicy,
    SessionClosed,
    Workload,
)
from repro.obs import MetricsRegistry, configure_logging, get_logger
from repro.runtime import (
    ClusterConfig,
    ClusterRocketRuntime,
    ClusterRunStats,
    LocalRocketRuntime,
    RunStats,
    VirtualDevice,
)
from repro.util.trace import ProfileTrace

__version__ = "1.2.0"

__all__ = [
    "Application",
    "Rocket",
    "RocketConfig",
    "RocketSession",
    "RunHandle",
    "RunState",
    "SchedulingPolicy",
    "SessionClosed",
    "JobScheduler",
    "JobAccounting",
    "Workload",
    "AllPairs",
    "FilteredPairs",
    "Bipartite",
    "DeltaPairs",
    "ResultMatrix",
    "HostBuffer",
    "DeviceBuffer",
    "LocalRocketRuntime",
    "RunStats",
    "ClusterConfig",
    "ClusterRocketRuntime",
    "ClusterRunStats",
    "VirtualDevice",
    "MetricsRegistry",
    "ProfileTrace",
    "configure_logging",
    "get_logger",
    "__version__",
]
