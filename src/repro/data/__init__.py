"""Data substrate: file stores, codecs, and synthetic data sets.

The paper's inputs (Dresden images, UniProt proteomes, simulated
microscopy particles) are not redistributable here, so
:mod:`repro.data.synthetic` generates statistically analogous data sets
with *known ground truth* — which makes application correctness
testable, something the original corpora do not offer.

:mod:`repro.data.filestore` provides the storage abstraction Rocket
loads from (the paper uses a central MinIO server): an in-memory store,
a directory-backed store, and a bandwidth-throttled wrapper emulating
remote storage contention on a single machine.
"""

from repro.data.filestore import FileStore, InMemoryStore, DirectoryStore, ThrottledStore
from repro.data.formats import (
    encode_image,
    decode_image,
    encode_fasta,
    decode_fasta,
    encode_particle,
    decode_particle,
)
from repro.data.synthetic import (
    ForensicsDataset,
    BioinformaticsDataset,
    MicroscopyDataset,
    make_forensics_dataset,
    make_bioinformatics_dataset,
    make_microscopy_dataset,
)

__all__ = [
    "FileStore",
    "InMemoryStore",
    "DirectoryStore",
    "ThrottledStore",
    "encode_image",
    "decode_image",
    "encode_fasta",
    "decode_fasta",
    "encode_particle",
    "decode_particle",
    "ForensicsDataset",
    "BioinformaticsDataset",
    "MicroscopyDataset",
    "make_forensics_dataset",
    "make_bioinformatics_dataset",
    "make_microscopy_dataset",
]
