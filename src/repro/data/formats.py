"""Tiny file codecs standing in for the paper's input formats.

The three applications read JPEG images, gzip-compressed FASTA
proteomes, and JSON particle files.  We implement compact equivalents
from scratch (no imaging libraries are available offline):

- ``RIMG`` — zlib-compressed uint8 raster with a binary header; like
  JPEG it makes the *parse* stage a real decompress-and-decode cost;
- ``FASTA.z`` — standard FASTA text, zlib-compressed;
- particle JSON — a JSON document of 2-D localisations, as produced by
  the simulator of Heydarian et al.

All codecs round-trip exactly (tested property-based), which is what
the deterministic-load assumption of Rocket's caches requires.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Dict, List, Tuple

import numpy as np

__all__ = [
    "encode_image",
    "decode_image",
    "encode_fasta",
    "decode_fasta",
    "encode_particle",
    "decode_particle",
]

_IMG_MAGIC = b"RIMG"
_IMG_VERSION = 1


def encode_image(pixels: np.ndarray) -> bytes:
    """Encode a 2-D uint8 image into the ``RIMG`` container."""
    if pixels.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {pixels.shape}")
    if pixels.dtype != np.uint8:
        raise ValueError(f"expected uint8 pixels, got {pixels.dtype}")
    height, width = pixels.shape
    payload = zlib.compress(pixels.tobytes(), level=6)
    header = struct.pack("<4sBII", _IMG_MAGIC, _IMG_VERSION, height, width)
    return header + payload


def decode_image(blob: bytes) -> np.ndarray:
    """Decode an ``RIMG`` blob back into a 2-D uint8 array."""
    header_size = struct.calcsize("<4sBII")
    if len(blob) < header_size:
        raise ValueError("truncated RIMG blob")
    magic, version, height, width = struct.unpack("<4sBII", blob[:header_size])
    if magic != _IMG_MAGIC:
        raise ValueError(f"not an RIMG blob (magic {magic!r})")
    if version != _IMG_VERSION:
        raise ValueError(f"unsupported RIMG version {version}")
    raw = zlib.decompress(blob[header_size:])
    expected = height * width
    if len(raw) != expected:
        raise ValueError(f"RIMG payload has {len(raw)} bytes, expected {expected}")
    return np.frombuffer(raw, dtype=np.uint8).reshape(height, width)


def encode_fasta(records: Dict[str, str], compress: bool = True) -> bytes:
    """Encode named sequences as (optionally zlib-compressed) FASTA text."""
    if not records:
        raise ValueError("no records to encode")
    lines: List[str] = []
    for name, seq in records.items():
        if not name or any(c in name for c in "\n\r>"):
            raise ValueError(f"invalid record name {name!r}")
        if not seq:
            raise ValueError(f"record {name!r} has an empty sequence")
        lines.append(f">{name}")
        # 60-column wrapping, as in conventional FASTA files.
        lines.extend(seq[pos : pos + 60] for pos in range(0, len(seq), 60))
    text = ("\n".join(lines) + "\n").encode("ascii")
    return zlib.compress(text, level=6) if compress else text


def decode_fasta(blob: bytes, compressed: bool = True) -> Dict[str, str]:
    """Decode FASTA text into an ordered name -> sequence mapping."""
    text = (zlib.decompress(blob) if compressed else blob).decode("ascii")
    records: Dict[str, str] = {}
    name = None
    chunks: List[str] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith(">"):
            if name is not None:
                records[name] = "".join(chunks)
            name = line[1:].strip()
            if not name:
                raise ValueError("FASTA record with empty name")
            if name in records:
                raise ValueError(f"duplicate FASTA record {name!r}")
            chunks = []
        else:
            if name is None:
                raise ValueError("FASTA sequence data before any header")
            chunks.append(line)
    if name is not None:
        records[name] = "".join(chunks)
    if not records:
        raise ValueError("no FASTA records found")
    for rec_name, seq in records.items():
        if not seq:
            raise ValueError(f"FASTA record {rec_name!r} has no sequence")
    return records


def encode_particle(points: np.ndarray, meta: Dict | None = None) -> bytes:
    """Encode an ``(n, 2)`` localisation cloud as a JSON particle file."""
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected (n, 2) localisations, got shape {arr.shape}")
    doc = {
        "format": "rocket-particle",
        "n_localizations": int(arr.shape[0]),
        "x": arr[:, 0].tolist(),
        "y": arr[:, 1].tolist(),
        "meta": meta or {},
    }
    return json.dumps(doc).encode("utf-8")


def decode_particle(blob: bytes) -> Tuple[np.ndarray, Dict]:
    """Decode a particle JSON file into ``(points, meta)``."""
    try:
        doc = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"not a particle JSON file: {exc}") from exc
    if doc.get("format") != "rocket-particle":
        raise ValueError("not a rocket-particle document")
    x = np.asarray(doc["x"], dtype=np.float64)
    y = np.asarray(doc["y"], dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("x and y coordinate lists differ in length")
    if int(doc.get("n_localizations", -1)) != x.size:
        raise ValueError("n_localizations does not match coordinate count")
    return np.column_stack([x, y]), dict(doc.get("meta", {}))
