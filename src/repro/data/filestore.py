"""File stores: where Rocket's load pipeline reads its inputs from.

The paper serves all input files from a central MinIO object store over
InfiniBand; loading an item therefore always starts with a remote read
whose cost depends on file size and server load.  Three stores cover
the reproduction's needs:

- :class:`InMemoryStore` — a dict; fast unit-test substrate;
- :class:`DirectoryStore` — real files on local disk (examples);
- :class:`ThrottledStore` — wraps any store and meters a configurable
  bandwidth with a thread-safe virtual clock, so a single machine can
  emulate a contended remote server (concurrent readers genuinely slow
  each other down, as on the paper's storage backend).
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Dict, List, Tuple

__all__ = ["FileStore", "InMemoryStore", "DirectoryStore", "ThrottledStore"]


class FileStore(ABC):
    """Abstract named-blob store."""

    @abstractmethod
    def read(self, name: str) -> bytes:
        """Return the contents of blob ``name`` (KeyError if absent)."""

    @abstractmethod
    def write(self, name: str, data: bytes) -> None:
        """Create or replace blob ``name``."""

    @abstractmethod
    def names(self) -> List[str]:
        """All blob names, sorted."""

    def exists(self, name: str) -> bool:
        """True when blob ``name`` is present."""
        return name in self.names()

    def stat(self, name: str) -> Tuple[int, float]:
        """``(size_bytes, mtime)`` of blob ``name`` (KeyError if absent).

        A ``mtime`` of ``0.0`` means the store cannot report modification
        times; callers using stat for change detection (the persistent
        store's hash cache, its GC) must treat such entries as always
        potentially modified.  Stores backed by real files or tracked
        writes override this with honest timestamps.
        """
        return len(self.read(name)), 0.0

    def total_bytes(self) -> int:
        """Sum of all blob sizes."""
        return sum(len(self.read(n)) for n in self.names())


class InMemoryStore(FileStore):
    """Blobs in a process-local dict (thread-safe)."""

    def __init__(self) -> None:
        self._blobs: Dict[str, bytes] = {}
        self._mtimes: Dict[str, float] = {}
        self._lock = threading.Lock()

    def read(self, name: str) -> bytes:
        with self._lock:
            try:
                return self._blobs[name]
            except KeyError:
                raise KeyError(f"no such file {name!r} in store") from None

    def write(self, name: str, data: bytes) -> None:
        if not isinstance(data, (bytes, bytearray)):
            raise TypeError(
                f"store contents for {name!r} must be bytes, "
                f"got {type(data).__name__}"
            )
        with self._lock:
            self._blobs[name] = bytes(data)
            self._mtimes[name] = time.time()

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._blobs)

    def exists(self, name: str) -> bool:
        with self._lock:
            return name in self._blobs

    def stat(self, name: str) -> Tuple[int, float]:
        with self._lock:
            try:
                return len(self._blobs[name]), self._mtimes[name]
            except KeyError:
                raise KeyError(f"no such file {name!r} in store") from None


class DirectoryStore(FileStore):
    """Blobs as files under a directory."""

    def __init__(self, root: "str | Path", create: bool = True) -> None:
        self.root = Path(root)
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
        if not self.root.is_dir():
            raise NotADirectoryError(f"{self.root} is not a directory")

    def _path(self, name: str) -> Path:
        if "/" in name or "\\" in name or name.startswith("."):
            raise ValueError(f"invalid blob name {name!r}")
        return self.root / name

    def read(self, name: str) -> bytes:
        path = self._path(name)
        if not path.is_file():
            raise KeyError(f"no such file {name!r} in {self.root}")
        return path.read_bytes()

    def write(self, name: str, data: bytes) -> None:
        if not isinstance(data, (bytes, bytearray)):
            raise TypeError(
                f"store contents for {name!r} must be bytes, "
                f"got {type(data).__name__}"
            )
        self._path(name).write_bytes(data)

    def names(self) -> List[str]:
        return sorted(p.name for p in self.root.iterdir() if p.is_file())

    def exists(self, name: str) -> bool:
        return self._path(name).is_file()

    def stat(self, name: str) -> Tuple[int, float]:
        path = self._path(name)
        try:
            st = path.stat()
        except FileNotFoundError:
            raise KeyError(f"no such file {name!r} in {self.root}") from None
        return st.st_size, st.st_mtime


class ThrottledStore(FileStore):
    """Bandwidth-metered wrapper emulating a shared remote server.

    Reads pay ``latency + nbytes / bandwidth`` of wall-clock delay and
    serialise on a virtual clock shared by all reader threads, exactly
    like the simulator's storage link — so concurrent loads contend the
    way they do against the paper's MinIO server.
    """

    def __init__(self, inner: FileStore, bandwidth: float, latency: float = 0.0) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        self.inner = inner
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self._lock = threading.Lock()
        self._free_at = 0.0
        self.bytes_read = 0
        self.read_count = 0

    def read(self, name: str) -> bytes:
        data = self.inner.read(name)
        service = self.latency + len(data) / self.bandwidth
        with self._lock:
            now = time.monotonic()
            start = max(now, self._free_at)
            done = start + service
            self._free_at = done
            self.bytes_read += len(data)
            self.read_count += 1
        delay = done - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        return data

    def write(self, name: str, data: bytes) -> None:
        self.inner.write(name, data)

    def names(self) -> List[str]:
        return self.inner.names()

    def exists(self, name: str) -> bool:
        return self.inner.exists(name)

    def stat(self, name: str) -> Tuple[int, float]:
        # Metadata reads are free: only payload bytes pay for bandwidth.
        return self.inner.stat(name)
