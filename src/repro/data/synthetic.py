"""Synthetic data sets with known ground truth for the three applications.

Each generator writes files (in the formats of :mod:`repro.data.formats`)
into a :class:`~repro.data.filestore.FileStore` and returns a dataset
descriptor carrying the ground truth:

- **forensics**: images rendered from random scenes through cameras
  with fixed multiplicative PRNU sensor-noise patterns — ground truth
  is the camera of each image, so common-source identification accuracy
  is checkable;
- **bioinformatics**: proteomes evolved along a random binary tree by
  point mutation — ground truth is the generating tree, so the
  reconstructed phylogeny can be scored against it;
- **microscopy**: particles derived from one template point cloud by
  rotation, translation, localisation jitter, under-labelling and
  outliers — ground truth is the per-particle transform.

Everything is deterministic under the provided seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import networkx as nx
import numpy as np

from repro.data.filestore import FileStore
from repro.data.formats import encode_fasta, encode_image, encode_particle
from repro.util.rng import seeded_rng, spawn_seeds

__all__ = [
    "ForensicsDataset",
    "BioinformaticsDataset",
    "MicroscopyDataset",
    "make_forensics_dataset",
    "make_bioinformatics_dataset",
    "make_microscopy_dataset",
    "AMINO_ACIDS",
]

AMINO_ACIDS = "ACDEFGHIKLMNPQRSTVWY"


# ---------------------------------------------------------------------------
# Forensics: PRNU camera noise
# ---------------------------------------------------------------------------


@dataclass
class ForensicsDataset:
    """Generated image corpus plus ground truth camera assignment."""

    keys: List[str]
    camera_of: Dict[str, int]
    n_cameras: int
    image_shape: Tuple[int, int]
    prnu_strength: float

    def same_camera(self, a: str, b: str) -> bool:
        """Ground truth: were ``a`` and ``b`` taken by the same camera?"""
        return self.camera_of[a] == self.camera_of[b]


def _smooth_field(rng: np.random.Generator, shape: Tuple[int, int], smoothness: int) -> np.ndarray:
    """A smooth random scene: low-resolution noise upsampled bilinearly."""
    coarse_shape = (max(2, shape[0] // smoothness), max(2, shape[1] // smoothness))
    coarse = rng.uniform(0.2, 0.8, coarse_shape)
    # Bilinear upsample via per-axis linear interpolation.
    rows = np.linspace(0, coarse_shape[0] - 1, shape[0])
    cols = np.linspace(0, coarse_shape[1] - 1, shape[1])
    r0 = np.floor(rows).astype(int)
    c0 = np.floor(cols).astype(int)
    r1 = np.minimum(r0 + 1, coarse_shape[0] - 1)
    c1 = np.minimum(c0 + 1, coarse_shape[1] - 1)
    wr = (rows - r0)[:, None]
    wc = (cols - c0)[None, :]
    top = coarse[np.ix_(r0, c0)] * (1 - wc) + coarse[np.ix_(r0, c1)] * wc
    bottom = coarse[np.ix_(r1, c0)] * (1 - wc) + coarse[np.ix_(r1, c1)] * wc
    return top * (1 - wr) + bottom * wr


def make_forensics_dataset(
    store: FileStore,
    n_images: int = 24,
    n_cameras: int = 4,
    image_shape: Tuple[int, int] = (96, 96),
    prnu_strength: float = 0.06,
    readout_noise: float = 0.02,
    seed: int = 0,
) -> ForensicsDataset:
    """Generate a PRNU image corpus into ``store``.

    Each camera has a fixed zero-mean multiplicative noise pattern
    ``K``; an image of scene ``S`` is quantised ``S * (1 + strength*K) +
    readout noise`` (the standard PRNU sensor model, Fridrich 2013).
    """
    if n_images < 2:
        raise ValueError(f"need at least 2 images, got {n_images}")
    if n_cameras < 1:
        raise ValueError(f"need at least 1 camera, got {n_cameras}")
    rng = seeded_rng(seed)
    patterns = rng.standard_normal((n_cameras,) + image_shape)
    keys: List[str] = []
    camera_of: Dict[str, int] = {}
    for idx in range(n_images):
        cam = idx % n_cameras  # balanced assignment
        scene = _smooth_field(rng, image_shape, smoothness=8)
        observed = scene * (1.0 + prnu_strength * patterns[cam])
        observed += readout_noise * rng.standard_normal(image_shape)
        pixels = np.clip(observed * 255.0, 0, 255).astype(np.uint8)
        key = f"img{idx:04d}"
        store.write(f"{key}.rimg", encode_image(pixels))
        keys.append(key)
        camera_of[key] = cam
    return ForensicsDataset(keys, camera_of, n_cameras, image_shape, prnu_strength)


# ---------------------------------------------------------------------------
# Bioinformatics: proteomes on a random phylogeny
# ---------------------------------------------------------------------------


@dataclass
class BioinformaticsDataset:
    """Generated proteomes plus the true generating tree."""

    keys: List[str]
    tree: nx.Graph  # leaves are the keys; internal nodes are ints
    n_proteins: int
    protein_length: int

    def true_clades(self) -> List[frozenset]:
        """Leaf bipartitions induced by the internal edges of the tree.

        Used to score reconstructed phylogenies (Robinson-Foulds style):
        each internal edge splits the leaves in two; the smaller side is
        returned as a frozenset.
        """
        leaves = {n for n in self.tree.nodes if isinstance(n, str)}
        clades = []
        for u, v in self.tree.edges:
            work = self.tree.copy()
            work.remove_edge(u, v)
            side = {n for n in nx.node_connected_component(work, u) if isinstance(n, str)}
            if 1 < len(side) < len(leaves) - 1:
                smaller = side if len(side) <= len(leaves) - len(side) else leaves - side
                clades.append(frozenset(smaller))
        return clades


def _random_binary_tree(names: List[str], rng: np.random.Generator) -> nx.Graph:
    """Random coalescent: repeatedly join two random subtrees."""
    tree = nx.Graph()
    roots: List = list(names)
    tree.add_nodes_from(roots)
    next_internal = 0
    while len(roots) > 1:
        i, j = sorted(rng.choice(len(roots), size=2, replace=False))
        a, b = roots[i], roots[j]
        parent = next_internal
        next_internal += 1
        tree.add_node(parent)
        tree.add_edge(parent, a, length=float(rng.uniform(0.2, 1.0)))
        tree.add_edge(parent, b, length=float(rng.uniform(0.2, 1.0)))
        roots = [r for k, r in enumerate(roots) if k not in (i, j)] + [parent]
    return tree


def _mutate(seq: np.ndarray, rate: float, rng: np.random.Generator) -> np.ndarray:
    """Point-mutate integer-coded residues with per-site probability ``rate``."""
    out = seq.copy()
    mask = rng.random(seq.shape) < rate
    n_mut = int(mask.sum())
    if n_mut:
        out[mask] = rng.integers(0, len(AMINO_ACIDS), n_mut)
    return out


def make_bioinformatics_dataset(
    store: FileStore,
    n_species: int = 12,
    n_proteins: int = 8,
    protein_length: int = 300,
    mutation_rate: float = 0.03,
    seed: int = 0,
) -> BioinformaticsDataset:
    """Generate proteomes evolved along a random binary tree into ``store``.

    The root proteome is random; every tree edge applies point mutations
    proportional to its length.  Closely related species therefore share
    k-mer statistics — exactly the signal composition-vector phylogeny
    reconstruction uses.
    """
    if n_species < 3:
        raise ValueError(f"need at least 3 species, got {n_species}")
    rng = seeded_rng(seed)
    keys = [f"species{idx:03d}" for idx in range(n_species)]
    tree = _random_binary_tree(keys, rng)
    root = max(n for n in tree.nodes if isinstance(n, int))
    root_proteome = rng.integers(0, len(AMINO_ACIDS), (n_proteins, protein_length))

    proteomes: Dict = {root: root_proteome}
    for parent, child in nx.bfs_edges(tree, root):
        length = tree.edges[parent, child]["length"]
        proteomes[child] = _mutate(proteomes[parent], mutation_rate * length, rng)

    lookup = np.array(list(AMINO_ACIDS))
    for key in keys:
        records = {
            f"{key}_p{p:03d}": "".join(lookup[proteomes[key][p]])
            for p in range(n_proteins)
        }
        store.write(f"{key}.faz", encode_fasta(records, compress=True))
    return BioinformaticsDataset(keys, tree, n_proteins, protein_length)


# ---------------------------------------------------------------------------
# Microscopy: particles from a common template
# ---------------------------------------------------------------------------


@dataclass
class MicroscopyDataset:
    """Generated particle corpus plus per-particle true transforms."""

    keys: List[str]
    template: np.ndarray
    transforms: Dict[str, Tuple[float, float, float]]  # key -> (theta, tx, ty)
    jitter: float


def make_template(kind: str = "ring", n_points: int = 48, seed: int = 0) -> np.ndarray:
    """Build a template point cloud (the 'true' underlying structure)."""
    rng = seeded_rng(seed)
    if kind == "ring":
        angles = np.linspace(0, 2 * np.pi, n_points, endpoint=False)
        outer = np.column_stack([np.cos(angles), np.sin(angles)])
        # An asymmetric inner bar breaks rotational symmetry so that
        # registration has a unique optimum.
        bar = np.column_stack([np.linspace(-0.6, 0.6, n_points // 3), np.zeros(n_points // 3) + 0.15])
        return np.vstack([outer, bar])
    if kind == "grid":
        side = max(2, int(np.sqrt(n_points)))
        xs, ys = np.meshgrid(np.linspace(-1, 1, side), np.linspace(-1, 1, side))
        pts = np.column_stack([xs.ravel(), ys.ravel()])
        return pts + 0.02 * rng.standard_normal(pts.shape)
    raise ValueError(f"unknown template kind {kind!r}")


def make_microscopy_dataset(
    store: FileStore,
    n_particles: int = 16,
    template_kind: str = "ring",
    template_points: int = 48,
    jitter: float = 0.03,
    keep_fraction: float = 0.8,
    outlier_fraction: float = 0.05,
    seed: int = 0,
) -> MicroscopyDataset:
    """Generate localisation-microscopy particles into ``store``.

    Every particle observes the same template structure under a random
    rigid transform, with localisation jitter, under-labelling (random
    point dropout) and uniform outliers — the degradations the
    all-to-all registration of Heydarian et al. is designed to survive.
    """
    if n_particles < 2:
        raise ValueError(f"need at least 2 particles, got {n_particles}")
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
    template = make_template(template_kind, template_points, seed)
    rng = seeded_rng(seed + 1)
    keys: List[str] = []
    transforms: Dict[str, Tuple[float, float, float]] = {}
    for idx in range(n_particles):
        theta = float(rng.uniform(0, 2 * np.pi))
        tx, ty = (float(v) for v in rng.uniform(-0.3, 0.3, 2))
        rot = np.array([[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]])
        pts = template @ rot.T + np.array([tx, ty])
        keep = rng.random(len(pts)) < keep_fraction
        if keep.sum() < 4:  # always keep enough structure to register
            keep[:4] = True
        pts = pts[keep]
        pts = pts + jitter * rng.standard_normal(pts.shape)
        n_out = int(round(outlier_fraction * len(pts)))
        if n_out:
            outliers = rng.uniform(-1.5, 1.5, (n_out, 2))
            pts = np.vstack([pts, outliers])
        key = f"particle{idx:03d}"
        store.write(
            f"{key}.json",
            encode_particle(pts, meta={"theta": theta, "tx": tx, "ty": ty}),
        )
        keys.append(key)
        transforms[key] = (theta, tx, ty)
    return MicroscopyDataset(keys, template, transforms, jitter)
