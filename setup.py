"""Package metadata for the Rocket (SC 2020) reproduction.

Kept as a classic ``setup.py`` (no ``pyproject.toml``): the offline
environment lacks ``wheel``, which modern PEP-517 editable installs
require; the legacy ``setup.py develop`` path does not.
"""
from setuptools import find_packages, setup

setup(
    name="rocket-repro",
    version="1.1.0",
    description=(
        "Reproduction of 'Rocket: Efficient and Scalable All-Pairs "
        "Computations on Heterogeneous Platforms' (SC 2020)"
    ),
    long_description=open("README.md", encoding="utf-8").read(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="Apache-2.0",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=[
        "numpy",
        "scipy",
    ],
    extras_require={
        "test": [
            "pytest",
            "hypothesis",
            "pytest-benchmark",
            "pytest-cov",
            # CI deadlock guard: a wedged scheduler fails fast instead
            # of hanging the workflow until the runner-level timeout.
            "pytest-timeout",
        ],
    },
    entry_points={
        "console_scripts": [
            "rocket-repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: System :: Distributed Computing",
        "Topic :: Scientific/Engineering",
    ],
)
