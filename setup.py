"""Thin shim so `pip install -e .` works without the `wheel` package.

The offline environment lacks `wheel`, which modern PEP-517 editable
installs require; the legacy `setup.py develop` path does not.  All
metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
