#!/usr/bin/env python3
"""All-to-all particle registration (the paper's microscopy app).

Generates localization-microscopy particles — noisy, under-labelled,
randomly transformed observations of one template structure — runs the
all-pairs registration through Rocket, and uses the scores to verify
that every particle registers well against every other (the premise of
the template-free fusion method of Heydarian et al.).

Run:  python examples/microscopy_fusion.py
"""

import numpy as np

from repro import Rocket, RocketConfig
from repro.apps import MicroscopyApplication
from repro.apps.microscopy import bhattacharyya_similarity
from repro.data import InMemoryStore, make_microscopy_dataset
from repro.util.rng import seeded_rng


def main() -> None:
    store = InMemoryStore()
    dataset = make_microscopy_dataset(
        store,
        n_particles=10,
        template_kind="ring",
        template_points=40,
        jitter=0.02,
        keep_fraction=0.85,
        outlier_fraction=0.05,
        seed=7,
    )
    print(
        f"generated {len(dataset.keys)} particles from one template "
        f"({store.total_bytes() / 1e3:.1f} KB of JSON localisations)"
    )

    rocket = Rocket(
        MicroscopyApplication(sigma=0.06, restarts=3),
        store,
        RocketConfig(n_devices=2, device_cache_slots=10, host_cache_slots=10, seed=5),
    )
    results = rocket.run(dataset.keys)
    print(f"\n{rocket.last_stats.summary()}")

    scores = np.array([v for _, _, v in results.items()])
    print(f"\nregistration scores: median {np.median(scores):.4f}, "
          f"min {scores.min():.4f}, max {scores.max():.4f}")

    # Baseline: what do two *unrelated* random clouds score?
    rng = seeded_rng(0)
    baseline = bhattacharyya_similarity(
        rng.uniform(-1, 1, (34, 2)), rng.uniform(-1, 1, (34, 2)), sigma=0.06
    )
    print(f"unrelated-cloud baseline score:   {baseline:.4f}")

    good = (scores > baseline).mean()
    print(f"\n{good:.0%} of particle pairs register above the unrelated baseline")
    assert np.median(scores) > baseline
    print("OK: the all-to-all registration confirms a common underlying structure.")


if __name__ == "__main__":
    main()
