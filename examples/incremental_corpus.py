#!/usr/bin/env python3
"""Incremental corpus growth with a session: delta jobs on warm caches.

A production corpus is never finished — new items keep arriving, and
recomputing the full all-pairs triangle on every arrival wastes exactly
the work the previous run already did.  This example shows the
session/job API handling growth incrementally:

1. open a :class:`~repro.core.session.RocketSession` and run
   ``AllPairs`` over the initial corpus;
2. new items arrive; submit a ``DeltaPairs`` workload — only
   ``new x old`` and ``new x new`` comparisons, streamed as they land;
3. merge the delta result into the prior matrix
   (``prior.merge(delta)``) to obtain the grown corpus's full matrix;
4. because the session kept the backend alive, the delta job finds the
   old items already resident in the warm caches — watch the ``loads``
   counter: the delta job re-loads only what fell out of cache, not
   the whole corpus.

Run:  python examples/incremental_corpus.py
"""

import numpy as np

from repro import AllPairs, Application, DeltaPairs, RocketConfig, RocketSession
from repro.data import InMemoryStore


class SpectrumOverlap(Application[str, float]):
    """Cosine similarity between (normalised) frequency spectra."""

    def file_name(self, key: str) -> str:
        return f"{key}.f64"

    def parse(self, key: str, file_contents: bytes) -> np.ndarray:
        return np.frombuffer(file_contents, dtype=np.float64).copy()

    def preprocess(self, key: str, parsed: np.ndarray) -> np.ndarray:
        spectrum = np.abs(np.fft.rfft(parsed))
        norm = np.linalg.norm(spectrum)
        return spectrum / norm if norm > 0 else spectrum

    def compare(self, key_a, item_a, key_b, item_b) -> np.ndarray:
        return np.asarray(float(item_a @ item_b))

    def postprocess(self, key_a, key_b, raw_result) -> float:
        return float(raw_result)


def write_item(store, rng, key: str) -> None:
    base = np.sin(np.linspace(0, 6 * np.pi, 256) * (1 + int(key[-2:]) % 3))
    store.write(f"{key}.f64", (base + 0.2 * rng.standard_normal(256)).tobytes())


def main() -> None:
    rng = np.random.default_rng(11)
    store = InMemoryStore()
    corpus = [f"rec{i:02d}" for i in range(10)]
    for key in corpus:
        write_item(store, rng, key)

    config = RocketConfig(n_devices=2, device_cache_slots=16, host_cache_slots=24, seed=3)
    with RocketSession(SpectrumOverlap(), store, config) as session:
        # Initial corpus: the classic all-pairs triangle.
        first = session.submit(AllPairs(corpus))
        prior = first.result()
        print(f"initial corpus: {first.workload.describe()}")
        print(f"  loads={first.stats.loads} (every item read once)")

        # New items arrive...
        new_items = [f"rec{i:02d}" for i in range(10, 14)]
        for key in new_items:
            write_item(store, rng, key)

        # ...and only the delta is computed, streamed as results land.
        delta_handle = session.submit(DeltaPairs(corpus, new_items))
        streamed = 0
        for _a, _b, _value in delta_handle.stream():
            streamed += 1
        delta = delta_handle.result()
        done, total = delta_handle.progress()
        print(f"delta job: {delta_handle.workload.describe()}")
        print(f"  streamed {streamed} results incrementally ({done}/{total} pairs)")
        print(
            f"  loads={delta_handle.stats.loads}, warm cache hits="
            f"{delta_handle.stats.device_counters.hits + delta_handle.stats.host_counters.hits}"
        )

        # Merge into the grown corpus's full matrix.
        full = prior.merge(delta)
        assert full.is_complete() and full.n_items == len(corpus) + len(new_items)

        # Cross-check one recomputed value against a fresh full run.
        fresh = session.run(AllPairs(corpus + new_items))
        worst = max(
            abs(full.get(a, b) - v) for a, b, v in fresh.items()
        )
        print(f"merged matrix matches a fresh full run (max delta {worst:.2e})")

        delta_pairs = total
        full_pairs = fresh.expected_pairs
        assert streamed == delta_pairs
        assert delta_handle.stats.loads < len(corpus) + len(new_items), (
            "warm session should not re-load the whole corpus"
        )
        print(
            f"OK: corpus grown with {delta_pairs} comparisons instead of "
            f"{full_pairs} — warm caches did the rest."
        )


if __name__ == "__main__":
    main()
