#!/usr/bin/env python3
"""Quickstart: define an all-pairs application and run it with Rocket.

This is the minimal end-to-end use of the public API: implement the
four callbacks of the paper's Fig. 3 interface (parse on CPU,
preprocess on GPU, compare on GPU, postprocess on CPU), point Rocket at
a file store and a key list, and collect the result matrix.

The toy application compares "sensor readings": each file holds a
vector of samples; the comparison is the Pearson correlation between
two (smoothed) vectors.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Application, Rocket, RocketConfig
from repro.data import InMemoryStore


class SensorCorrelation(Application[str, float]):
    """Pearson correlation between smoothed sensor traces."""

    def file_name(self, key: str) -> str:
        return f"{key}.f64"

    def parse(self, key: str, file_contents: bytes) -> np.ndarray:
        # CPU stage: decode the raw file (here: a flat float64 dump).
        return np.frombuffer(file_contents, dtype=np.float64).copy()

    def preprocess(self, key: str, parsed: np.ndarray) -> np.ndarray:
        # GPU stage: a little smoothing so there is real per-item work.
        kernel = np.ones(5) / 5.0
        return np.convolve(parsed, kernel, mode="valid")

    def compare(self, key_a, item_a, key_b, item_b) -> np.ndarray:
        # GPU stage: the pair-wise measure.
        return np.asarray(np.corrcoef(item_a, item_b)[0, 1])

    def postprocess(self, key_a, key_b, raw_result) -> float:
        # CPU stage: unwrap the device result.
        return float(raw_result)


def main() -> None:
    rng = np.random.default_rng(42)

    # Build a small synthetic data set: 12 sensors observing two
    # underlying signals (so the result matrix has block structure).
    store = InMemoryStore()
    signals = [np.sin(np.linspace(0, 20, 512)), np.cos(np.linspace(0, 14, 512))]
    keys = []
    group_of = {}
    for i in range(12):
        key = f"sensor{i:02d}"
        group = i % 2
        trace = signals[group] + 0.3 * rng.standard_normal(512)
        store.write(f"{key}.f64", trace.astype(np.float64).tobytes())
        keys.append(key)
        group_of[key] = group

    # Run the all-pairs computation on two virtual devices with small
    # caches (so you can watch reuse happening in the stats).
    rocket = Rocket(
        SensorCorrelation(),
        store,
        RocketConfig(n_devices=2, device_cache_slots=6, host_cache_slots=8, seed=7),
    )
    results = rocket.run(keys)

    print("pairwise correlations (first few):")
    for a, b, value in list(results.items())[:6]:
        marker = "same signal" if group_of[a] == group_of[b] else "different"
        print(f"  {a} vs {b}: {value:+.3f}  ({marker})")

    same = [v for a, b, v in results.items() if group_of[a] == group_of[b]]
    diff = [v for a, b, v in results.items() if group_of[a] != group_of[b]]
    print(f"\nmean correlation, same signal:      {np.mean(same):+.3f}")
    print(f"mean correlation, different signal: {np.mean(diff):+.3f}")

    stats = rocket.last_stats
    print(f"\nruntime stats: {stats.summary()}")
    assert np.mean(same) > 0.5 > abs(np.mean(diff))
    print("OK: same-signal sensors correlate, different-signal sensors do not.")


if __name__ == "__main__":
    main()
