#!/usr/bin/env python3
"""Simulating Rocket on a multi-node heterogeneous GPU cluster.

The threaded runtime executes real pipelines on one machine; scaling
studies (the paper's evaluation) run the same Rocket logic on the
discrete-event simulator.  This example:

1. runs the forensics workload on 1 vs 8 simulated DAS-5 nodes, with
   and without the distributed cache, showing the super-linear-speedup
   mechanism (R drops as combined memory grows);
2. runs the paper's heterogeneous 4-node / 7-GPU platform and prints
   per-GPU pair counts, showing work-stealing's automatic balancing.

Run:  python examples/cluster_simulation.py
"""

from repro.sim import ClusterSpec, RocketSimConfig
from repro.sim.rocketsim import run_simulation
from repro.sim.workload import FORENSICS, scaled_profile


def main() -> None:
    # Scaled-down forensics workload (see DESIGN.md on the scaling law).
    profile = scaled_profile(FORENSICS, 96)
    cache = dict(device_cache_slots=8, host_cache_slots=10)

    print("== scaling: 1 node vs 8 nodes, distributed cache on/off ==")
    base = run_simulation(
        ClusterSpec.homogeneous(1), profile, RocketSimConfig(seed=1, **cache)
    )
    print(f"1 node:            T={base.runtime:7.2f}s  R={base.reuse_factor:5.2f}  "
          f"eff={base.efficiency:.0%}")
    for dist in (False, True):
        rep = run_simulation(
            ClusterSpec.homogeneous(8),
            profile,
            RocketSimConfig(seed=1, distributed_cache=dist, **cache),
        )
        label = "with distributed cache " if dist else "without distributed cache"
        print(f"8 nodes {label}: T={rep.runtime:7.2f}s  R={rep.reuse_factor:5.2f}  "
              f"eff={rep.efficiency:.0%}  speedup={base.runtime / rep.runtime:.2f}x  "
              f"IO={rep.avg_io_usage / 1e6:.1f} MB/s")

    print("\n== heterogeneous platform (4 nodes, 7 GPUs, 4 generations) ==")
    spec = ClusterSpec.das5_heterogeneous()
    rep = run_simulation(spec, profile, RocketSimConfig(seed=2, **cache))
    print(f"run time {rep.runtime:.2f}s, throughput {rep.throughput:.0f} pairs/s, "
          f"{rep.remote_steals} remote steals")
    for lane, pairs in sorted(rep.pairs_per_gpu.items()):
        share = pairs / rep.n_pairs
        print(f"  {lane:<32} {pairs:>6} pairs ({share:.0%})")
    print("\nfaster GPUs automatically receive proportionally more work — no")
    print("static partitioning anywhere in the system.")


if __name__ == "__main__":
    main()
