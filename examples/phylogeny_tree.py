#!/usr/bin/env python3
"""Alignment-free phylogeny reconstruction (the paper's bioinformatics app).

Generates proteomes by evolving sequences along a random species tree,
computes the all-pairs composition-vector distance matrix with Rocket,
builds a neighbour-joining tree from it, and scores the reconstruction
against the true generating tree — a miniature of the paper's
"reconstruct the evolutionary tree of all reference bacteria proteomes
on UniProt in under 20 minutes".

Run:  python examples/phylogeny_tree.py
"""

import networkx as nx
import numpy as np

from repro import Rocket, RocketConfig
from repro.apps import BioinformaticsApplication
from repro.apps.bioinformatics import clade_sets, neighbor_joining, robinson_foulds
from repro.data import InMemoryStore, make_bioinformatics_dataset


def ascii_tree(tree: nx.Graph, root) -> str:
    """Render an unrooted tree as an indented hierarchy from ``root``."""
    lines = []

    def walk(node, parent, depth):
        label = node if isinstance(node, str) else "*"
        lines.append("  " * depth + label)
        for neighbor in sorted(tree.neighbors(node), key=str):
            if neighbor != parent:
                walk(neighbor, node, depth + 1)

    walk(root, None, 0)
    return "\n".join(lines)


def main() -> None:
    store = InMemoryStore()
    dataset = make_bioinformatics_dataset(
        store,
        n_species=12,
        n_proteins=8,
        protein_length=400,
        mutation_rate=0.05,
        seed=99,
    )
    print(
        f"generated {len(dataset.keys)} proteomes "
        f"({dataset.n_proteins} proteins x {dataset.protein_length} residues each, "
        f"{store.total_bytes() / 1e3:.1f} KB compressed FASTA)"
    )

    rocket = Rocket(
        BioinformaticsApplication(k=3),
        store,
        RocketConfig(n_devices=2, device_cache_slots=6, host_cache_slots=8, seed=3),
    )
    results = rocket.run(dataset.keys)
    print(f"\n{rocket.last_stats.summary()}")

    dist = results.to_dense()
    print(f"\ndistance matrix: min {dist[dist > 0].min():.4f}, max {dist.max():.4f}")

    tree = neighbor_joining(dist, dataset.keys)
    internal = [v for v in tree.nodes if not isinstance(v, str)]
    print("\nreconstructed neighbour-joining tree:")
    print(ascii_tree(tree, internal[0]))

    rf = robinson_foulds(tree, dataset.tree)
    max_rf = len(clade_sets(tree) | clade_sets(dataset.tree))
    print(f"\nRobinson-Foulds distance to the true tree: {rf} (of at most {max_rf})")
    assert rf <= max_rf / 2, "reconstruction carries too little signal"
    print("OK: the reconstructed phylogeny matches the generating tree closely.")


if __name__ == "__main__":
    main()
