#!/usr/bin/env python3
"""Running Rocket on real worker processes with a live distributed cache.

The sibling ``cluster_simulation.py`` studies multi-node *timing* on the
discrete-event simulator; this example executes an actual forensics
workload across OS processes — one per simulated cluster node — with
the paper's cross-node mechanisms running over real IPC:

1. host-cache misses consult the item's *mediator*, which forwards the
   request along its candidate list; the first holder ships the
   pre-processed PRNU pattern back over the transport (Section 4.1.3);
2. idle nodes steal pair blocks from remote deques through the
   coordinator (the global work-stealing tier of Section 4.2);
3. partial results stream back and are assembled into one result
   matrix, bit-identical to a single-process run.

Run:  python examples/cluster_runtime.py
"""

from repro import ClusterConfig, Rocket, RocketConfig
from repro.apps import ForensicsApplication
from repro.data.filestore import InMemoryStore
from repro.data.synthetic import make_forensics_dataset

N_IMAGES = 10
CONFIG = RocketConfig(
    n_devices=1, device_cache_slots=8, host_cache_slots=12, leaf_size=2, seed=11
)


def main() -> None:
    store = InMemoryStore()
    dataset = make_forensics_dataset(store, n_images=N_IMAGES, image_shape=(64, 64), seed=11)

    print("== threaded baseline (one process) ==")
    local = Rocket(ForensicsApplication(), store, CONFIG)
    baseline = local.run(dataset.keys)
    print(local.last_stats.summary())

    print("\n== cluster backend (2 worker processes, distributed cache live) ==")
    rocket = Rocket(
        ForensicsApplication(),
        store,
        CONFIG,
        backend="cluster",
        cluster=ClusterConfig(n_nodes=2, max_hops=2),
    )
    results = rocket.run(dataset.keys)
    stats = rocket.last_stats
    print(stats.summary())

    mismatches = sum(1 for a, b, v in baseline.items() if results.get(a, b) != v)
    print(f"\nresult parity vs threaded backend: {baseline.n_pairs - mismatches}"
          f"/{baseline.n_pairs} pairs identical")

    print("\ndistributed-cache outcomes over the real transport:")
    for outcome, pct in stats.hop_stats.percentages().items():
        print(f"  {outcome:<14} {pct:5.1f}%")
    for ns in stats.node_stats:
        pairs = sum(ns.pairs_per_device.values())
        print(f"node {ns.node_id}: {pairs} pairs, {ns.loads} loads, "
              f"host hit ratio {ns.host_counters.hit_ratio():.0%}")

    assert mismatches == 0, "cluster results diverged from the threaded backend"
    assert stats.hop_stats.requests > 0, "no distributed-cache requests were issued"
    verdict = "OK" if stats.hop_stats.total_hits >= 1 else "OK (no remote hits this run)"
    print(f"\n{verdict}: {stats.hop_stats.total_hits} payloads served from remote "
          f"host caches ({stats.bytes_over_wire / 1e6:.2f} MB over the wire), "
          f"{stats.remote_steals} blocks stolen across nodes.")


if __name__ == "__main__":
    main()
