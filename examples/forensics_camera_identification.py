#!/usr/bin/env python3
"""Common-source camera identification (the paper's forensics app).

Generates a synthetic image corpus from several "cameras" (each with a
fixed PRNU sensor-noise pattern), runs the all-pairs NCC comparison
through Rocket, and clusters the similarity matrix to recover which
images were taken by the same camera — the Netherlands Forensic
Institute use case the paper describes.

Run:  python examples/forensics_camera_identification.py
"""

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage
from scipy.spatial.distance import squareform

from repro import Rocket, RocketConfig
from repro.apps import ForensicsApplication
from repro.data import InMemoryStore, make_forensics_dataset


def main() -> None:
    store = InMemoryStore()
    dataset = make_forensics_dataset(
        store,
        n_images=20,
        n_cameras=4,
        image_shape=(96, 96),
        prnu_strength=0.06,
        seed=2024,
    )
    print(f"generated {len(dataset.keys)} images from {dataset.n_cameras} cameras "
          f"({store.total_bytes() / 1e6:.2f} MB of encoded files)")

    rocket = Rocket(
        ForensicsApplication(),
        store,
        RocketConfig(n_devices=2, device_cache_slots=8, host_cache_slots=12, seed=1),
    )
    results = rocket.run(dataset.keys)
    stats = rocket.last_stats
    print(f"\n{stats.summary()}")

    # Score separation.
    same = [v for a, b, v in results.items() if dataset.same_camera(a, b)]
    diff = [v for a, b, v in results.items() if not dataset.same_camera(a, b)]
    print(f"\nNCC same camera:      mean {np.mean(same):+.3f}  (min {min(same):+.3f})")
    print(f"NCC different camera: mean {np.mean(diff):+.3f}  (max {max(diff):+.3f})")

    # Cluster the similarity matrix into camera groups.
    distance = 1.0 - results.to_dense(fill=1.0)
    np.fill_diagonal(distance, 0.0)
    labels = fcluster(
        linkage(squareform(distance, checks=False), method="average"),
        t=dataset.n_cameras,
        criterion="maxclust",
    )
    correct = 0
    for cam in range(dataset.n_cameras):
        members = [lbl for key, lbl in zip(dataset.keys, labels) if dataset.camera_of[key] == cam]
        # All images of this camera in one cluster?
        if len(set(members)) == 1:
            correct += 1
        print(f"camera {cam}: cluster labels {sorted(set(members))} over {len(members)} images")

    print(f"\n{correct}/{dataset.n_cameras} cameras perfectly recovered")
    assert correct == dataset.n_cameras, "camera attribution failed"
    print("OK: every image attributed to its source camera.")


if __name__ == "__main__":
    main()
