#!/usr/bin/env python3
"""Cross-session memoization: edit two items, recompute only their pairs.

Sessions die; corpora don't.  With ``RocketConfig(store_dir=...)`` a
run leaves two things behind in the store directory: the preprocessed
payload of every item it loaded, and a memo journal of every pair it
computed (keyed on the items' content hashes).  A later session — a
different process, hours later — consults the store at submit time and
recomputes only the pairs whose items actually changed.

This example runs the same corpus through three *separate* sessions
sharing one store directory:

1. a cold session computes all 45 pairs and populates the store;
2. an identical session recomputes **zero** pairs — the whole job is
   served from the memo journal without touching the backend;
3. two items' bytes are edited; the third session recomputes exactly
   the 17 pairs touching them (2 x 8 cross pairs + 1 mutual pair) and
   serves the remaining 28 from the store.

Watch the ``store.memo`` counters from ``session.metrics()`` — they
are the recompute accounting.

Run:  python examples/memoized_corpus.py
"""

import tempfile

import numpy as np

from repro import AllPairs, Application, RocketConfig, RocketSession
from repro.data import InMemoryStore

N_ITEMS = 10


class SpectrumOverlap(Application[str, float]):
    """Cosine similarity between (normalised) frequency spectra."""

    def file_name(self, key: str) -> str:
        return f"{key}.f64"

    def parse(self, key: str, file_contents: bytes) -> np.ndarray:
        return np.frombuffer(file_contents, dtype=np.float64).copy()

    def preprocess(self, key: str, parsed: np.ndarray) -> np.ndarray:
        spectrum = np.abs(np.fft.rfft(parsed))
        norm = np.linalg.norm(spectrum)
        return spectrum / norm if norm > 0 else spectrum

    def compare(self, key_a, item_a, key_b, item_b) -> np.ndarray:
        return np.asarray(float(item_a @ item_b))

    def postprocess(self, key_a, key_b, raw_result) -> float:
        return float(raw_result)


def make_corpus() -> InMemoryStore:
    # Seeded per call: every "process" regenerates byte-identical items,
    # the way a real corpus re-read from disk would be.
    rng = np.random.default_rng(23)
    store = InMemoryStore()
    for i in range(N_ITEMS):
        base = np.sin(np.linspace(0, 6 * np.pi, 256) * (1 + i % 3))
        store.write(
            f"rec{i:02d}.f64", (base + 0.2 * rng.standard_normal(256)).tobytes()
        )
    return store


def run_session(store, store_dir, label: str):
    """A fresh session against the shared store; prints its accounting."""
    keys = [f"rec{i:02d}" for i in range(N_ITEMS)]
    config = RocketConfig(n_devices=2, seed=5, store_dir=store_dir)
    with RocketSession(SpectrumOverlap(), store, config) as session:
        results = session.submit(AllPairs(keys)).result()
        memo = session.metrics()["store"]["memo"]
        print(f"{label}:")
        print(f"  pairs recomputed : {memo['misses']}")
        print(f"  pairs from store : {memo['hits']}")
        print(f"  short-circuited  : {bool(memo['jobs_short_circuited'])}")
        return results, memo


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="rocket-store-") as store_dir:
        first, _ = run_session(make_corpus(), store_dir, "session 1 (cold)")

        # Session 2: nothing changed -- the backend never runs a job.
        second, rerun = run_session(make_corpus(), store_dir, "session 2 (unchanged)")
        assert sorted(first.items()) == sorted(second.items())
        assert rerun["misses"] == 0 and rerun["jobs_short_circuited"] == 1

        # Session 3: two items' bytes change on "disk".
        store = make_corpus()
        for i in (3, 7):
            old = np.frombuffer(store.read(f"rec{i:02d}.f64"), dtype=np.float64)
            store.write(f"rec{i:02d}.f64", (old * 1.5 + 0.1).tobytes())
        print(f"edited rec03 and rec07 ({N_ITEMS}-item corpus)")
        third, edited = run_session(store, store_dir, "session 3 (2 items edited)")

        # 2 x (N-2) cross pairs + the mutual pair of the two edits.
        expected = 2 * (N_ITEMS - 2) + 1
        assert edited["misses"] == expected
        baseline = {(a, b): v for a, b, v in first.items()}
        changed = sum(1 for a, b, v in third.items() if v != baseline[(a, b)])
        print(f"result values changed for {changed} pairs (rows of the edits)")
        print(
            f"memoization OK: rerun recomputed 0/45 pairs, "
            f"edit recomputed {edited['misses']}/45"
        )


if __name__ == "__main__":
    main()
