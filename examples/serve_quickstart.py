#!/usr/bin/env python3
"""Rocket-as-a-service: share one warm session between many clients.

A :class:`~repro.serve.RocketServer` wraps a live
:class:`~repro.RocketSession` and serves it over a TCP socket; clients
:func:`~repro.serve.connect` and get a ``ServedSession`` that mirrors
the in-process API — ``submit`` / ``result`` / ``stream`` — plus the
serving extras: tenant identities with fair-share weights, and jobs
that **survive disconnects** (reattach by job id from any connection).

The daemon normally runs as ``python -m repro serve ...`` in its own
process; here it is embedded in-process on an ephemeral port so the
example is self-contained.

Run:  python examples/serve_quickstart.py
"""

import numpy as np

from repro import Application, RocketConfig, RocketSession
from repro.core.workload import DeltaPairs
from repro.data import InMemoryStore
from repro.serve import RocketServer, TenantConfig, TenantDirectory, connect


class DotProduct(Application[str, float]):
    """Toy measure: the dot product of two stored vectors."""

    def file_name(self, key: str) -> str:
        return f"{key}.f64"

    def parse(self, key: str, file_contents: bytes) -> np.ndarray:
        return np.frombuffer(file_contents, dtype=np.float64).copy()

    def preprocess(self, key: str, parsed: np.ndarray) -> np.ndarray:
        return parsed / np.linalg.norm(parsed)

    def compare(self, key_a, item_a, key_b, item_b) -> np.ndarray:
        return np.asarray(float(item_a @ item_b))

    def postprocess(self, key_a, key_b, raw_result) -> float:
        return float(raw_result)


def main() -> None:
    rng = np.random.default_rng(7)
    store = InMemoryStore()
    keys = []
    for i in range(10):
        key = f"doc{i:02d}"
        store.write(f"{key}.f64", rng.standard_normal(64).tobytes())
        keys.append(key)

    # The daemon side: one warm FAIR session served on a socket.  The
    # tenant directory gives "analytics" a 3x fair-share weight over
    # walk-in tenants and caps everyone at 4 concurrently live jobs.
    session = RocketSession(
        DotProduct(), store, RocketConfig(n_devices=2, seed=7), policy="fair"
    )
    tenants = TenantDirectory(
        [TenantConfig("analytics", weight=3.0)],
        default=TenantConfig("default", max_active=4),
    )
    with RocketServer(session, keys, port=0, tenants=tenants) as server:
        print(f"daemon listening on {server.address} (backend={session.backend})")

        # Client 1: a weighted tenant runs all-pairs and streams.
        with connect(server.address, tenant="analytics") as client:
            print(f"tenant config from hello: {client.tenant}")
            handle = client.submit(client.keys(), priority=1.0)
            first = next(iter(handle.stream()))
            print(f"first streamed pair: {first[0]} vs {first[1]} = {first[2]:+.3f}")
            matrix = handle.result()
            print(f"all-pairs done: {matrix.expected_pairs} similarities")

        # Client 2 submits an incremental update ... and vanishes.
        with connect(server.address, tenant="ingest") as client:
            job_id = client.submit(DeltaPairs(keys[:8], keys[8:])).job_id
            print(f"ingest submitted {job_id}, then disconnected")

        # ... the job survives: a later connection of the same tenant
        # reattaches by id and collects the finished matrix.
        with connect(server.address, tenant="ingest") as client:
            revived = client.handle(job_id)
            delta = revived.result()
            print(f"reattached to {job_id}: {len(delta)} delta pairs computed")
            revived.ack()  # release the daemon's retained copy

            health = client.health()
            print(
                f"daemon health: {health['status']}, "
                f"{health['jobs']['retained']} retained job(s)"
            )

    assert matrix.is_complete() and delta.is_complete()
    assert len(delta) == DeltaPairs(keys[:8], keys[8:]).n_pairs
    print("daemon drained and closed — served round trip OK")


if __name__ == "__main__":
    main()
