#!/usr/bin/env python3
"""Profiling a cluster run into one merged Chrome/Perfetto trace.

Rocket's profiling flag (the paper's Fig. 6 / Fig. 8 instrumentation)
records per-resource task lanes in *every* process: the coordinator
traces scheduler admission and job lifetime, each node process traces
its IO/CPU/device pipeline stages and distributed-cache protocol
events.  Node buffers ride home on the existing stats messages and
``session.profile()`` merges them — rebased onto one session clock —
into a single trace where every OS process appears under its real pid.

The same trace is reachable three ways:

- ``session.profile().save(path)`` on a live session (this example);
- ``Rocket.run(keys, profile=path)`` for one-shot runs;
- ``rocket-repro run ... --profile path`` from the CLI.

Load the written JSON in https://ui.perfetto.dev or chrome://tracing.

Run:  python examples/profile_run.py
"""

import json
import os
import tempfile

from repro import ClusterConfig, Rocket, RocketConfig
from repro.apps import ForensicsApplication
from repro.data.filestore import InMemoryStore
from repro.data.synthetic import make_forensics_dataset
from repro.util.trace import lane_summary

N_IMAGES = 8
N_NODES = 2
CONFIG = RocketConfig(
    n_devices=1,
    device_cache_slots=8,
    host_cache_slots=12,
    leaf_size=2,
    seed=23,
    profiling=True,
)


def main() -> None:
    store = InMemoryStore()
    dataset = make_forensics_dataset(
        store, n_images=N_IMAGES, image_shape=(64, 64), seed=23
    )
    rocket = Rocket(
        ForensicsApplication(),
        store,
        CONFIG,
        backend="cluster",
        cluster=ClusterConfig(n_nodes=N_NODES),
    )

    out = os.environ.get("ROCKET_PROFILE_OUT") or os.path.join(
        tempfile.mkdtemp(prefix="rocket-profile-"), "profile.json"
    )

    with rocket.session() as session:
        handle = session.submit(dataset.keys)
        handle.result()
        job_id = handle.accounting.job_id

        snapshot = session.metrics()
        print("== session metrics (one job in) ==")
        print(json.dumps(snapshot["cache"], indent=2, sort_keys=True))

        trace = session.profile()
        trace.save(out)

    print(f"\n== merged profile: {trace.n_events} spans from "
          f"{len(trace.pids())} processes ==")
    for pid in trace.pids():
        events = trace.events_for_pid(pid)
        lanes = sorted({e.lane for e in events})
        print(f"  pid {pid:>7}  {trace.process_name(pid):<12} "
              f"{len(events):>4} spans on lanes {', '.join(lanes)}")

    # The file must be loadable and keep the per-process split intact.
    with open(out, encoding="utf-8") as fh:
        loaded = json.load(fh)
    span_pids = {e["pid"] for e in loaded["traceEvents"] if e["ph"] == "X"}
    assert span_pids == set(trace.pids()), "saved trace lost processes"
    assert len(span_pids) == N_NODES + 1, "expected coordinator + every node"
    assert any(
        e.get("args", {}).get("job_id") == job_id for e in loaded["traceEvents"]
    ), "spans lost their job-id tags"

    print("\n== coordinator lane summary ==")
    coord = [p for p in trace.pids() if trace.process_name(p) == "coordinator"][0]
    rec_like = _summary_of(trace.events_for_pid(coord))
    for lane, row in rec_like.items():
        print(f"  {lane:<12} busy {row['busy']:.3f}s over {int(row['tasks'])} tasks")

    print(f"\nOK: wrote {out} — open it in ui.perfetto.dev")


def _summary_of(events):
    """Lane summary over a plain event list (re-using the recorder's)."""
    from repro.util.trace import TraceRecorder

    rec = TraceRecorder()
    rec.extend(events)
    return lane_summary(rec)


if __name__ == "__main__":
    main()
