"""Unit tests for simulation resources: Resource, Store, links, servers."""

import pytest

from repro.sim.engine import Environment, SimulationError
from repro.sim.resources import (
    BandwidthLink,
    Mailbox,
    Resource,
    SerialServer,
    Store,
    coupled_transfer,
)


class TestResource:
    def test_grants_up_to_capacity(self):
        env = Environment()
        res = Resource(env, capacity=2)
        granted = []

        def proc(tag):
            yield res.request()
            granted.append((env.now, tag))
            yield env.timeout(10.0)
            res.release()

        for tag in "abc":
            env.process(proc(tag))
        env.run()
        # a and b granted immediately, c waits until one releases at t=10.
        assert granted == [(0.0, "a"), (0.0, "b"), (10.0, "c")]

    def test_fifo_grant_order(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def proc(tag):
            yield res.request()
            order.append(tag)
            yield env.timeout(1.0)
            res.release()

        for tag in "abcd":
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c", "d"]

    def test_release_idle_rejected(self):
        env = Environment()
        res = Resource(env, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_busy_time_accounting(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def proc():
            yield env.timeout(5.0)
            yield res.request()
            yield env.timeout(3.0)
            res.release()

        env.process(proc())
        env.run()
        assert res.busy_time() == pytest.approx(3.0)

    def test_using_releases_on_completion(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def proc():
            result = yield from res.using(lambda: env.timeout(2.0, value="ok"))
            return result

        p = env.process(proc())
        env.run()
        assert p.value == "ok"
        assert res.in_use == 0

    def test_queue_length(self):
        env = Environment()
        res = Resource(env, capacity=1)
        res.request()
        res.request()
        res.request()
        assert res.in_use == 1
        assert res.queue_length == 2


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        store.put("x")

        def proc():
            item = yield store.get()
            return item

        p = env.process(proc())
        env.run()
        assert p.value == "x"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)

        def consumer():
            item = yield store.get()
            return (item, env.now)

        def producer():
            yield env.timeout(4.0)
            store.put("late")

        p = env.process(consumer())
        env.process(producer())
        env.run()
        assert p.value == ("late", 4.0)

    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        for i in range(3):
            store.put(i)
        got = []

        def proc():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(proc())
        env.run()
        assert got == [0, 1, 2]

    def test_mailbox_owner(self):
        env = Environment()
        mbox = Mailbox(env, owner="node3")
        assert mbox.owner == "node3"
        assert "node3" in mbox.name


class TestBandwidthLink:
    def test_transfer_time_formula(self):
        env = Environment()
        link = BandwidthLink(env, bandwidth=100.0, latency=0.5)
        assert link.transfer_time(1000) == pytest.approx(0.5 + 10.0)

    def test_single_transfer_duration(self):
        env = Environment()
        link = BandwidthLink(env, bandwidth=1000.0)

        def proc():
            yield link.transfer(500)
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == pytest.approx(0.5)

    def test_fifo_serialisation(self):
        env = Environment()
        link = BandwidthLink(env, bandwidth=100.0)
        done = []

        def proc(tag, nbytes):
            yield link.transfer(nbytes)
            done.append((env.now, tag))

        env.process(proc("a", 100))  # 1s
        env.process(proc("b", 200))  # queued: finishes at 3s
        env.run()
        assert done == [(pytest.approx(1.0), "a"), (pytest.approx(3.0), "b")]

    def test_counters(self):
        env = Environment()
        link = BandwidthLink(env, bandwidth=10.0)
        link.transfer(50)
        link.transfer(30)
        env.run()
        assert link.bytes_transferred == 80
        assert link.transfer_count == 2
        assert link.busy_time() == pytest.approx(8.0)

    def test_negative_size_rejected(self):
        env = Environment()
        link = BandwidthLink(env, bandwidth=10.0)
        with pytest.raises(ValueError):
            link.transfer(-1)

    def test_invalid_bandwidth_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            BandwidthLink(env, bandwidth=0)

    def test_backlog(self):
        env = Environment()
        link = BandwidthLink(env, bandwidth=1.0)
        link.transfer(10)
        assert link.backlog == pytest.approx(10.0)


class TestSerialServer:
    def test_serialises_jobs(self):
        env = Environment()
        server = SerialServer(env)
        intervals = []

        def proc(duration):
            interval = yield server.execute(duration)
            intervals.append(interval)

        env.process(proc(2.0))
        env.process(proc(3.0))
        env.run()
        assert intervals == [(0.0, 2.0), (2.0, 5.0)]
        assert server.busy_time() == pytest.approx(5.0)
        assert server.jobs_executed == 2

    def test_negative_service_rejected(self):
        env = Environment()
        server = SerialServer(env)
        with pytest.raises(ValueError):
            server.execute(-0.1)

    def test_idle_gap_not_counted_busy(self):
        env = Environment()
        server = SerialServer(env)

        def proc():
            yield server.execute(1.0)
            yield env.timeout(10.0)
            interval = yield server.execute(1.0)
            return interval

        p = env.process(proc())
        env.run()
        assert p.value == (11.0, 12.0)
        assert server.busy_time() == pytest.approx(2.0)


class TestCoupledTransfer:
    def test_occupies_both_links(self):
        env = Environment()
        a = BandwidthLink(env, bandwidth=100.0)
        b = BandwidthLink(env, bandwidth=100.0)

        def proc():
            yield coupled_transfer(env, [a, b], 200)
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == pytest.approx(2.0)
        assert a.bytes_transferred == b.bytes_transferred == 200

    def test_starts_when_slowest_side_frees(self):
        env = Environment()
        a = BandwidthLink(env, bandwidth=100.0)
        b = BandwidthLink(env, bandwidth=100.0)
        a.transfer(300)  # a busy until t=3

        def proc():
            interval = yield coupled_transfer(env, [a, b], 100)
            return interval

        p = env.process(proc())
        env.run()
        start, end = p.value
        assert start == pytest.approx(3.0)
        assert end == pytest.approx(4.0)

    def test_uses_slowest_link_bandwidth(self):
        env = Environment()
        fast = BandwidthLink(env, bandwidth=1000.0)
        slow = BandwidthLink(env, bandwidth=10.0)

        def proc():
            yield coupled_transfer(env, [fast, slow], 100)
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == pytest.approx(10.0)

    def test_needs_links(self):
        env = Environment()
        with pytest.raises(ValueError):
            coupled_transfer(env, [], 10)
