"""Property-based invariants of the simulated Rocket runtime.

Hypothesis drives small random configurations through full simulated
runs and checks the invariants that must hold for *any* valid
configuration — the strongest guard against scheduler/cache bugs that
only appear under odd slot/node/job-limit combinations.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cluster import ClusterSpec
from repro.sim.rocketsim import RocketSimConfig, run_simulation
from repro.sim.workload import FORENSICS, MICROSCOPY, scaled_profile

configs = st.fixed_dictionaries(
    {
        "n_items": st.integers(8, 28),
        "n_nodes": st.integers(1, 5),
        "gpus_per_node": st.integers(1, 2),
        "device_slots": st.integers(2, 10),
        "host_slots": st.integers(3, 16),
        "concurrent_jobs": st.integers(1, 24),
        "leaf_size": st.integers(1, 6),
        "max_hops": st.integers(1, 3),
        "distributed": st.booleans(),
        "warm": st.booleans(),
        "cache_aware": st.booleans(),
        "seed": st.integers(0, 2**16),
    }
)


@given(cfg=configs)
@settings(max_examples=25, deadline=None)
def test_any_configuration_completes_with_sane_invariants(cfg):
    profile = scaled_profile(FORENSICS, cfg["n_items"])
    spec = ClusterSpec.homogeneous(cfg["n_nodes"], gpus_per_node=cfg["gpus_per_node"])
    config = RocketSimConfig(
        device_cache_slots=cfg["device_slots"],
        host_cache_slots=cfg["host_slots"],
        concurrent_jobs=cfg["concurrent_jobs"],
        leaf_size=cfg["leaf_size"],
        max_hops=cfg["max_hops"],
        distributed_cache=cfg["distributed"],
        warm_host_caches=cfg["warm"],
        cache_aware_stealing=cfg["cache_aware"],
        seed=cfg["seed"],
    )
    report = run_simulation(spec, profile, config, seed=cfg["seed"])

    # 1. Completeness: every pair computed exactly once.
    assert sum(report.pairs_per_gpu.values()) == profile.n_pairs
    # 2. Non-negative monotone clock.
    assert report.runtime > 0
    # 3. Load accounting: per-node loads sum to the total; without a
    #    warm start every item is loaded at least once somewhere.
    assert sum(report.per_node_loads) == report.total_loads
    if not cfg["warm"]:
        assert report.total_loads >= profile.n_items
    # 4. Storage traffic matches loads (files are 0.8-1.2x mean size).
    assert report.storage_bytes <= report.total_loads * profile.file_size * 1.25
    # 5. Efficiency is positive and bounded by a sane constant.
    assert 0 < report.efficiency < 1.6
    # 6. Distributed-cache accounting is internally consistent.
    hs = report.hop_stats
    assert hs.total_hits + hs.misses + hs.no_candidates == hs.requests
    if not cfg["distributed"] or cfg["n_nodes"] == 1:
        assert hs.requests == 0
    # 7. GPU busy time never exceeds the run time per GPU.
    for lane, busy in report.gpu_busy.items():
        assert busy["preprocess"] + busy["compare"] <= report.runtime * 1.0000001


@given(
    n_items=st.integers(6, 16),
    n_nodes=st.integers(1, 3),
    seed=st.integers(0, 1000),
)
@settings(max_examples=15, deadline=None)
def test_simulation_is_a_pure_function_of_its_inputs(n_items, n_nodes, seed):
    profile = scaled_profile(MICROSCOPY, n_items)
    spec = ClusterSpec.homogeneous(n_nodes)
    config = RocketSimConfig(seed=seed, device_cache_slots=6, host_cache_slots=8)
    a = run_simulation(spec, profile, config, seed=seed)
    b = run_simulation(spec, profile, config, seed=seed)
    assert a.runtime == b.runtime
    assert a.total_loads == b.total_loads
    assert a.pairs_per_gpu == b.pairs_per_gpu
    assert a.local_steals == b.local_steals
    assert a.remote_steals == b.remote_steals
    assert a.storage_bytes == b.storage_bytes
