"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import (
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    all_of,
    any_of,
)


class TestEvent:
    def test_starts_pending(self):
        env = Environment()
        evt = env.event()
        assert not evt.triggered
        assert not evt.processed

    def test_succeed_carries_value(self):
        env = Environment()
        evt = env.event()
        evt.succeed(42)
        assert evt.triggered
        assert evt.value == 42
        assert evt.ok

    def test_double_trigger_rejected(self):
        env = Environment()
        evt = env.event()
        evt.succeed()
        with pytest.raises(SimulationError):
            evt.succeed()

    def test_fail_requires_exception(self):
        env = Environment()
        evt = env.event()
        with pytest.raises(TypeError):
            evt.fail("not an exception")

    def test_value_before_trigger_raises(self):
        env = Environment()
        evt = env.event()
        with pytest.raises(SimulationError):
            _ = evt.value

    def test_callback_after_processing_runs_immediately(self):
        env = Environment()
        evt = env.event()
        evt.succeed("x")
        env.run()
        seen = []
        evt.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]


class TestTimeout:
    def test_advances_clock(self):
        env = Environment()

        def proc():
            yield env.timeout(5.0)
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == 5.0
        assert env.now == 5.0

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_timeout_value_passthrough(self):
        env = Environment()

        def proc():
            got = yield env.timeout(1.0, value="payload")
            return got

        p = env.process(proc())
        env.run()
        assert p.value == "payload"

    def test_zero_delay_fires_same_time(self):
        env = Environment()

        def proc():
            yield env.timeout(0.0)
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == 0.0


class TestProcess:
    def test_sequential_timeouts_accumulate(self):
        env = Environment()
        marks = []

        def proc():
            yield env.timeout(1.0)
            marks.append(env.now)
            yield env.timeout(2.0)
            marks.append(env.now)

        env.process(proc())
        env.run()
        assert marks == [1.0, 3.0]

    def test_join_returns_child_value(self):
        env = Environment()

        def child():
            yield env.timeout(3.0)
            return "done"

        def parent():
            result = yield env.process(child())
            return (result, env.now)

        p = env.process(parent())
        env.run()
        assert p.value == ("done", 3.0)

    def test_exception_propagates_to_joiner(self):
        env = Environment()

        def child():
            yield env.timeout(1.0)
            raise ValueError("boom")

        def parent():
            try:
                yield env.process(child())
            except ValueError as exc:
                return f"caught {exc}"

        p = env.process(parent())
        env.run()
        assert p.value == "caught boom"

    def test_unhandled_failure_surfaces_in_run(self):
        env = Environment()

        def child():
            yield env.timeout(1.0)
            raise ValueError("unhandled")

        env.process(child())
        with pytest.raises(ValueError, match="unhandled"):
            env.run()

    def test_yield_non_event_rejected(self):
        env = Environment()

        def proc():
            yield 42

        env.process(proc())
        with pytest.raises(SimulationError, match="must yield Events"):
            env.run()

    def test_needs_generator(self):
        env = Environment()
        with pytest.raises(TypeError):
            Process(env, lambda: None)  # type: ignore[arg-type]

    def test_interrupt_raises_inside_process(self):
        env = Environment()
        caught = []

        def victim():
            try:
                yield env.timeout(100.0)
            except Interrupt as i:
                caught.append((env.now, i.cause))

        def attacker(p):
            yield env.timeout(2.0)
            p.interrupt(cause="stop")

        p = env.process(victim())
        env.process(attacker(p))
        env.run()
        assert caught == [(2.0, "stop")]

    def test_interrupt_finished_process_rejected(self):
        env = Environment()

        def quick():
            yield env.timeout(1.0)

        p = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_is_alive_lifecycle(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)

        p = env.process(proc())
        assert p.is_alive
        env.run()
        assert not p.is_alive


class TestRun:
    def test_run_until_time_stops_clock(self):
        env = Environment()

        def proc():
            for _ in range(10):
                yield env.timeout(1.0)

        env.process(proc())
        env.run(until=4.5)
        assert env.now == 4.5

    def test_run_until_event_returns_value(self):
        env = Environment()

        def proc():
            yield env.timeout(2.0)
            return "finished"

        p = env.process(proc())
        assert env.run(until=p) == "finished"
        assert env.now == 2.0

    def test_run_until_past_time_rejected(self):
        env = Environment(initial_time=10.0)
        with pytest.raises(ValueError):
            env.run(until=5.0)

    def test_deadlock_detection(self):
        env = Environment()

        def waits_forever():
            yield env.event()  # never triggered

        p = env.process(waits_forever())
        with pytest.raises(SimulationError, match="deadlock"):
            env.run(until=p)

    def test_fifo_tie_breaking_is_deterministic(self):
        env = Environment()
        order = []

        def proc(tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in "abc":
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_run_until_already_failed_event_raises(self):
        """Regression: a processed-as-failed event must raise, not be
        returned as a value, when passed to ``run(until=...)`` again."""
        env = Environment()

        def failing():
            yield env.timeout(1.0)
            raise ValueError("boom")

        p = env.process(failing())
        with pytest.raises(ValueError, match="boom"):
            env.run()
        # The event is now processed and failed; awaiting it again used
        # to hand back the exception object as the "value".
        assert p.processed and not p.ok
        with pytest.raises(ValueError, match="boom"):
            env.run(until=p)

    def test_run_until_already_succeeded_event_still_returns_value(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)
            return 42

        p = env.process(proc())
        env.run()
        assert env.run(until=p) == 42

    def test_peek_empty_is_inf(self):
        env = Environment()
        assert env.peek() == float("inf")

    def test_step_empty_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.step()


class TestConditions:
    def test_all_of_collects_values(self):
        env = Environment()

        def proc():
            events = [env.timeout(d, value=d) for d in (3.0, 1.0, 2.0)]
            values = yield all_of(env, events)
            return (values, env.now)

        p = env.process(proc())
        env.run()
        assert p.value == ([3.0, 1.0, 2.0], 3.0)

    def test_any_of_returns_first(self):
        env = Environment()

        def proc():
            winner = yield any_of(env, [env.timeout(5.0, "slow"), env.timeout(1.0, "fast")])
            return (winner, env.now)

        p = env.process(proc())
        env.run()
        assert p.value == ("fast", 1.0)

    def test_all_of_empty_succeeds_immediately(self):
        env = Environment()

        def proc():
            value = yield all_of(env, [])
            return value

        p = env.process(proc())
        env.run()
        assert p.value == []

    def test_all_of_fails_on_constituent_failure(self):
        env = Environment()

        def failing():
            yield env.timeout(1.0)
            raise RuntimeError("child failed")

        def proc():
            try:
                yield all_of(env, [env.timeout(5.0), env.process(failing())])
            except RuntimeError as exc:
                return str(exc)

        p = env.process(proc())
        env.run()
        assert p.value == "child failed"


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build():
            env = Environment()
            log = []

            def worker(tag, delay):
                for _ in range(5):
                    yield env.timeout(delay)
                    log.append((env.now, tag))

            env.process(worker("a", 1.0))
            env.process(worker("b", 1.5))
            env.run()
            return log

        assert build() == build()
