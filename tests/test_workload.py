"""Unit tests for workload profiles and the faithful scaling law."""

import numpy as np
import pytest

from repro.sim.workload import (
    BIOINFORMATICS,
    FORENSICS,
    MICROSCOPY,
    PROFILES,
    WorkloadProfile,
    scaled_profile,
)


class TestProfiles:
    def test_table1_pair_counts(self):
        """The paper's Table 1 pair counts must be exact.

        Note: Table 1 lists 130,816 pairs for microscopy, which is
        C(512, 2), not C(256, 2) = 32,640 — inconsistent with the text's
        "256 particles".  We follow the text (n = 256); the discrepancy
        is recorded in EXPERIMENTS.md.
        """
        assert FORENSICS.n_pairs == 12_397_710
        assert BIOINFORMATICS.n_pairs == 3_123_750
        assert MICROSCOPY.n_pairs == 32_640

    def test_profiles_registry(self):
        assert set(PROFILES) == {"forensics", "bioinformatics", "microscopy"}

    def test_compute_vs_data_intensity(self):
        assert MICROSCOPY.is_compute_intensive
        assert not FORENSICS.is_compute_intensive
        assert not BIOINFORMATICS.is_compute_intensive

    def test_total_pairwise_bytes_is_quadratic(self):
        """Table 1's 'total data pair-wise processed' ~ 1 PB for forensics."""
        total = FORENSICS.total_pairwise_bytes
        assert 0.8e15 < total < 1.2e15

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile("x", 1, 1, 1, 1, (0, 0), (0, 0), (1, 0), (0, 0))
        with pytest.raises(ValueError):
            WorkloadProfile("x", 5, 1, 1, 1, (-1, 0), (0, 0), (1, 0), (0, 0))
        with pytest.raises(ValueError):
            WorkloadProfile("x", 5, 1, 1, 1, (0, 0), (0, 0), (1, 0), (0, 0), compare_distribution="weird")


class TestInstance:
    def test_per_item_times_fixed_across_calls(self):
        inst = FORENSICS.instantiate(seed=3)
        assert inst.parse_time(5) == inst.parse_time(5)
        assert inst.preprocess_time(7) == inst.preprocess_time(7)

    def test_deterministic_under_seed(self):
        a = MICROSCOPY.instantiate(seed=9)
        b = MICROSCOPY.instantiate(seed=9)
        assert np.array_equal(a.parse_times, b.parse_times)
        assert a.compare_time() == b.compare_time()

    def test_different_seeds_differ(self):
        a = MICROSCOPY.instantiate(seed=1)
        b = MICROSCOPY.instantiate(seed=2)
        assert not np.array_equal(a.parse_times, b.parse_times)

    def test_all_times_positive(self):
        inst = BIOINFORMATICS.instantiate(seed=0)
        assert (inst.parse_times > 0).all()
        assert (inst.preprocess_times > 0).all()
        assert all(inst.compare_time() > 0 for _ in range(100))

    def test_microscopy_has_no_preprocess(self):
        inst = MICROSCOPY.instantiate(seed=0)
        assert (inst.preprocess_times == 0).all()

    def test_lognormal_compare_moments(self):
        """Sampled irregular kernel times must match Table 1's mean/std."""
        inst = MICROSCOPY.instantiate(seed=4)
        samples = np.array([inst.compare_time() for _ in range(20_000)])
        assert samples.mean() == pytest.approx(MICROSCOPY.t_compare[0], rel=0.05)
        assert samples.std() == pytest.approx(MICROSCOPY.t_compare[1], rel=0.15)

    def test_normal_compare_tight(self):
        inst = FORENSICS.instantiate(seed=4)
        samples = np.array([inst.compare_time() for _ in range(2000)])
        cv = samples.std() / samples.mean()
        assert cv < 0.05  # regular kernel

    def test_file_sizes_near_mean(self):
        inst = FORENSICS.instantiate(seed=0)
        assert inst.file_sizes.mean() == pytest.approx(FORENSICS.file_size, rel=0.1)


class TestScaling:
    def test_plain_truncation(self):
        small = scaled_profile(FORENSICS, 100, scale_load_costs=False)
        assert small.n_items == 100
        assert small.t_parse == FORENSICS.t_parse

    def test_faithful_scaling_shrinks_load_costs(self):
        small = scaled_profile(FORENSICS, 498)  # s = 0.1
        assert small.n_items == 498
        assert small.t_parse[0] == pytest.approx(FORENSICS.t_parse[0] * 0.1)
        assert small.t_preprocess[0] == pytest.approx(FORENSICS.t_preprocess[0] * 0.1)
        assert small.file_size == pytest.approx(FORENSICS.file_size * 0.1)
        assert small.slot_size == pytest.approx(FORENSICS.slot_size * 0.1)
        # Comparison cost is NOT scaled (pair count already shrinks as n^2).
        assert small.t_compare == FORENSICS.t_compare

    def test_scaling_preserves_load_to_compare_ratio(self):
        """The invariant the scaling law exists for."""

        def ratio(p: WorkloadProfile) -> float:
            return (p.n_items * p.t_parse[0]) / (p.n_pairs * p.t_compare[0])

        small = scaled_profile(FORENSICS, 500)
        # (n-1) in the denominator makes the match approximate; ~0.5% here.
        assert ratio(small) == pytest.approx(ratio(FORENSICS), rel=0.02)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            scaled_profile(FORENSICS, 1)
