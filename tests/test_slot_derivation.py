"""Default cache sizing must reproduce Table 1's slot counts.

The paper derives its cache configuration from hardware capacities:
an 11 GB device cache on the 12 GB TitanX Maxwell and a 40 GB host
cache on the 64 GB DAS-5 nodes.  With no explicit slot counts in the
config, `RocketSim` derives them from (GPU memory, host cache bytes,
workload slot size) — and at full workload scale the derived numbers
must match the paper's Table 1.
"""

import pytest

from repro.sim.cluster import ClusterSpec
from repro.sim.rocketsim import RocketSim, RocketSimConfig
from repro.sim.workload import BIOINFORMATICS, FORENSICS, MICROSCOPY


def build_sim(profile):
    # Never run (the full workloads are far too large to simulate);
    # construction alone performs the slot derivation.
    return RocketSim(ClusterSpec.homogeneous(1), profile.instantiate(0), RocketSimConfig())


class TestDerivedSlotCounts:
    def test_forensics_table1_slots(self):
        sim = build_sim(FORENSICS)
        dev = sim.gpus[0].device_cache.n_slots
        host = sim.nodes[0].host_cache.n_slots
        # Paper: 291 device slots, 1050 host slots.
        assert dev == pytest.approx(291, rel=0.02)
        assert host == pytest.approx(1050, rel=0.02)

    def test_bioinformatics_table1_slots(self):
        sim = build_sim(BIOINFORMATICS)
        dev = sim.gpus[0].device_cache.n_slots
        host = sim.nodes[0].host_cache.n_slots
        # Paper: 81 device slots, 280 host slots.
        assert dev == pytest.approx(81, rel=0.1)
        assert host == pytest.approx(280, rel=0.05)

    def test_microscopy_capped_at_item_count(self):
        sim = build_sim(MICROSCOPY)
        # Paper: 256/256 — the tiny 6 KB slots would allow millions, but
        # no more slots than items are ever useful.
        assert sim.gpus[0].device_cache.n_slots == 256
        assert sim.nodes[0].host_cache.n_slots == 256

    def test_explicit_slots_override_derivation(self):
        sim = RocketSim(
            ClusterSpec.homogeneous(1),
            MICROSCOPY.instantiate(0),
            RocketSimConfig(device_cache_slots=7, host_cache_slots=9),
        )
        assert sim.gpus[0].device_cache.n_slots == 7
        assert sim.nodes[0].host_cache.n_slots == 9

    def test_admission_respects_derived_slots(self):
        sim = RocketSim(
            ClusterSpec.homogeneous(1),
            MICROSCOPY.instantiate(0),
            RocketSimConfig(device_cache_slots=5, host_cache_slots=9, concurrent_jobs=100),
        )
        # safe_job_limit: at most device_slots - 1 jobs in flight.
        assert sim.gpus[0].admission.limit == 4

    def test_small_gpu_big_slots_rejected(self):
        """A K20m (5 GB) cannot cache 145.8 MB bioinformatics slots 2x?

        It can (31 slots) — but a hypothetical giant slot must raise.
        """
        from dataclasses import replace

        giant = replace(BIOINFORMATICS, slot_size=4e9)
        with pytest.raises(ValueError, match="at least 2"):
            RocketSim(
                ClusterSpec.homogeneous(1, gpu="K20m"),
                giant.instantiate(0),
                RocketSimConfig(),
            )

    def test_per_gpu_derivation_follows_memory(self):
        """On a mixed node, each GPU's cache follows its own memory."""
        from repro.sim.cluster import ClusterSpec as CS
        from repro.sim.node import NodeSpec

        spec = CS(nodes=(NodeSpec(gpus=("GTX980", "TitanX Maxwell")),))
        sim = RocketSim(spec, FORENSICS.instantiate(0), RocketSimConfig())
        slots_980 = sim.gpus[0].device_cache.n_slots
        slots_titan = sim.gpus[1].device_cache.n_slots
        assert slots_980 < slots_titan  # 4 GB vs 12 GB
        assert slots_titan == pytest.approx(291, rel=0.02)
