"""Tests for the CLI, result persistence, and trace export."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.result import ResultMatrix, load_results, save_results
from repro.util.trace import TraceRecorder, to_chrome_trace


class TestResultPersistence:
    def test_roundtrip(self, tmp_path):
        rm = ResultMatrix(["a", "b", "c"])
        rm.set("a", "b", 1.5)
        rm.set("a", "c", -0.25)
        rm.set("b", "c", 3.0)
        path = tmp_path / "out.json"
        save_results(rm, path)
        back = load_results(path)
        assert back.keys == rm.keys
        for a, b, v in rm.items():
            assert back.get(a, b) == v

    def test_partial_matrix_roundtrip(self, tmp_path):
        rm = ResultMatrix(["a", "b", "c"])
        rm.set("a", "c", 7.0)
        path = tmp_path / "partial.json"
        save_results(rm, path)
        back = load_results(path)
        assert len(back) == 1
        assert back.get("a", "c") == 7.0

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            load_results(path)


class TestChromeTrace:
    def test_event_fields(self):
        rec = TraceRecorder()
        rec.record("GPU", "compare", 1.0, 2.5)
        rec.record("CPU", "parse", 0.0, 1.0)
        events = to_chrome_trace(rec)
        assert len(events) == 2
        gpu = next(e for e in events if e["args"]["lane"] == "GPU")
        assert gpu["name"] == "compare"
        assert gpu["ph"] == "X"
        assert gpu["ts"] == pytest.approx(1.0e6)
        assert gpu["dur"] == pytest.approx(1.5e6)

    def test_lanes_get_distinct_tids(self):
        rec = TraceRecorder()
        rec.record("A", "x", 0, 1)
        rec.record("B", "y", 0, 1)
        tids = {e["tid"] for e in to_chrome_trace(rec)}
        assert len(tids) == 2

    def test_json_serialisable(self):
        rec = TraceRecorder()
        rec.record("A", "x", 0, 1)
        json.dumps({"traceEvents": to_chrome_trace(rec)})


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_profiles_command(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "forensics" in out and "microscopy" in out
        assert "12397710" in out.replace(",", "")

    def test_simulate_command(self, capsys):
        rc = main(["simulate", "forensics", "--items", "24", "--nodes", "2",
                   "--device-slots", "6", "--host-slots", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pairs over 24 items" in out
        assert "R =" in out

    def test_simulate_writes_chrome_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        rc = main(["simulate", "microscopy", "--items", "8", "--nodes", "1",
                   "--device-slots", "4", "--host-slots", "6", "--trace", str(trace_path)])
        assert rc == 0
        doc = json.loads(trace_path.read_text())
        assert doc["traceEvents"]

    def test_demo_command_saves_results(self, tmp_path, capsys):
        out_path = tmp_path / "results.json"
        rc = main(["demo", "forensics", "--items", "6", "--save", str(out_path)])
        assert rc == 0
        back = load_results(out_path)
        assert back.is_complete()
        assert back.n_items == 6

    def test_demo_bioinformatics(self, capsys):
        assert main(["demo", "bioinformatics", "--items", "4"]) == 0
        assert "pairs" in capsys.readouterr().out

    def test_demo_microscopy(self, capsys):
        assert main(["demo", "microscopy", "--items", "4"]) == 0

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["demo", "astronomy"])
