"""Chaos suite for elastic membership and fault-tolerant recovery.

Kills real worker processes mid-job (SIGKILL — no cleanup, no
goodbye), joins and retires nodes on a live session, and races
cancellation against node death, asserting the invariant the tentpole
promises: a completed job's ResultMatrix is value-identical to an
undisturbed run, on both transports.
"""

import glob
import os
import signal
import time

import numpy as np
import pytest

from repro.cache.distributed import CandidateDirectory, mediator_of_live
from repro.core.api import Application
from repro.core.session import RunState
from repro.core.workload import AllPairs
from repro.data.filestore import InMemoryStore
from repro.runtime.cluster import ClusterConfig, ClusterRocketRuntime
from repro.runtime.localrocket import LocalRocketRuntime, RocketConfig
from repro.runtime.transport.shm import SharedMemoryFabric
from repro.scheduling.workstealing import VictimSelector, WorkerTopology
from repro.util.rng import RngFactory


def shm_segments():
    """Names of this transport's segments currently visible in /dev/shm."""
    if not os.path.isdir("/dev/shm"):
        pytest.skip("/dev/shm not available on this platform")
    return set(glob.glob(f"/dev/shm/{SharedMemoryFabric.SEGMENT_PREFIX}*"))


class SlowSumApp(Application[str, float]):
    """Deterministic toy app, slowed so kills land mid-job reliably."""

    compare_delay = 0.004

    def file_name(self, key):
        return f"{key}.bin"

    def parse(self, key, file_contents):
        return np.frombuffer(file_contents, dtype=np.float64).copy()

    def preprocess(self, key, parsed):
        return parsed * 2.0

    def compare(self, key_a, a, key_b, b):
        if self.compare_delay:
            time.sleep(self.compare_delay)
        return np.asarray(float(a.sum() * b.sum()))

    def postprocess(self, key_a, key_b, raw):
        return float(raw)


def make_store(n, floats=8):
    store = InMemoryStore()
    keys = []
    for i in range(n):
        key = f"item{i:02d}"
        store.write(f"{key}.bin", np.full(floats, float(i + 1)).tobytes())
        keys.append(key)
    return store, keys


CFG = dict(
    n_devices=2,
    device_cache_slots=8,
    host_cache_slots=16,
    leaf_size=2,
    seed=11,
    watchdog_seconds=120.0,
)


def cluster_cfg(transport, n_nodes=3, **kw):
    kw.setdefault("fetch_timeout", 15.0)
    kw.setdefault("steal_timeout", 5.0)
    return ClusterConfig(
        n_nodes=n_nodes, elastic=True, transport=transport, **kw
    )


def local_baseline(keys, store):
    app = SlowSumApp()
    app.compare_delay = 0.0
    runtime = LocalRocketRuntime(app, store, RocketConfig(**CFG))
    return runtime.run(keys)


def assert_parity(results, baseline):
    assert results.is_complete()
    for a, b, v in baseline.items():
        assert results.get(a, b) == v  # bit-identical: pure pipelines


# ----------------------------------------------------------------------
# Unit layer: the elastic building blocks


class TestElasticPrimitives:
    def test_mediator_of_live_spans_sparse_sets(self):
        live = [0, 2, 5]
        mediators = {mediator_of_live(i, live) for i in range(12)}
        assert mediators == set(live)  # every live node mediates
        # Deterministic: same inputs, same mediator, any call order.
        assert mediator_of_live(7, [5, 0, 2]) == mediator_of_live(7, live)

    def test_mediator_of_live_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError):
            mediator_of_live(0, [])
        with pytest.raises(ValueError):
            mediator_of_live(-1, [0, 1])

    def test_directory_evict_node_drops_every_candidate_entry(self):
        d = CandidateDirectory(max_candidates=3)
        d.lookup_and_record("a", 1)
        d.lookup_and_record("a", 2)
        d.lookup_and_record("b", 1)
        assert d.evict_node(1) == 2
        assert d.peek("a") == [2]
        assert d.peek("b") == []
        assert d.evict_node(1) == 0  # idempotent

    def test_victim_selector_exclude_filters_every_tier(self):
        topo = WorkerTopology.from_gpus_per_node([2, 2, 2])
        sel = VictimSelector(topo, RngFactory(3).get("t"))
        full = set(sel.candidates(0))
        drop = {2, 3}  # node 1's workers
        filtered = set(sel.candidates(0, exclude=drop))
        assert filtered == full - drop
        assert set(sel.candidates(0, exclude=full)) == set()

    def test_cluster_config_capacity(self):
        assert ClusterConfig(n_nodes=2).capacity == 2
        assert ClusterConfig(n_nodes=2, elastic=True).capacity == 6
        assert ClusterConfig(n_nodes=2, elastic=True, max_nodes=3).capacity == 3
        with pytest.raises(ValueError):
            ClusterConfig(n_nodes=4, max_nodes=2)

    def test_non_elastic_session_rejects_membership_calls(self):
        store, keys = make_store(4)
        runtime = ClusterRocketRuntime(
            SlowSumApp(), store, RocketConfig(**CFG),
            cluster=ClusterConfig(n_nodes=2),
        )
        with runtime.open_session() as session:
            with pytest.raises(RuntimeError, match="elastic"):
                session.add_node()
            with pytest.raises(RuntimeError, match="elastic"):
                session.retire_node()


# ----------------------------------------------------------------------
# Chaos layer: real process kills on live sessions


class TestNodeLossRecovery:
    @pytest.mark.parametrize("transport", ["queue", "shm"])
    def test_kill_one_node_mid_job_preserves_results(self, transport):
        store, keys = make_store(14)
        baseline = local_baseline(keys, store)
        before = shm_segments() if transport == "shm" else None

        runtime = ClusterRocketRuntime(
            SlowSumApp(), store, RocketConfig(**CFG),
            cluster=cluster_cfg(transport),
        )
        session = runtime.open_session()
        try:
            handle = session.submit(AllPairs(keys))
            time.sleep(0.15)
            os.kill(session._procs[1].pid, signal.SIGKILL)
            results = handle.result()
            assert_parity(results, baseline)
            assert 1 not in session._live
            # The session survives: a follow-up job runs on the others.
            again = session.submit(AllPairs(keys)).result()
            assert_parity(again, baseline)
            if transport == "shm":
                # The dead node's segment is unlinked at forgiveness
                # time, not held until close.
                time.sleep(0.2)
                leaked = {s for s in shm_segments() if s.endswith("_n1")}
                assert not leaked
        finally:
            session.close()
        if transport == "shm":
            assert shm_segments() == before  # nothing leaks past close

    def test_kill_is_accounted_on_the_job(self):
        store, keys = make_store(14)
        baseline = local_baseline(keys, store)
        runtime = ClusterRocketRuntime(
            SlowSumApp(), store, RocketConfig(**CFG),
            cluster=cluster_cfg("queue"),
        )
        with runtime.open_session() as session:
            handle = session.submit(AllPairs(keys))
            time.sleep(0.15)
            os.kill(session._procs[2].pid, signal.SIGKILL)
            results = handle.result()
            assert_parity(results, baseline)
            acct = handle.accounting
            assert acct.nodes_lost == 1
            assert acct.pairs_recovered >= 0
            record = acct.to_dict()
            assert record["nodes_lost"] == 1

    def test_losing_every_node_is_still_fatal(self):
        store, keys = make_store(10)
        runtime = ClusterRocketRuntime(
            SlowSumApp(), store, RocketConfig(**CFG),
            cluster=cluster_cfg("queue", n_nodes=2),
        )
        session = runtime.open_session()
        try:
            handle = session.submit(AllPairs(keys))
            time.sleep(0.1)
            for proc in list(session._procs):
                os.kill(proc.pid, signal.SIGKILL)
            with pytest.raises(RuntimeError):
                handle.result()
        finally:
            session.close()

    def test_cancel_racing_a_node_death_resolves_cleanly(self):
        store, keys = make_store(14)
        runtime = ClusterRocketRuntime(
            SlowSumApp(), store, RocketConfig(**CFG),
            cluster=cluster_cfg("queue"),
        )
        with runtime.open_session() as session:
            handle = session.submit(AllPairs(keys))
            time.sleep(0.1)
            os.kill(session._procs[1].pid, signal.SIGKILL)
            handle.cancel()
            assert handle.wait(timeout=60.0)
            assert handle.state in (RunState.CANCELLED, RunState.DONE)
            # The survivors keep serving.
            baseline = local_baseline(keys, store)
            assert_parity(session.submit(AllPairs(keys)).result(), baseline)


class TestElasticMembership:
    @pytest.mark.parametrize("transport", ["queue", "shm"])
    def test_join_mid_job_participates(self, transport):
        store, keys = make_store(14)
        baseline = local_baseline(keys, store)
        runtime = ClusterRocketRuntime(
            SlowSumApp(), store, RocketConfig(**CFG),
            cluster=cluster_cfg(transport, n_nodes=2),
        )
        with runtime.open_session() as session:
            handle = session.submit(AllPairs(keys))
            time.sleep(0.1)
            new = session.add_node()
            assert new == 2
            assert new in session._live
            results = handle.result()
            assert_parity(results, baseline)
            # The joiner was enrolled as a participant of the running
            # job (its stats report is part of the job's aggregate).
            assert handle.stats.n_nodes == 3
            # And it serves jobs submitted after the join.
            h2 = session.submit(AllPairs(keys))
            assert_parity(h2.result(), baseline)
            assert h2.stats.n_nodes == 3

    def test_add_node_beyond_capacity_fails_cleanly(self):
        store, keys = make_store(6)
        runtime = ClusterRocketRuntime(
            SlowSumApp(), store, RocketConfig(**CFG),
            cluster=cluster_cfg("queue", n_nodes=2, max_nodes=3),
        )
        with runtime.open_session() as session:
            assert session.add_node() == 2
            with pytest.raises(RuntimeError, match="capacity"):
                session.add_node()
            baseline = local_baseline(keys, store)
            assert_parity(session.submit(AllPairs(keys)).result(), baseline)

    @pytest.mark.parametrize("transport", ["queue", "shm"])
    def test_retire_with_drain_loses_no_pairs(self, transport):
        store, keys = make_store(14)
        baseline = local_baseline(keys, store)
        runtime = ClusterRocketRuntime(
            SlowSumApp(), store, RocketConfig(**CFG),
            cluster=cluster_cfg(transport),
        )
        with runtime.open_session() as session:
            handle = session.submit(AllPairs(keys))
            time.sleep(0.1)
            gone = session.retire_node()
            assert gone == 2
            assert gone not in session._live
            assert not session._procs[gone].is_alive()
            results = handle.result()
            assert_parity(results, baseline)
            # Voluntary departure is not a "lost" node.
            assert handle.accounting.nodes_lost == 0
            assert_parity(session.submit(AllPairs(keys)).result(), baseline)

    def test_retiring_the_last_node_is_refused(self):
        store, keys = make_store(4)
        runtime = ClusterRocketRuntime(
            SlowSumApp(), store, RocketConfig(**CFG),
            cluster=cluster_cfg("queue", n_nodes=2),
        )
        with runtime.open_session() as session:
            session.retire_node(0)
            with pytest.raises(RuntimeError, match="last live node"):
                session.retire_node()

    def test_churn_kill_and_join_same_job(self):
        store, keys = make_store(14)
        baseline = local_baseline(keys, store)
        runtime = ClusterRocketRuntime(
            SlowSumApp(), store, RocketConfig(**CFG),
            cluster=cluster_cfg("queue", n_nodes=2),
        )
        with runtime.open_session() as session:
            handle = session.submit(AllPairs(keys))
            time.sleep(0.1)
            new = session.add_node()
            os.kill(session._procs[0].pid, signal.SIGKILL)
            results = handle.result()
            assert_parity(results, baseline)
            assert session._live == {1, new}


# ----------------------------------------------------------------------
# close() vs QUEUED handles (hang regression, both backends)


class TestCloseResolvesQueuedHandles:
    def test_cluster_close_resolves_queued_jobs(self):
        store, keys = make_store(10)
        runtime = ClusterRocketRuntime(
            SlowSumApp(), store, RocketConfig(**CFG),
            cluster=cluster_cfg("queue", n_nodes=2),
        )
        session = runtime.open_session()  # FIFO: later jobs queue
        handles = [session.submit(AllPairs(keys)) for _ in range(4)]
        session.close()
        for handle in handles:
            assert handle.wait(timeout=30.0)  # must never hang
            assert handle.state in (
                RunState.CANCELLED, RunState.DONE, RunState.FAILED,
            )

    def test_local_close_resolves_queued_jobs(self):
        store, keys = make_store(10)
        app = SlowSumApp()
        runtime = LocalRocketRuntime(app, store, RocketConfig(**CFG))
        session = runtime.open_session()
        handles = [session.submit(AllPairs(keys)) for _ in range(4)]
        session.close()
        for handle in handles:
            assert handle.wait(timeout=30.0)
            assert handle.state in (
                RunState.CANCELLED, RunState.DONE, RunState.FAILED,
            )
