"""Smoke tests: every shipped example must run to completion.

Each example asserts its own domain-level success criterion (camera
recovery, tree distance, registration quality, …), so executing them is
a meaningful end-to-end check, not just an import test.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert "OK" in out or "work" in out  # every example prints a verdict


def test_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 4  # quickstart + at least three domain examples
