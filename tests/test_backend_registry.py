"""Error-path coverage for the execution-backend registry.

The happy paths (running workloads through ``Rocket(backend=...)``)
live in ``test_cluster_runtime.py``; this file pins down the registry's
failure modes — unknown names, duplicate registration, option
validation — and the data-plane shorthands the cluster factory accepts.
"""

import numpy as np
import pytest

from repro.core.api import Application
from repro.core.rocket import Rocket
from repro.data.filestore import InMemoryStore
from repro.runtime.backend import (
    RocketBackend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.runtime.cluster import ClusterConfig
from repro.runtime.localrocket import RocketConfig


class NoopApp(Application):
    def file_name(self, key):
        return f"{key}.bin"

    def parse(self, key, file_contents):
        return np.frombuffer(file_contents, dtype=np.float64).copy()

    def preprocess(self, key, parsed):
        return parsed

    def compare(self, key_a, a, key_b, b):
        return np.asarray(0.0)

    def postprocess(self, key_a, key_b, raw):
        return float(raw)


@pytest.fixture
def app_and_store():
    store = InMemoryStore()
    store.write("a.bin", np.zeros(4).tobytes())
    return NoopApp(), store


class TestRegistryErrorPaths:
    def test_unknown_backend_lists_available(self, app_and_store):
        app, store = app_and_store
        with pytest.raises(ValueError, match="unknown backend 'quantum'") as exc:
            create_backend("quantum", app, store)
        # The message tells the user what *is* available.
        for name in available_backends():
            assert name in str(exc.value)

    def test_rocket_surfaces_the_same_message(self, app_and_store):
        app, store = app_and_store
        with pytest.raises(ValueError, match="unknown backend"):
            Rocket(app, store, backend="quantum")

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="'local' is already registered"):
            register_backend("local", lambda *a, **k: None)

    def test_overwrite_allows_replacement(self, app_and_store):
        app, store = app_and_store

        class DummyBackend(RocketBackend):
            name = "dummy-registry-test"

            def run(self, keys, pair_filter=None):
                raise NotImplementedError

        factory = lambda app, store, config=None, **o: DummyBackend()  # noqa: E731
        register_backend("dummy-registry-test", factory)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_backend("dummy-registry-test", factory)
            register_backend("dummy-registry-test", factory, overwrite=True)
            assert isinstance(
                create_backend("dummy-registry-test", app, store), DummyBackend
            )
        finally:
            from repro.runtime import backend as backend_module

            backend_module._FACTORIES.pop("dummy-registry-test", None)

    def test_local_backend_rejects_unknown_options(self, app_and_store):
        app, store = app_and_store
        with pytest.raises(TypeError, match="unknown local backend options.*n_nodes"):
            create_backend("local", app, store, n_nodes=4)

    def test_cluster_backend_rejects_unknown_options(self, app_and_store):
        app, store = app_and_store
        with pytest.raises(TypeError, match="unknown cluster backend options.*warp"):
            create_backend("cluster", app, store, warp_factor=9)

    def test_conflicting_node_counts_raise(self, app_and_store):
        app, store = app_and_store
        with pytest.raises(ValueError, match="conflicting node counts"):
            create_backend(
                "cluster", app, store, RocketConfig(),
                n_nodes=3, cluster=ClusterConfig(n_nodes=2),
            )


class TestClusterDataPlaneOptions:
    def test_transport_shorthand_sets_cluster_config(self, app_and_store):
        app, store = app_and_store
        backend = create_backend(
            "cluster", app, store, transport="shm", result_batch=7, n_nodes=3
        )
        assert backend.cluster.transport == "shm"
        assert backend.cluster.result_batch == 7
        assert backend.cluster.n_nodes == 3

    def test_transport_overrides_explicit_cluster_config(self, app_and_store):
        app, store = app_and_store
        backend = create_backend(
            "cluster", app, store,
            cluster=ClusterConfig(n_nodes=2, transport="queue"), transport="shm",
        )
        assert backend.cluster.transport == "shm"

    def test_unknown_transport_rejected_at_construction(self, app_and_store):
        app, store = app_and_store
        with pytest.raises(ValueError, match="unknown transport 'telegraph'"):
            Rocket(app, store, backend="cluster", transport="telegraph")
