"""Unit tests for the pluggable data plane.

Covers the pieces below the cluster protocol: the
:class:`~repro.core.buffers.BufferPool` allocator, the shared-memory
payload plane (descriptor round-trips, slot release, inline fallback,
segment lifecycle), the :class:`~repro.runtime.transport.ResultBatcher`,
and the transport registry — all in-process, no worker processes.
"""

import multiprocessing

import numpy as np
import pytest

from repro.core.buffers import BufferPool
from repro.runtime.cluster import ClusterConfig
from repro.runtime.transport import (
    QueueFabric,
    ResultBatcher,
    ShmDescriptor,
    available_transports,
    create_fabric,
    register_transport,
)
from repro.runtime.transport.shm import SharedMemoryFabric


# ----------------------------------------------------------------------
# BufferPool


class TestBufferPool:
    def test_alloc_free_roundtrip(self):
        pool = BufferPool(1024, alignment=64)
        off = pool.alloc(100)
        assert off == 0
        assert pool.used_bytes == 128  # rounded to alignment
        pool.free(off)
        assert pool.used_bytes == 0
        assert pool.free_bytes == 1024

    def test_offsets_are_aligned_and_disjoint(self):
        pool = BufferPool(4096, alignment=64)
        offsets = [pool.alloc(65) for _ in range(8)]
        assert all(off is not None and off % 64 == 0 for off in offsets)
        assert len(set(offsets)) == 8
        # 65 bytes rounds to 128: blocks must not overlap.
        assert sorted(offsets) == [i * 128 for i in range(8)]

    def test_zero_byte_alloc_keeps_alignment(self):
        pool = BufferPool(1024, alignment=64)
        a = pool.alloc(0)
        b = pool.alloc(100)
        assert a == 0 and b == 64  # empty block still occupies one unit
        assert b % 64 == 0

    def test_exhaustion_returns_none_not_error(self):
        pool = BufferPool(256)
        assert pool.alloc(256) == 0
        assert pool.alloc(1) is None
        assert pool.alloc_failures == 1

    def test_free_coalesces_neighbours(self):
        pool = BufferPool(3 * 64)
        a, b, c = pool.alloc(64), pool.alloc(64), pool.alloc(64)
        # Free in an order that needs both next- and prev-coalescing.
        pool.free(b)
        pool.free(a)
        pool.free(c)
        assert pool.free_bytes == 3 * 64
        assert pool.alloc(3 * 64) == 0  # one contiguous block again

    def test_double_free_raises(self):
        pool = BufferPool(256)
        off = pool.alloc(10)
        pool.free(off)
        with pytest.raises(ValueError, match="not allocated"):
            pool.free(off)

    def test_high_water_tracks_peak(self):
        pool = BufferPool(1024)
        a = pool.alloc(128)
        b = pool.alloc(128)
        pool.free(a)
        pool.free(b)
        assert pool.high_water == 256
        assert pool.alloc_count == 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BufferPool(0)
        with pytest.raises(ValueError):
            BufferPool(128, alignment=48)
        pool = BufferPool(128)
        with pytest.raises(ValueError):
            pool.alloc(-1)


# ----------------------------------------------------------------------
# Shared-memory payload plane (in-process: two endpoints, one fabric)


def make_shm_fabric(n_nodes=2, segment_bytes=65536):
    ctx = multiprocessing.get_context("fork")
    cluster = ClusterConfig(
        n_nodes=n_nodes, transport="shm", shm_segment_bytes=segment_bytes
    )
    return SharedMemoryFabric(ctx, cluster)


class TestSharedMemoryPayloadPlane:
    def test_descriptor_roundtrip_between_endpoints(self):
        fabric = make_shm_fabric()
        try:
            provider = fabric.endpoint(0)
            requester = fabric.endpoint(1)
            payload = np.arange(512, dtype=np.float64).reshape(32, 16)

            packed = provider.pack_payload(payload)
            assert isinstance(packed, ShmDescriptor)
            assert packed.owner == 0 and packed.shape == (32, 16)
            # The wire carries a descriptor, not the 4 KB payload.
            assert provider.wire_bytes(packed) < 512
            assert len(provider.pool) == 1

            sent = []
            got = requester.unpack_payload(packed, lambda n, m: sent.append((n, m)))
            assert np.array_equal(got, payload)
            assert got.flags.owndata  # a private copy, safe after slot reuse

            # The requester released the slot back to the owner.
            assert sent == [(0, ("pfree", packed.offset))]
            provider.handle_free(sent[0][1])
            assert len(provider.pool) == 0
            provider.close()
            requester.close()
        finally:
            fabric.shutdown()

    def test_release_payload_frees_without_copying(self):
        fabric = make_shm_fabric()
        try:
            provider = fabric.endpoint(0)
            requester = fabric.endpoint(1)
            packed = provider.pack_payload(np.ones(256))
            sent = []
            requester.release_payload(packed, lambda n, m: sent.append((n, m)))
            assert sent == [(0, ("pfree", packed.offset))]
            provider.handle_free(sent[0][1])
            assert len(provider.pool) == 0
            # Inline payloads release as a no-op.
            requester.release_payload(np.ones(4), lambda n, m: sent.append((n, m)))
            assert len(sent) == 1
            provider.close()
            requester.close()
        finally:
            fabric.shutdown()

    def test_self_unpack_frees_directly(self):
        fabric = make_shm_fabric()
        try:
            ep = fabric.endpoint(0)
            packed = ep.pack_payload(np.ones(16))
            sent = []
            got = ep.unpack_payload(packed, lambda n, m: sent.append((n, m)))
            assert np.array_equal(got, np.ones(16))
            assert sent == []  # own segment: freed without a message
            assert len(ep.pool) == 0
            ep.close()
        finally:
            fabric.shutdown()

    def test_pool_exhaustion_falls_back_to_inline(self):
        fabric = make_shm_fabric(segment_bytes=65536)
        try:
            ep = fabric.endpoint(0)
            big = np.zeros(65536, dtype=np.uint8)  # fills the whole segment
            first = ep.pack_payload(big)
            assert isinstance(first, ShmDescriptor)
            second = ep.pack_payload(np.ones(8))
            assert isinstance(second, np.ndarray)  # inline fallback
            assert ep.wire_bytes(second) == second.nbytes
            # Inline payloads unpack as themselves, no release message.
            sent = []
            assert ep.unpack_payload(second, lambda n, m: sent.append(m)) is second
            assert sent == []
            ep.close()
        finally:
            fabric.shutdown()

    def test_object_dtype_ships_inline(self):
        fabric = make_shm_fabric()
        try:
            ep = fabric.endpoint(0)
            arr = np.array([{"a": 1}, None], dtype=object)
            assert ep.pack_payload(arr) is arr
            ep.close()
        finally:
            fabric.shutdown()

    def test_read_only_views_pack_fine(self):
        fabric = make_shm_fabric()
        try:
            ep = fabric.endpoint(0)
            base = np.arange(64, dtype=np.float32)
            view = base.view()
            view.setflags(write=False)  # what host_payload_view serves
            packed = ep.pack_payload(view)
            assert isinstance(packed, ShmDescriptor)
            got = ep.unpack_payload(packed, lambda n, m: None)
            assert np.array_equal(got, base)
            ep.close()
        finally:
            fabric.shutdown()

    def test_shutdown_unlinks_segments_idempotently(self):
        from multiprocessing import shared_memory

        fabric = make_shm_fabric()
        names = list(fabric.segment_names)
        fabric.shutdown()
        fabric.shutdown()  # idempotent
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


# ----------------------------------------------------------------------
# Result batching


class TestResultBatcher:
    def test_full_batches_ship_immediately(self):
        out = []
        batcher = ResultBatcher(out.append, node_id=3, batch_size=4)
        for k in range(9):
            batcher.emit(k, k + 1, float(k))
        assert len(out) == 2  # two full batches, one pair still buffered
        kind, node, block = out[0]
        assert kind == "results" and node == 3 and len(block) == 4
        assert block[0] == (0, 1, 0.0)
        batcher.flush()
        assert len(out) == 3 and len(out[2][2]) == 1
        assert batcher.results_sent == 9 and batcher.batches_sent == 3

    def test_maybe_flush_respects_age(self):
        out = []
        batcher = ResultBatcher(out.append, node_id=0, batch_size=100, max_delay=60.0)
        batcher.emit(0, 1, 1.0)
        batcher.maybe_flush()  # far too young
        assert out == []
        batcher.max_delay = 0.0
        batcher.maybe_flush()
        assert len(out) == 1

    def test_batch_size_one_matches_legacy_granularity(self):
        out = []
        batcher = ResultBatcher(out.append, node_id=0, batch_size=1)
        batcher.emit(1, 2, 0.5)
        batcher.emit(3, 4, 0.7)
        assert [len(b[2]) for b in out] == [1, 1]

    def test_flush_on_empty_buffer_sends_nothing(self):
        out = []
        batcher = ResultBatcher(out.append, node_id=0, batch_size=2)
        batcher.flush()
        batcher.maybe_flush()
        assert out == []

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            ResultBatcher(lambda m: None, node_id=0, batch_size=0)


# ----------------------------------------------------------------------
# Registry / config plumbing


class TestTransportRegistry:
    def test_builtin_transports_registered(self):
        names = available_transports()
        assert "queue" in names and "shm" in names

    def test_unknown_transport_raises_with_choices(self):
        ctx = multiprocessing.get_context("fork")
        with pytest.raises(ValueError, match="unknown transport 'carrier-pigeon'"):
            create_fabric("carrier-pigeon", ctx, ClusterConfig())

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_transport("queue", QueueFabric)

    def test_cluster_config_validates_data_plane_fields(self):
        with pytest.raises(ValueError, match="result_batch"):
            ClusterConfig(result_batch=0)
        with pytest.raises(ValueError, match="shm_segment_bytes"):
            ClusterConfig(shm_segment_bytes=1024)

    def test_queue_fabric_endpoint_roundtrip(self):
        ctx = multiprocessing.get_context("fork")
        fabric = QueueFabric(ctx, ClusterConfig(n_nodes=2))
        try:
            ep = fabric.endpoint(1)
            fabric.send_node(1, ("stop", False))
            assert ep.recv(timeout=2.0) == ("stop", False)
            ep.send_coordinator(("error", 1, "x"))
            assert fabric.recv_coordinator(timeout=2.0) == ("error", 1, "x")
            assert fabric.recv_coordinator(timeout=0.01) is None
        finally:
            fabric.shutdown()
