"""End-to-end tests: each paper application through the full Rocket stack.

These are the strongest correctness checks in the suite: synthetic data
with known ground truth goes through file encoding, the threaded runtime
(caches, stealing, admission), the application kernels, and the
downstream analysis — and the ground truth must come back out.
"""

import numpy as np
import pytest
from scipy.cluster.hierarchy import fcluster, linkage

from repro.apps import BioinformaticsApplication, ForensicsApplication, MicroscopyApplication
from repro.apps.bioinformatics.phylogeny import neighbor_joining, robinson_foulds
from repro.core.rocket import Rocket
from repro.data.filestore import InMemoryStore, ThrottledStore
from repro.runtime.localrocket import RocketConfig
from repro.data.synthetic import (
    make_bioinformatics_dataset,
    make_forensics_dataset,
    make_microscopy_dataset,
)


@pytest.fixture(scope="module")
def forensics_run():
    store = InMemoryStore()
    ds = make_forensics_dataset(
        store, n_images=16, n_cameras=4, image_shape=(64, 64), seed=11
    )
    rocket = Rocket(
        ForensicsApplication(),
        store,
        RocketConfig(n_devices=2, device_cache_slots=6, host_cache_slots=10, seed=1),
    )
    results = rocket.run(ds.keys)
    return ds, results, rocket.last_stats


class TestForensicsEndToEnd:
    def test_complete(self, forensics_run):
        _, results, _ = forensics_run
        assert results.is_complete()

    def test_same_camera_scores_separate_cleanly(self, forensics_run):
        ds, results, _ = forensics_run
        same, diff = [], []
        for a, b, score in results.items():
            (same if ds.same_camera(a, b) else diff).append(score)
        assert np.mean(same) > 0.25
        assert abs(np.mean(diff)) < 0.05
        # Perfect separation: the worst same-camera score beats the best
        # different-camera score.
        assert min(same) > max(diff)

    def test_threshold_classification_accuracy(self, forensics_run):
        ds, results, _ = forensics_run
        threshold = 0.15
        correct = sum(
            (score > threshold) == ds.same_camera(a, b) for a, b, score in results.items()
        )
        assert correct / results.n_pairs == 1.0

    def test_cache_reuse_happened(self, forensics_run):
        _, _, stats = forensics_run
        assert stats.device_counters.hits > 0
        assert stats.reuse_factor < stats.n_items  # far better than naive


class TestBioinformaticsEndToEnd:
    @pytest.fixture(scope="class")
    def bio_run(self):
        store = InMemoryStore()
        ds = make_bioinformatics_dataset(
            store, n_species=10, n_proteins=6, protein_length=400, mutation_rate=0.05, seed=21
        )
        rocket = Rocket(
            BioinformaticsApplication(k=3),
            store,
            RocketConfig(n_devices=2, device_cache_slots=5, host_cache_slots=8, seed=2),
        )
        results = rocket.run(ds.keys)
        return ds, results

    def test_distance_matrix_properties(self, bio_run):
        _, results = bio_run
        dense = results.to_dense()
        assert (dense >= -1e-9).all()
        assert (dense <= 1.0 + 1e-9).all()
        assert np.allclose(dense, dense.T)

    def test_reconstructed_tree_close_to_truth(self, bio_run):
        ds, results = bio_run
        tree = neighbor_joining(results.to_dense(), list(results.keys))
        true_tree = ds.tree
        rf = robinson_foulds(tree, true_tree)
        # Perfect recovery would be 0; with short synthetic proteomes a
        # small disagreement is acceptable, but the tree must carry far
        # more signal than a random topology (~2*(n-3) ~ 14 for n=10).
        assert rf <= 6

    def test_sibling_species_closer_than_distant(self, bio_run):
        ds, results = bio_run
        import networkx as nx

        # Tree distance (edge count) vs CV distance must correlate.
        leaves = list(results.keys)
        tree_d, cv_d = [], []
        for i, a in enumerate(leaves):
            for b in leaves[i + 1 :]:
                tree_d.append(nx.shortest_path_length(ds.tree, a, b))
                cv_d.append(results.get(a, b))
        corr = np.corrcoef(tree_d, cv_d)[0, 1]
        assert corr > 0.3


class TestMicroscopyEndToEnd:
    @pytest.fixture(scope="class")
    def micro_run(self):
        store = InMemoryStore()
        ds = make_microscopy_dataset(
            store,
            n_particles=8,
            template_points=32,
            jitter=0.02,
            keep_fraction=0.85,
            outlier_fraction=0.05,
            seed=31,
        )
        rocket = Rocket(
            MicroscopyApplication(sigma=0.06, restarts=3),
            store,
            RocketConfig(n_devices=2, device_cache_slots=8, host_cache_slots=8, seed=3),
        )
        results = rocket.run(ds.keys)
        return ds, results

    def test_complete_and_positive(self, micro_run):
        _, results = micro_run
        assert results.is_complete()
        scores = [v for _, _, v in results.items()]
        assert all(s > 0 for s in scores)

    def test_registration_scores_beat_random_alignment(self, micro_run):
        """All particles share a template: registered scores must exceed
        what unrelated clouds would produce."""
        ds, results = micro_run
        from repro.apps.microscopy.registration import bhattacharyya_similarity
        from repro.util.rng import seeded_rng

        rng = seeded_rng(0)
        random_cloud_a = rng.uniform(-1, 1, (30, 2))
        random_cloud_b = rng.uniform(-1, 1, (30, 2))
        baseline = bhattacharyya_similarity(random_cloud_a, random_cloud_b, sigma=0.06)
        scores = [v for _, _, v in results.items()]
        assert np.median(scores) > baseline

    def test_perfect_reuse(self, micro_run):
        """The microscopy data set fits in memory: R must be 1 (paper)."""
        _, results = micro_run
        # 8 particles, 8 slots: one load each.


class TestThrottledStoreIntegration:
    def test_run_with_simulated_remote_storage(self):
        """I/O contention must not break correctness (only slow things)."""
        inner = InMemoryStore()
        ds = make_forensics_dataset(inner, n_images=6, n_cameras=2, image_shape=(32, 32), seed=5)
        store = ThrottledStore(inner, bandwidth=5e6, latency=0.001)
        rocket = Rocket(
            ForensicsApplication(),
            store,
            RocketConfig(n_devices=2, device_cache_slots=4, host_cache_slots=6, seed=4),
        )
        results = rocket.run(ds.keys)
        assert results.is_complete()
        assert store.read_count == rocket.last_stats.loads


class TestClusteringDownstream:
    def test_forensics_scores_cluster_by_camera(self, forensics_run):
        """Hierarchical clustering on (1 - NCC) recovers the cameras."""
        ds, results, _ = forensics_run
        dist = 1.0 - results.to_dense(fill=0.0)
        np.fill_diagonal(dist, 0.0)
        from scipy.spatial.distance import squareform

        condensed = squareform(dist, checks=False)
        labels = fcluster(linkage(condensed, method="average"), t=ds.n_cameras, criterion="maxclust")
        # Images of one camera must share a cluster label.
        by_camera = {}
        for key, label in zip(ds.keys, labels):
            by_camera.setdefault(ds.camera_of[key], set()).add(label)
        assert all(len(labels_) == 1 for labels_ in by_camera.values())
        # And distinct cameras get distinct labels.
        all_labels = [next(iter(v)) for v in by_camera.values()]
        assert len(set(all_labels)) == ds.n_cameras
