"""Tests for the persistent cross-session store (:mod:`repro.store`).

Four layers:

- component units: content hashing with the stat-validated cache,
  the item payload cache (round trip, invalidation, corrupt-file
  recovery), the memo journal (merge across writers, unordered-pair
  canonicalization, hash-keyed invalidation, truncated/garbage
  segment tolerance) and :meth:`Application.fingerprint`;
- warm-start acceptance on **both** backends: a repeated identical
  run against an unchanged corpus recomputes zero pairs, skips the
  backend entirely, and is value-identical to the cold run;
- incremental invalidation: editing one item's bytes between two
  sessions recomputes exactly that item's pairs (verified through
  both the memo counters and a compare-counting application), and a
  corrupted store never crashes or corrupts results — it just runs
  cold;
- surfaces: store counters in ``session.metrics()`` and the serve
  daemon's ``metrics`` verb, per-tenant ``store_hits`` accounting,
  directory ``stats``/``gc`` and the ``repro store`` CLI.
"""

import glob
import json
import os
import threading

import numpy as np
import pytest

from repro.cli import main
from repro.core.rocket import Rocket
from repro.core.session import RocketSession
from repro.core.workload import AllPairs, DeltaPairs
from repro.runtime.localrocket import RocketConfig
from repro.store import (
    ItemHasher,
    PersistentItemCache,
    ResultMemoStore,
    RocketStore,
    hash_bytes,
)
from repro.store.memo import canonical_pair

from tests.test_cluster_runtime import SumApp, make_store
from tests.test_multijob import make_backend


def warm_config(store_dir, **overrides):
    cfg = dict(n_devices=2, leaf_size=2, seed=7, store_dir=str(store_dir))
    cfg.update(overrides)
    return RocketConfig(**cfg)


def result_dict(matrix):
    return {(a, b): v for a, b, v in matrix.items()}


class CountingApp(SumApp):
    """SumApp that counts compare() invocations (local backend: threads).

    The counter lives in a dict on purpose: ``fingerprint()`` folds in
    scalar instance attributes, and the count must not shift the app's
    store identity between sessions.
    """

    def __init__(self):
        self.lock = threading.Lock()
        self.counts = {"compared": 0}

    @property
    def compared(self):
        return self.counts["compared"]

    def compare(self, key_a, a, key_b, b):
        with self.lock:
            self.counts["compared"] += 1
        return super().compare(key_a, a, key_b, b)


# ----------------------------------------------------------------------
# Content hashing


class TestItemHasher:
    def test_digest_matches_hash_bytes(self, tmp_path):
        store, keys = make_store(3)
        app = SumApp()
        hasher = ItemHasher(tmp_path, store)
        name = app.file_name(keys[0])
        assert hasher.digest(name) == hash_bytes(store.read(name))

    def test_cache_survives_save_and_reload(self, tmp_path):
        store, keys = make_store(3)
        hasher = ItemHasher(tmp_path, store)
        names = [SumApp().file_name(k) for k in keys]
        digests = {n: hasher.digest(n) for n in names}
        hasher.save()
        again = ItemHasher(tmp_path, store)
        assert {n: again.digest(n) for n in names} == digests

    def test_missing_blob_raises_keyerror(self, tmp_path):
        store, _ = make_store(2)
        with pytest.raises(KeyError):
            ItemHasher(tmp_path, store).digest("no-such-item.bin")

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        (tmp_path / "hashes.json").write_text("{ not json")
        store, keys = make_store(2)
        hasher = ItemHasher(tmp_path, store)
        name = SumApp().file_name(keys[0])
        assert hasher.digest(name) == hash_bytes(store.read(name))

    def test_edit_changes_digest(self, tmp_path):
        store, keys = make_store(2)
        hasher = ItemHasher(tmp_path, store)
        name = SumApp().file_name(keys[0])
        before = hasher.digest(name)
        data = np.frombuffer(store.read(name), dtype=np.float64) * 2.0
        store.write(name, data.tobytes())
        assert hasher.digest(name) != before


# ----------------------------------------------------------------------
# Persistent item cache


class TestPersistentItemCache:
    def test_round_trip(self, tmp_path):
        store, keys = make_store(2)
        cache = PersistentItemCache(tmp_path, SumApp(), store)
        payload = np.arange(8, dtype=np.float64)
        assert cache.store(keys[0], payload) > 0
        loaded = cache.load(keys[0])
        np.testing.assert_array_equal(np.asarray(loaded), payload)

    def test_miss_on_unknown_key(self, tmp_path):
        store, keys = make_store(2)
        cache = PersistentItemCache(tmp_path, SumApp(), store)
        assert cache.load(keys[1]) is None

    def test_content_edit_invalidates(self, tmp_path):
        store, keys = make_store(2)
        app = SumApp()
        cache = PersistentItemCache(tmp_path, app, store)
        cache.store(keys[0], np.arange(4, dtype=np.float64))
        name = app.file_name(keys[0])
        edited = np.frombuffer(store.read(name), dtype=np.float64) * 5.0
        store.write(name, edited.tobytes())
        assert PersistentItemCache(tmp_path, app, store).load(keys[0]) is None

    def test_app_fingerprint_partitions_entries(self, tmp_path):
        store, keys = make_store(2)

        class V2App(SumApp):
            version = "2"

        cache = PersistentItemCache(tmp_path, SumApp(), store)
        cache.store(keys[0], np.arange(4, dtype=np.float64))
        assert PersistentItemCache(tmp_path, V2App(), store).load(keys[0]) is None

    def test_corrupt_payload_file_is_a_miss(self, tmp_path):
        store, keys = make_store(2)
        cache = PersistentItemCache(tmp_path, SumApp(), store)
        cache.store(keys[0], np.arange(4, dtype=np.float64))
        (path,) = glob.glob(str(tmp_path / "items" / "*.npy"))
        with open(path, "wb") as fh:
            fh.write(b"\x93NUMPY garbage")
        assert cache.load(keys[0]) is None
        assert not os.path.exists(path), "corrupt payload should be unlinked"


# ----------------------------------------------------------------------
# Result memo journal


class TestResultMemoStore:
    def test_append_refresh_lookup(self, tmp_path):
        memo = ResultMemoStore(tmp_path)
        assert memo.append("fp", "a", "b", "ha", "hb", 1.5)
        other = ResultMemoStore(tmp_path)
        other.refresh()
        assert other.lookup("fp", "a", "b", "ha", "hb") == (True, 1.5)
        memo.close()

    def test_pairs_are_unordered(self, tmp_path):
        memo = ResultMemoStore(tmp_path)
        memo.append("fp", "b", "a", "hb", "ha", 2.0)
        assert memo.lookup("fp", "a", "b", "ha", "hb") == (True, 2.0)
        assert canonical_pair("b", "a") == canonical_pair("a", "b")
        memo.close()

    def test_hash_mismatch_misses(self, tmp_path):
        memo = ResultMemoStore(tmp_path)
        memo.append("fp", "a", "b", "ha", "hb", 2.0)
        assert memo.lookup("fp", "a", "b", "EDITED", "hb") == (False, None)
        assert memo.lookup("other-fp", "a", "b", "ha", "hb") == (False, None)
        memo.close()

    def test_merges_segments_from_two_writers(self, tmp_path):
        w1, w2 = ResultMemoStore(tmp_path), ResultMemoStore(tmp_path)
        w1.append("fp", "a", "b", "ha", "hb", 1.0)
        w2.append("fp", "c", "d", "hc", "hd", 2.0)
        w1.close()
        w2.close()
        reader = ResultMemoStore(tmp_path)
        reader.refresh()
        assert reader.lookup("fp", "a", "b", "ha", "hb") == (True, 1.0)
        assert reader.lookup("fp", "c", "d", "hc", "hd") == (True, 2.0)
        assert reader.record_count() == 2

    def test_truncated_tail_keeps_earlier_records(self, tmp_path):
        memo = ResultMemoStore(tmp_path)
        memo.append("fp", "a", "b", "ha", "hb", 1.0)
        memo.append("fp", "c", "d", "hc", "hd", 2.0)
        memo.close()
        (seg,) = glob.glob(str(tmp_path / "memo" / "*.log"))
        with open(seg, "r+b") as fh:
            fh.truncate(os.path.getsize(seg) - 3)
        reader = ResultMemoStore(tmp_path)
        reader.refresh()
        assert reader.lookup("fp", "a", "b", "ha", "hb") == (True, 1.0)
        assert reader.lookup("fp", "c", "d", "hc", "hd") == (False, None)

    def test_garbage_segment_is_dropped_not_fatal(self, tmp_path):
        (tmp_path / "memo").mkdir()
        (tmp_path / "memo" / "seg-999999-dead.log").write_bytes(b"not a journal")
        reader = ResultMemoStore(tmp_path)
        reader.refresh()
        assert reader.record_count() == 0
        assert reader.dropped_segments >= 1


class TestFingerprint:
    def test_version_and_params_distinguish(self):
        class V2App(SumApp):
            version = "2"

        class ParamApp(SumApp):
            def __init__(self, k):
                self.k = k

        assert SumApp().fingerprint() != V2App().fingerprint()
        assert ParamApp(3).fingerprint() != ParamApp(4).fingerprint()
        assert ParamApp(3).fingerprint() == ParamApp(3).fingerprint()


# ----------------------------------------------------------------------
# Warm-start acceptance (both backends)


class TestWarmStart:
    @pytest.mark.parametrize("backend", ["local", "cluster"])
    def test_repeat_run_recomputes_zero_pairs(self, backend, tmp_path):
        store, keys = make_store(6)
        cold = RocketSession._wrap(
            make_backend(backend, store, store_dir=str(tmp_path))
        )
        try:
            cold_results = result_dict(cold.submit(AllPairs(keys)).result())
        finally:
            cold.close()

        store2, keys2 = make_store(6)
        warm = RocketSession._wrap(
            make_backend(backend, store2, store_dir=str(tmp_path))
        )
        try:
            warm_results = result_dict(warm.submit(AllPairs(keys2)).result())
            snap = warm.metrics()
        finally:
            warm.close()

        memo = snap["store"]["memo"]
        assert memo["hits"] == 15 and memo["misses"] == 0
        assert memo["jobs_short_circuited"] == 1
        # The backend never saw a job, let alone a pair.
        assert snap.get("jobs", {}).get("completed", 0) == 0
        assert warm_results == cold_results

    @pytest.mark.parametrize("backend", ["local", "cluster"])
    def test_warm_item_cache_skips_load_pipeline(self, backend, tmp_path):
        store, keys = make_store(6)
        runtime = make_backend(backend, store, store_dir=str(tmp_path))
        cold_session = RocketSession._wrap(runtime)
        try:
            cold = result_dict(cold_session.submit(AllPairs(keys)).result())
        finally:
            cold_session.close()
        # Wipe the memo plane: pairs must recompute, items must not reload.
        for seg in glob.glob(str(tmp_path / "memo" / "*.log")):
            os.unlink(seg)
        store2, keys2 = make_store(6)
        runtime = make_backend(backend, store2, store_dir=str(tmp_path))
        session = RocketSession._wrap(runtime)
        try:
            warm = result_dict(session.submit(AllPairs(keys2)).result())
            snap = session.metrics()
        finally:
            session.close()
        assert warm == cold
        persistent = snap["cache"]["persistent"]
        # Every node fills its caches from disk (the cluster's nodes
        # each consult the shared store, so hits can exceed the item
        # count); no item ever goes through io/parse/preprocess.
        assert persistent["hits"] >= 6
        assert persistent["bytes_read"] > 0
        assert snap["pipeline"]["loads"] == 0

    def test_delta_workload_reuses_all_pairs_memo(self, tmp_path):
        """Memo entries are keyed on pairs, not on the workload shape."""
        store, keys = make_store(6)
        full = result_dict(
            Rocket(SumApp(), store, warm_config(tmp_path)).run(keys)
        )
        store2, keys2 = make_store(6)
        session = RocketSession._wrap(
            make_backend("local", store2, store_dir=str(tmp_path))
        )
        try:
            delta = DeltaPairs(keys2[:-2], keys2[-2:])
            results = result_dict(session.submit(delta).result())
            memo = session.metrics()["store"]["memo"]
        finally:
            session.close()
        assert memo["misses"] == 0 and memo["hits"] == len(results)
        assert all(full[pair] == value for pair, value in results.items())


# ----------------------------------------------------------------------
# Incremental invalidation + corruption recovery


class TestInvalidation:
    def test_editing_one_item_recomputes_only_its_pairs(self, tmp_path):
        n = 6
        store, keys = make_store(n)
        app = CountingApp()
        cold = result_dict(Rocket(app, store, warm_config(tmp_path)).run(keys))

        # Session 2: item 2's bytes change on disk between sessions.
        store2, keys2 = make_store(n)
        edited = keys2[2]
        name = app.file_name(edited)
        data = np.frombuffer(store2.read(name), dtype=np.float64) * 3.0
        store2.write(name, data.tobytes())

        counting = CountingApp()
        session = RocketSession._wrap(
            make_backend("local", store2, app=counting, store_dir=str(tmp_path))
        )
        try:
            warm = result_dict(session.submit(AllPairs(keys2)).result())
            memo = session.metrics()["store"]["memo"]
        finally:
            session.close()

        # Pair-level recompute accounting: exactly the edited item's row.
        assert counting.compared == n - 1
        assert memo["misses"] == n - 1
        assert memo["hits"] == (n * (n - 1)) // 2 - (n - 1)
        for (a, b), value in warm.items():
            if edited in (a, b):
                assert value != cold[(a, b)]
            else:
                assert value == cold[(a, b)]

    def test_corrupt_store_runs_cold_with_correct_results(self, tmp_path):
        store, keys = make_store(5)
        cold = result_dict(
            Rocket(CountingApp(), store, warm_config(tmp_path)).run(keys)
        )

        # Vandalise both planes: garbage journal, truncated journal,
        # garbage payload, garbage hash cache.
        for seg in glob.glob(str(tmp_path / "memo" / "*.log")):
            with open(seg, "r+b") as fh:
                fh.truncate(max(0, os.path.getsize(seg) - 7))
        (tmp_path / "memo" / "seg-000001-feed.log").write_bytes(b"\xff" * 64)
        payloads = sorted(glob.glob(str(tmp_path / "items" / "*.npy")))
        with open(payloads[0], "wb") as fh:
            fh.write(b"junk")
        (tmp_path / "hashes.json").write_text("]")

        store2, keys2 = make_store(5)
        counting = CountingApp()
        session = RocketSession._wrap(
            make_backend("local", store2, app=counting, store_dir=str(tmp_path))
        )
        try:
            warm = result_dict(session.submit(AllPairs(keys2)).result())
        finally:
            session.close()
        assert warm == cold
        assert counting.compared >= 1  # ran (partially) cold, not wrong


# ----------------------------------------------------------------------
# Surfaces: metrics, serve, stats/gc, CLI


class TestSurfaces:
    def test_session_metrics_expose_store_counters(self, tmp_path):
        store, keys = make_store(4)
        session = RocketSession._wrap(
            make_backend("local", store, store_dir=str(tmp_path))
        )
        try:
            session.submit(AllPairs(keys)).result()
            snap = session.metrics()
        finally:
            session.close()
        memo = snap["store"]["memo"]
        assert memo["appended"] == 6 and memo["records"] == 6
        assert snap["store"]["hashes_cached"] == 4
        assert snap["cache"]["persistent"]["stores"] == 4

    def test_store_absent_without_store_dir(self):
        store, keys = make_store(4)
        session = RocketSession._wrap(make_backend("local", store))
        try:
            session.submit(AllPairs(keys)).result()
            assert "store" not in session.metrics()
        finally:
            session.close()

    def test_serve_daemon_accounts_tenant_store_hits(self, tmp_path):
        from repro.serve import RocketServer, connect

        store, keys = make_store(5)
        runtime = make_backend("local", store, store_dir=str(tmp_path))
        session = RocketSession._wrap(runtime, policy="fair")
        server = RocketServer(session, keys).start()
        try:
            with connect(server.address) as client:
                first = result_dict(client.run(keys))
                second = result_dict(client.run(keys))
                snapshot = client.metrics()
        finally:
            server.close()
        assert first == second
        serve = snapshot["serve"]["serve"]
        assert serve["store_hits"] == 10
        assert serve["tenants"]["default"]["store_hits"] == 10
        assert snapshot["session"]["store"]["memo"]["hits"] == 10

    def test_stats_and_gc(self, tmp_path):
        store, keys = make_store(6)
        Rocket(SumApp(), store, warm_config(tmp_path)).run(keys)
        rocket_store = RocketStore(tmp_path)
        stats = rocket_store.stats()
        assert stats["items"]["count"] == 6
        assert stats["memo"]["records"] == 15
        assert stats["total_bytes"] > 0

        report = rocket_store.gc(max_bytes=stats["total_bytes"])
        assert report == {"deleted_items": 0, "deleted_segments": 0, "freed_bytes": 0}

        report = rocket_store.gc(max_bytes=0)
        assert report["deleted_items"] == 6
        assert report["freed_bytes"] > 0
        assert not glob.glob(str(tmp_path / "items" / "*.npy"))
        rocket_store.close()

    def test_gc_spares_live_segments(self, tmp_path):
        memo = ResultMemoStore(tmp_path)
        memo.append("fp", "a", "b", "ha", "hb", 1.0)  # writer lock held
        dead = ResultMemoStore(tmp_path)
        dead.append("fp", "c", "d", "hc", "hd", 2.0)
        dead.close()
        try:
            report = RocketStore(tmp_path).gc(max_bytes=0)
            assert report["deleted_segments"] == 1
            survivors = glob.glob(str(tmp_path / "memo" / "*.log"))
            assert len(survivors) == 1
        finally:
            memo.close()

    def test_cli_store_stats_and_gc(self, tmp_path, capsys):
        store, keys = make_store(4)
        Rocket(SumApp(), store, warm_config(tmp_path)).run(keys)
        assert main(["store", "stats", "--store-dir", str(tmp_path), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["items"]["count"] == 4 and stats["memo"]["records"] == 6
        assert (
            main(
                ["store", "gc", "--store-dir", str(tmp_path),
                 "--max-bytes", "0", "--json"]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["deleted_items"] == 4
